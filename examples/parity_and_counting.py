#!/usr/bin/env python3
"""Section 4's counting zoo: parity with order, counting quantifiers,
and the machine-checked limits of BALG^1.

* the parity-of-a-relation query (definable in BALG^1 given an order on
  the domain — and famously *not* first-order definable even with one);
* the counting / Hartig / Rescher quantifiers;
* the symbolic counting lemma: for any candidate expression we compute
  the exact polynomial P_t(n) of Prop 4.1's claim and produce a
  concrete witness showing the expression is not duplicate elimination
  and not bag-even.

Run:  python examples/parity_and_counting.py
"""

from repro import Bag, Tup, evaluate, var
from repro.complexity import analyze, refute_bag_even, refute_dedup, \
    single_constant_input
from repro.core.derived import (
    card_at_least_expr, hartig_expr, is_nonempty, parity_even_expr,
    rescher_expr,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Parity with order (Section 4): "some x splits R evenly".
    # ------------------------------------------------------------------
    parity = parity_even_expr(var("R"))
    print("parity of |R| via the order trick:")
    for n in range(1, 7):
        relation = Bag([Tup(i) for i in range(n)])
        verdict = is_nonempty(evaluate(parity, R=relation))
        print(f"  |R| = {n}: even = {verdict}")

    # ------------------------------------------------------------------
    # Counting quantifiers.
    # ------------------------------------------------------------------
    R = Bag([Tup(i) for i in range(4)])
    S = Bag([Tup(i + 50) for i in range(4)])
    T = Bag([Tup(i + 90) for i in range(2)])
    print("\ncounting quantifiers on |R|=4, |S|=4, |T|=2:")
    print("  exists >= 3 in R:", is_nonempty(
        evaluate(card_at_least_expr(var("R"), 3), R=R)))
    print("  exists >= 5 in R:", is_nonempty(
        evaluate(card_at_least_expr(var("R"), 5), R=R)))
    print("  Hartig |R| = |S|:", is_nonempty(
        evaluate(hartig_expr(var("R"), var("S")), R=R, S=S)))
    print("  Rescher |T| < |R|:", is_nonempty(
        evaluate(rescher_expr(var("T"), var("R")), T=T, R=R)))

    # ------------------------------------------------------------------
    # The counting lemma as a microscope (Props 4.1 / 4.5).
    # ------------------------------------------------------------------
    candidate = (var("B") + var("B")) - var("B")   # looks innocent
    analysis = analyze(candidate)
    print("\nsymbolic analysis of (B (+) B) - B on B_n:")
    print("  polynomial for [a]:", analysis.polynomial_for(Tup("a")))
    print("  threshold N:", analysis.threshold)

    witness = refute_dedup(candidate)
    bag = single_constant_input(witness)
    print(f"  dedup witness n = {witness}: e(B_n) =",
          evaluate(candidate, B=bag), "but eps(B_n) has one copy")

    witness_even = refute_bag_even(candidate)
    print(f"  bag-even witness n = {witness_even} "
          "(polynomials cannot oscillate)")

    print("\nConclusion (Prop 4.1 / 4.5): no BALG^1 expression computes")
    print("duplicate elimination or bag-even — every candidate is")
    print("refuted by its own counting polynomial.")


if __name__ == "__main__":
    main()
