#!/usr/bin/env python3
"""Quickstart: build bags, run algebra queries, check fragments.

Covers in five minutes what Sections 2-3 of the paper set up: the
value model (atoms, tuples, bags), the operators, the expression AST,
evaluation, and the fragment hierarchy.

Run:  python examples/quickstart.py
"""

from repro import (
    Bag, Tup, Powerset, evaluate, fragment_report, var,
)
from repro.core import ops
from repro.core.derived import (
    card_greater_expr, is_nonempty, project_expr, select_attr_eq_const,
)
from repro.core.types import flat_bag_type
from repro.surface import parse, to_text


def main() -> None:
    # ------------------------------------------------------------------
    # Values: bags count duplicates; tuples and bags nest freely.
    # ------------------------------------------------------------------
    orders = Bag([
        Tup("ann", "book"), Tup("ann", "book"), Tup("bob", "pen"),
    ])
    print("orders bag:              ", orders)
    print("multiplicity of ann/book:", orders.multiplicity(
        Tup("ann", "book")))
    print("cardinality (with dups): ", orders.cardinality)

    # ------------------------------------------------------------------
    # Operators: the Section 3 inventory as plain functions.
    # ------------------------------------------------------------------
    doubled = ops.additive_union(orders, orders)
    print("\nB (+) B:                 ", doubled)
    print("eps(B):                  ", ops.dedup(orders))
    print("P(two copies of one tup):",
          ops.powerset(Bag.from_counts({Tup("x"): 2})))

    # ------------------------------------------------------------------
    # Expressions: build ASTs (or parse them) and evaluate.
    # ------------------------------------------------------------------
    ann_items = project_expr(
        select_attr_eq_const(var("orders"), 1, "ann"), 2)
    print("\nquery:", to_text(ann_items))
    print("ann's items:", evaluate(ann_items, orders=orders))

    same_query = parse("pi[2](sigma[t: alpha1(t) = 'ann'](orders))")
    assert evaluate(same_query, orders=orders) == evaluate(
        ann_items, orders=orders)

    # ------------------------------------------------------------------
    # Counting power (Example 4.2): |R| > |S| is one subtraction away.
    # ------------------------------------------------------------------
    R = Bag([Tup(i) for i in range(5)])
    S = Bag([Tup(i + 100) for i in range(3)])
    bigger = card_greater_expr(var("R"), var("S"))
    print("\n|R| > |S|?", is_nonempty(evaluate(bigger, R=R, S=S)))

    # ------------------------------------------------------------------
    # Fragments: where does a query sit in the BALG^k hierarchy?
    # ------------------------------------------------------------------
    report = fragment_report(bigger, R=flat_bag_type(1),
                             S=flat_bag_type(1))
    print("fragment of the cardinality query:", report.fragment_name(),
          "(BALG^1 => LOGSPACE data complexity, Theorem 4.4)")

    nested = fragment_report(Powerset(var("R")), R=flat_bag_type(1))
    print("fragment of P(R):                 ", nested.fragment_name(),
          "(one powerset => BALG^2, PSPACE, Theorem 5.1)")


if __name__ == "__main__":
    main()
