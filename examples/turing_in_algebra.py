#!/usr/bin/env python3
"""Theorem 6.6 live: a Turing machine running *inside* the bag algebra.

Machine configurations are bags of 4-tuples [time, cell, symbol,
state], with time and cell indices encoded as bags of a single
constant.  The step relation is one BALG^2 expression; the inflationary
fixpoint closes the initial configuration under it; decoding the final
layer yields the verdict and tape.  The native simulator provides the
ground truth, and the Theorem 6.1 checkers validate the full
computation bag.

Run:  python examples/turing_in_algebra.py
"""

from repro.core.fragments import max_bag_nesting
from repro.machines import (
    CONFIG_TYPE, computation_bag, is_legal_accepting_computation,
    last_symbol_machine, machine_step_expr, parity_machine,
    run_machine, simulate_via_ifp, transitive_closure_expr,
)
from repro.core.bag import Bag, Tup
from repro.core.eval import evaluate
from repro.core.expr import var


def main() -> None:
    machine = parity_machine()
    print("machine: accepts 1^n iff n is even")

    step = machine_step_expr(machine, "X")
    print("step formula size:", step.size(), "AST nodes;",
          "bag nesting:", max_bag_nesting(step, X=CONFIG_TYPE),
          "(Theorem 6.6 needs only BALG^2 + IFP)")

    for word in ["", "1", "11", "111"]:
        native = run_machine(machine, list(word),
                             tape_cells=len(word) + 2)
        algebra = simulate_via_ifp(machine, list(word),
                                   max_steps=len(word) + 2,
                                   tape_cells=len(word) + 2)
        marker = "OK" if algebra.accepted == native.accepted else "??"
        print(f"  input '1'*{len(word)}: algebra says "
              f"{'accept' if algebra.accepted else 'reject'} in "
              f"{algebra.steps} steps "
              f"(native agrees: {marker})")

    # Left moves too:
    tail = last_symbol_machine()
    run = simulate_via_ifp(tail, ["a", "b"], max_steps=6, tape_cells=5)
    print("\nlast-symbol machine on 'ab':",
          "accept" if run.accepted else "reject",
          "| final tape:", "".join(run.final_tape).rstrip("_"))

    # Theorem 6.1's selections on the whole computation bag:
    word = ["1", "1"]
    computation = computation_bag(machine, word, max_steps=5,
                                  tape_cells=4)
    print("\nTheorem 6.1 encoding of the run on '11':",
          computation.cardinality, "cell-tuples;",
          "legal accepting computation =",
          is_legal_accepting_computation(machine, computation, word))

    # And the bounded-fixpoint classic the conclusion mentions:
    graph = Bag.of(Tup("a", "b"), Tup("b", "c"), Tup("c", "d"))
    closure = evaluate(transitive_closure_expr(var("G")), G=graph)
    print("\ntransitive closure of a->b->c->d:",
          sorted((t.attribute(1), t.attribute(2))
                 for t in closure.distinct()))


if __name__ == "__main__":
    main()
