#!/usr/bin/env python3
"""Theorem 5.3's machinery, end to end: calculus, algebra, and game.

One sentence, three treatments:

1. evaluate a CALC1 sentence directly (active-domain semantics);
2. compile it to a BALG expression ([AB87]'s equivalence) and evaluate
   that — same verdicts on every structure;
3. play the GV90 game to see *why* the Figure 1 graphs defeat every
   low-variable sentence, and extract a spoiler witness against a graph
   that IS distinguishable.

Run:  python examples/calculus_vs_algebra.py
"""

from repro.core.derived import is_nonempty
from repro.core.eval import evaluate
from repro.core.types import U
from repro.games import (
    SET_OF_ATOMS, build_star_graphs, duplicator_wins,
    winning_spoiler_line,
)
from repro.games.structures import CoStructure, set_of
from repro.relational import (
    Exists, Forall, Member, Rel, TermVar, compile_calc, satisfies,
    structure_to_database,
)

NODE = SET_OF_ATOMS
SCHEMA = {"E": (NODE, NODE)}


def main() -> None:
    triangle = CoStructure.build(
        {1, 2, 3}, {"E": {(set_of(1), set_of(2)),
                          (set_of(2), set_of(3)),
                          (set_of(3), set_of(1))}})
    pair = build_star_graphs(4)

    x, y = TermVar("x"), TermVar("y")
    sentence = Forall("a", U, Exists(
        "x", NODE, Member(TermVar("a"), x)))
    print("sentence: every atom belongs to some node set")

    compiled = compile_calc(sentence, SCHEMA)
    print("compiled algebra size:", compiled.size(), "AST nodes\n")

    for name, structure in [("triangle", triangle),
                            ("G_4", pair.balanced),
                            ("G'_4", pair.unbalanced)]:
        direct = satisfies(structure, sentence)
        algebraic = is_nonempty(evaluate(
            compiled, structure_to_database(structure),
            powerset_budget=1 << 16))
        print(f"  {name}: calculus={direct}  algebra={algebraic}  "
              f"({'agree' if direct == algebraic else 'MISMATCH'})")

    # The game explains the separation budget:
    game = duplicator_wins(pair.balanced, pair.unbalanced,
                           [U, NODE], 1)
    print("\nGV90 game on (G, G'), 1 move: duplicator wins =",
          game.duplicator_wins)
    print("=> no 1-variable CALC1/RALG^2 sentence tells them apart —")
    print("   the edge-flip is invisible without counting.")

    # ...and the witness extractor shows a *distinguishable* case:
    empty = CoStructure.build(pair.balanced.atoms, {"E": set()})
    line = winning_spoiler_line(pair.balanced, empty, [U, NODE], 2)
    print("\nagainst the empty graph the spoiler wins in 2 moves;")
    print("winning first pick:", line[0][1], f"(from the {line[0][0]})")
    print("— an edge endpoint the empty graph cannot mirror.")


if __name__ == "__main__":
    main()
