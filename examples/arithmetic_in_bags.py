#!/usr/bin/env python3
"""Lemma 5.7 live: number theory compiled into the bag algebra.

Integers are bags, addition is additive union, multiplication is the
Cartesian product, and bounded quantifiers range over a powerset.  The
demo compiles genuine arithmetic questions — "is n even?", "is n
composite?" — into BALG^2 expressions and evaluates them on the input
bag b_n, then climbs one hyper-exponential level with the powerbag
(the Theorem 5.5 mechanism).

Run:  python examples/arithmetic_in_bags.py
"""

from repro.arith import (
    NAnd, NConst, NEq, NExists, NLe, NNot, NVar, Plus, Times,
    compile_formula, domain_bound, input_bag,
)
from repro.core.derived import is_nonempty
from repro.core.eval import evaluate


def main() -> None:
    n = NVar("n")
    x, y = NVar("x"), NVar("y")

    # "n is even": exists x <= f(n) with x + x = n.
    even = NExists("x", NEq(Plus(x, x), n))
    compiled_even = compile_formula(even)
    print("is n even?  (compiled to one BALG^2 expression,",
          compiled_even.expr.size(), "nodes)")
    for value in range(7):
        verdict = is_nonempty(evaluate(compiled_even.expr,
                                       B=input_bag(value)))
        print(f"  n={value}: {verdict}")

    # "n is composite": exists x,y >= 2 with x*y = n.
    at_least_two = lambda v: NNot(NLe(v, NConst(1)))
    composite = NExists("x", NExists("y", NAnd(
        NEq(Times(x, y), n), NAnd(at_least_two(x), at_least_two(y)))))
    compiled_composite = compile_formula(composite)
    print("\nis n composite?")
    for value in (2, 3, 4, 5, 6, 7, 8, 9):
        verdict = is_nonempty(evaluate(compiled_composite.expr,
                                       B=input_bag(value)))
        print(f"  n={value}: {verdict}")

    # One hyper level up: with the powerbag the quantifier domain has
    # size 2^n, so values far beyond n become expressible.
    beyond = NExists("x", NEq(x, NConst(7)))
    level0 = compile_formula(beyond, hyper_level=0)
    level1 = compile_formula(beyond, hyper_level=1)
    print("\nexists x = 7, on input n = 3:")
    print("  level 0 (bound", domain_bound(3, 0), "):",
          is_nonempty(evaluate(level0.expr, B=input_bag(3))))
    print("  level 1 (bound", domain_bound(3, 1), "):",
          is_nonempty(evaluate(level1.expr, B=input_bag(3))))
    print("\nEach extra Pb level buys another exponential — that is")
    print("Theorem 5.5's hyperexponential lower bound mechanism.")


if __name__ == "__main__":
    main()
