#!/usr/bin/env python3
"""Proposition 3.2 and Definition 5.1 live: how duplicates explode.

Shows the three growth regimes the paper's complexity results hang on:

* ``delta . P``       — exponential once, then only polynomial;
* ``delta delta P P`` — a fresh exponential every round (hyper);
* ``delta . Pb``      — the powerbag, exponential at every step, which
  is why the paper keeps the powerset and drops the powerbag.

Every measured number is checked against the paper's closed forms.

Run:  python examples/duplicate_explosion.py
"""

from repro.complexity import (
    delta2_p2_occurrences, delta_p_occurrences, delta_pb_occurrences,
    measure_delta2_p2, measure_delta_p, measure_delta_pb, uniform_bag,
)
from repro.core import ops
from repro.core.bag import Bag


def main() -> None:
    # The worked example of the introduction: n copies of one constant.
    bag = Bag.from_counts({"a": 4})
    print("B = 4 copies of 'a'")
    print("|P(B)|  =", ops.powerset(bag).cardinality,
          " (n + 1 subbags, duplicate-free)")
    print("|Pb(B)| =", ops.powerbag(bag).cardinality,
          "(2^n, duplicates kept)")
    print("Pb([[a,a]]) =", ops.powerbag(Bag.of("a", "a")),
          " <- Definition 5.1's example")

    # Prop 3.2 regime 1: delta(P(.)) iterated.
    print("\n(delta P)^i on 2 constants x 2 copies "
          "(closed form m(m+1)^k/2):")
    start = uniform_bag(2, 2)
    for step in measure_delta_p(start, 3):
        print(f"  i={step.iteration}: max multiplicity = "
              f"{step.max_multiplicity:>12,}")
    first = delta_p_occurrences(2, 2)
    print(f"  closed form at i=1: {first} — exponential in k once,"
          " polynomial afterwards")

    # Prop 3.2 regime 2: delta delta P P — hyperexponential.
    print("\n(delta delta P P)^1 on the same bag "
          "(closed form 2^((m+1)^k - 2) (m+1)^k m):")
    measured = measure_delta2_p2(start, 1)[0]
    predicted = delta2_p2_occurrences(2, 2)
    print(f"  measured {measured.max_multiplicity:,}, "
          f"predicted {predicted:,}")
    assert measured.max_multiplicity == predicted

    # Theorem 5.5 regime: the powerbag explodes at every step.
    print("\n(delta Pb)^i on 1 constant x 2 copies "
          "(m * 2^(km - 1) per step):")
    for step in measure_delta_pb(uniform_bag(1, 2), 3):
        print(f"  i={step.iteration}: max multiplicity = "
              f"{step.max_multiplicity:>12,}")
    print("\nThe contrast is the whole tractability story: one P per")
    print("delta keeps BALG^2 in PSPACE (Thm 5.1); Pb buys arbitrary")
    print("hyperexponentials (Thm 5.5), so the algebra keeps P only.")


if __name__ == "__main__":
    main()
