#!/usr/bin/env python3
"""Example 4.1 end-to-end: degree comparison beats the relational
algebra — and the pebble game proves it (Theorem 5.2).

Three acts:

1. the BALG^1 query "in-degree(a) > out-degree(a)" on a citation-style
   multigraph (edges are a *bag*: parallel edges count);
2. the same query degenerates under set semantics (RALG sees supports
   only), illustrating why the separation needs bags;
3. the Figure 1 star graphs: the duplicator wins the 1-move GV90 game
   on (G, G') — so no 1-variable CALC1/RALG^2 sentence separates them —
   while the BALG^2 query tells them apart immediately.

Run:  python examples/degree_comparison.py
"""

from repro import Bag, Tup, evaluate, var
from repro.core.derived import in_degree_greater_expr, is_nonempty
from repro.core.types import U
from repro.games import (
    SET_OF_ATOMS, build_star_graphs, duplicator_wins, edge_bag,
)
from repro.relational import relational_evaluate


def main() -> None:
    # Act 1: a web-link multigraph; page "hub" is linked from everywhere
    # (some pages link it twice — duplicates matter).
    links = Bag([
        Tup("blog", "hub"), Tup("blog", "hub"), Tup("news", "hub"),
        Tup("hub", "blog"), Tup("hub", "shop"),
    ])
    query = in_degree_greater_expr(var("G"), "hub")
    print("multigraph edges:", links)
    print("in-degree(hub) > out-degree(hub)?",
          is_nonempty(evaluate(query, G=links)))      # 3 > 2: True

    # Act 2: under set semantics the duplicate edge disappears and the
    # comparison flips — RALG cannot see multiplicities.
    print("same query under set semantics:",
          is_nonempty(relational_evaluate(query, G=links)),
          "(2 in vs 2 out after dedup)")

    # Act 3: Lemma 5.4's star graphs.  Nodes are *sets* of atoms, the
    # centre alpha is the full set; G balances alpha's degrees, G'
    # inverts one edge.
    pair = build_star_graphs(6)
    print(f"\nFig. 1 graphs, n={pair.n}: "
          f"{len(pair.in_nodes)} In-nodes, {len(pair.out_nodes)} "
          "Out-nodes + centre")

    balg2_query = in_degree_greater_expr(var("G"), pair.center)
    print("BALG^2 query on G :", is_nonempty(
        evaluate(balg2_query, G=edge_bag(pair.balanced))))
    print("BALG^2 query on G':", is_nonempty(
        evaluate(balg2_query, G=edge_bag(pair.unbalanced))))

    game = duplicator_wins(pair.balanced, pair.unbalanced,
                           [U, SET_OF_ATOMS], k=1)
    print("\nGV90 game, 1 move: duplicator wins =",
          game.duplicator_wins,
          f"({game.positions_explored} positions searched)")
    print("=> no 1-variable RALG^2 sentence distinguishes G from G',")
    print("   yet BALG^2 just did — the Theorem 5.2 separation, live.")


if __name__ == "__main__":
    main()
