#!/usr/bin/env python3
"""Aggregates from pure algebra (Section 3): count, sum, average.

The paper's motivation for bags is that SQL-style aggregate functions
are *definable* once duplicates are first-class: an integer is a bag of
marker tuples, counting is a Cartesian product, summing is bag-destroy,
and the average falls out of one powerset trick.  This demo runs those
very expressions over a small sales workload and cross-checks them
against native Python arithmetic.

Run:  python examples/aggregates_demo.py
"""

from repro import Bag, Tup, evaluate, var
from repro.core.derived import (
    average_expr, bag_as_int, count_expr, int_as_bag, sum_expr,
)


def main() -> None:
    # A sales table: one row per sale (duplicates are real data here —
    # two identical sales are two sales).
    sales = Bag([
        Tup("mon", "book"), Tup("mon", "book"), Tup("mon", "pen"),
        Tup("tue", "book"), Tup("tue", "ink"), Tup("tue", "ink"),
        Tup("wed", "pen"),
    ])
    print("sales:", sales)

    # COUNT(*): the bag [[ [#] ]] x sales, projected — |sales| markers.
    counted = evaluate(count_expr(var("sales")), sales=sales)
    print("\ncount(sales) =", bag_as_int(counted))
    assert bag_as_int(counted) == sales.cardinality

    # Daily revenues as integers-as-bags (say, in whole coins):
    revenues = Bag([int_as_bag(30), int_as_bag(50), int_as_bag(10)])
    print("\ndaily revenues (encoded):", [30, 50, 10])

    # SUM: one bag-destroy.
    total = evaluate(sum_expr(var("rev")), rev=revenues)
    print("sum  =", bag_as_int(total))
    assert bag_as_int(total) == 90

    # AVERAGE: choose the subbag x of the sum with |x| * count = sum.
    mean = evaluate(average_expr(var("rev")), rev=revenues)
    print("avg  =", bag_as_int(mean))
    assert bag_as_int(mean) == 30

    # When the average is not an integer the encoding has no answer —
    # the selection finds no witness and returns the empty bag.
    uneven = Bag([int_as_bag(1), int_as_bag(2)])
    no_mean = evaluate(average_expr(var("rev")), rev=uneven)
    print("\navg of {1, 2} =", no_mean,
          "(empty: 1.5 is not a bag of markers)")

    # The same aggregation through the SQL front end:
    from repro.sql import Catalog, run_sql
    catalog = Catalog({"sales": ("day", "item")})
    print("\nSELECT COUNT(*) FROM sales        ->",
          run_sql("SELECT COUNT(*) FROM sales", catalog,
                  {"sales": sales}))
    print("SELECT COUNT(*) FROM sales WHERE day = 'tue'",
          "->", run_sql(
              "SELECT COUNT(*) FROM sales WHERE day = 'tue'",
              catalog, {"sales": sales}))


if __name__ == "__main__":
    main()
