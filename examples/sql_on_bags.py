#!/usr/bin/env python3
"""SQL is a bag language — the introduction's motivation, executable.

A small order-management workload runs through the mini SQL front end,
which compiles every query to a BALG expression.  The demo highlights
the places where bag semantics and set semantics genuinely diverge
(ALL vs DISTINCT, UNION ALL, EXCEPT ALL, COUNT), and shows that the
whole dialect lands in BALG^1 — the fragment Theorem 4.4 puts in
LOGSPACE.  That is the paper's tractability message in SQL clothes.

Run:  python examples/sql_on_bags.py
"""

from repro.core.bag import Bag, Tup
from repro.core.fragments import fragment_report
from repro.core.types import flat_bag_type
from repro.sql import Catalog, compile_sql, run_sql
from repro.surface import to_text


def main() -> None:
    catalog = Catalog({
        "orders": ("customer", "item"),
        "returns": ("customer", "item"),
        "vip": ("customer",),
    })
    database = {
        "orders": Bag([
            Tup("ann", "book"), Tup("ann", "book"), Tup("ann", "ink"),
            Tup("bob", "pen"), Tup("bob", "pen"), Tup("cid", "book"),
        ]),
        "returns": Bag([Tup("ann", "book"), Tup("bob", "pen")]),
        "vip": Bag([Tup("ann"), Tup("cid")]),
    }

    def show(sql: str) -> None:
        rows = run_sql(sql, catalog, database)
        print(f"  {sql}\n    -> {rows}")

    print("bag semantics vs set semantics, in SQL:")
    show("SELECT item FROM orders WHERE customer = 'ann'")
    show("SELECT DISTINCT item FROM orders WHERE customer = 'ann'")

    print("\nduplicate-sensitive set operations:")
    show("SELECT customer FROM orders UNION ALL SELECT customer FROM vip")
    show("SELECT customer FROM orders UNION SELECT customer FROM vip")
    # EXCEPT ALL is the paper's monus: 2 books bought, 1 returned.
    show("SELECT customer, item FROM orders EXCEPT ALL "
         "SELECT customer, item FROM returns")
    show("SELECT customer, item FROM orders INTERSECT ALL "
         "SELECT customer, item FROM returns")

    print("\naggregation (COUNT is duplicate-sensitive):")
    show("SELECT COUNT(*) FROM orders")
    show("SELECT COUNT(*) FROM orders WHERE item = 'book'")

    print("\njoins compile to product + selection:")
    sql = ("SELECT orders.item FROM orders, vip "
           "WHERE orders.customer = vip.customer")
    show(sql)
    compiled = compile_sql(sql, catalog)
    print("\n  compiled algebra:", to_text(compiled.expr))

    schema = {"orders": flat_bag_type(2), "returns": flat_bag_type(2),
              "vip": flat_bag_type(1)}
    report = fragment_report(compiled.expr, schema)
    print("  fragment:", report.fragment_name(),
          "-> the dialect lives in BALG^1: LOGSPACE data complexity")
    print("     (Theorem 4.4 — bags without nesting stay tractable).")


if __name__ == "__main__":
    main()
