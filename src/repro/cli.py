"""An interactive shell for the bag algebra: ``python -m repro``.

The REPL reads surface-syntax expressions (see :mod:`repro.surface`),
evaluates them against a session environment, and offers a handful of
commands::

    bag> B = {{['a','b'], ['a','b'], ['b','a']}}
    bag> pi[1](B)
    {{['a']*2, ['b']}}
    bag> :type pi[1](B)
    {{[U]}}
    bag> :fragment eps(B) - B
    BALG^1_0  (result type {{[U, U]}}, ...)
    bag> :encode pi[1](B)
    {(sa),(sa),(sb)}
    bag> :quit

Commands:

``name = expr``       bind the value of ``expr`` to ``name``
``expr``              evaluate and print
``:type expr``        infer the type
``:fragment expr``    fragment report (nesting, power nesting)
``:optimize expr``    show the rewritten expression
``:explain expr``     annotated plan tree (types + estimates)
``:encode expr``      print the Section 2 standard encoding
``:save name path``   write a binding's standard encoding to a file
``:load name path``   read a standard encoding from a file
``:env``              list bindings
``:quit`` / EOF       leave
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

from repro.core.bag import Bag
from repro.core.errors import ReproError
from repro.core.eval import Evaluator
from repro.core.fragments import fragment_report
from repro.core.typecheck import TypeChecker
from repro.core.types import type_of
from repro.optimizer import Optimizer
from repro.surface import parse, to_text

__all__ = ["Session", "main"]

_PROMPT = "bag> "


class Session:
    """One REPL session: named bindings plus the command dispatcher."""

    def __init__(self, out: Optional[TextIO] = None):
        self.bindings: Dict[str, object] = {}
        self.out = out if out is not None else sys.stdout

    # -- helpers ----------------------------------------------------------

    def _print(self, *parts: object) -> None:
        print(*parts, file=self.out)

    def _schema(self):
        return {name: type_of(value)
                for name, value in self.bindings.items()}

    def evaluate_text(self, text: str):
        expr = parse(text)
        return Evaluator().run(expr, self.bindings)

    # -- command handling ---------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session
        should end."""
        line = line.strip()
        if not line:
            return True
        try:
            return self._dispatch(line)
        except ReproError as error:
            self._print(f"error: {error}")
            return True

    def _dispatch(self, line: str) -> bool:
        if line in (":quit", ":q", ":exit"):
            return False
        if line == ":env":
            if not self.bindings:
                self._print("(no bindings)")
            for name in sorted(self.bindings):
                self._print(f"{name} = {self.bindings[name]!r}")
            return True
        if line.startswith(":type "):
            expr = parse(line[len(":type "):])
            inferred = TypeChecker().check(expr, self._schema())
            self._print(repr(inferred))
            return True
        if line.startswith(":fragment "):
            expr = parse(line[len(":fragment "):])
            report = fragment_report(expr, self._schema())
            self._print(f"{report.fragment_name()}  "
                        f"(result type {report.result_type!r}, "
                        f"operators {sorted(report.operators)})")
            return True
        if line.startswith(":optimize "):
            expr = parse(line[len(":optimize "):])
            optimized = Optimizer(schema=self._schema()).optimize(expr)
            self._print(to_text(optimized))
            return True
        if line.startswith(":explain "):
            from repro.optimizer import explain, stats_of
            expr = parse(line[len(":explain "):])
            statistics = {name: stats_of(value)
                          for name, value in self.bindings.items()
                          if isinstance(value, Bag)}
            self._print(explain(expr, self._schema(), statistics))
            return True
        if line.startswith(":encode "):
            from repro.core.encoding import standard_encoding
            value = self.evaluate_text(line[len(":encode "):])
            self._print(standard_encoding(value))
            return True
        if line.startswith(":save "):
            from repro.core.encoding import standard_encoding
            parts = line.split(maxsplit=2)
            if len(parts) != 3:
                self._print("usage: :save name path")
                return True
            _, name, path = parts
            if name not in self.bindings:
                self._print(f"error: no binding named {name!r}")
                return True
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(standard_encoding(self.bindings[name]))
            self._print(f"saved {name} to {path}")
            return True
        if line.startswith(":load "):
            from repro.core.encoding import decode_standard
            parts = line.split(maxsplit=2)
            if len(parts) != 3:
                self._print("usage: :load name path")
                return True
            _, name, path = parts
            with open(path, "r", encoding="utf-8") as handle:
                self.bindings[name] = decode_standard(
                    handle.read().strip())
            self._print(f"{name} = {self.bindings[name]!r}")
            return True
        if line.startswith(":"):
            self._print(f"unknown command {line.split()[0]!r} "
                        "(:type :fragment :optimize :explain :encode "
                        ":save :load :env :quit)")
            return True
        if "=" in line and _looks_like_binding(line):
            name, _, body = line.partition("=")
            value = self.evaluate_text(body.strip())
            self.bindings[name.strip()] = value
            self._print(f"{name.strip()} = {value!r}")
            return True
        self._print(repr(self.evaluate_text(line)))
        return True


def _looks_like_binding(line: str) -> bool:
    """``name = expr`` bindings vs expressions containing '=' inside
    sigma brackets: a binding's head is a bare identifier."""
    head = line.split("=", 1)[0].strip()
    return head.isidentifier()


def main(argv=None) -> int:
    """Entry point: interactive loop, or evaluate files given as
    arguments (one expression per line, '#' comments allowed)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    session = Session()
    if argv:
        for path in argv:
            with open(path, "r", encoding="utf-8") as handle:
                for raw in handle:
                    stripped = raw.split("#", 1)[0].strip()
                    if stripped and not session.handle(stripped):
                        return 0
        return 0
    print("repro bag-algebra shell — :quit to leave, :env for "
          "bindings")
    while True:
        try:
            line = input(_PROMPT)
        except EOFError:
            print()
            return 0
        if not session.handle(line):
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
