"""An interactive shell for the bag algebra: ``python -m repro``.

The REPL reads surface-syntax expressions (see :mod:`repro.surface`),
evaluates them against a session environment, and offers a handful of
commands::

    bag> B = {{['a','b'], ['a','b'], ['b','a']}}
    bag> pi[1](B)
    {{['a']*2, ['b']}}
    bag> :type pi[1](B)
    {{[U]}}
    bag> :fragment eps(B) - B
    BALG^1_0  (result type {{[U, U]}}, ...)
    bag> :encode pi[1](B)
    {(sa),(sa),(sb)}
    bag> :quit

Commands:

``name = expr``       bind the value of ``expr`` to ``name``
``expr``              evaluate and print
``:type expr``        infer the type
``:fragment expr``    fragment report (nesting, power nesting)
``:optimize expr``    show the rewritten expression
``:explain expr``     logical plan (types + estimates), the planner's
                      per-stage report (tree after normalize /
                      rewrite / lower with rule-firing counts), and
                      the physical plan (kernel per node, estimated
                      vs actual cardinalities)
``:encode expr``      print the Section 2 standard encoding
``:engine [name]``    show or set the evaluator
                      (physical | parallel | codegen | tree)
``:semiring [name]``  show or set the multiplicity semiring
                      (nat | bool | tropical | provenance)
``:resilience [on|off]``  show or toggle fault-tolerant parallel
                      execution (morsel retry + degradation ladder)
``:passes``           list the planner's passes and their on/off state
``:passes level N``   set the optimization level (0 | 1 | 2 | 3)
``:passes on NAME``   force one pass on (``off`` to force it off,
                      ``reset`` to clear all toggles)
``:workspace open P`` open a storage workspace: bind its relations
                      and compile against its statistics catalog
                      (``analyze`` refreshes stats, ``close``
                      detaches)
``:feedback on|off``  fold observed cardinalities back into the open
                      workspace's catalog after each run
``:save name path``   write a binding's standard encoding to a file
``:load name path``   read a standard encoding from a file
``:env``              list bindings
``:limits``           show the active resource limits
``:quit`` / EOF       leave

Resource limits (``python -m repro --max-steps 100000 --max-size
1000000 --timeout 5 ...``) apply per evaluated expression: a powerset
blow-up or a diverging fixpoint prints a structured ``error:`` line
and the shell stays alive.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, TextIO, Tuple

from repro.core.bag import Bag
from repro.core.errors import ReproError
from repro.core.eval import Evaluator
from repro.core.fragments import fragment_report
from repro.core.typecheck import TypeChecker
from repro.core.types import type_of
from repro.guard import Limits, ResourceGovernor
from repro.surface import parse, to_text

__all__ = ["Session", "main", "parse_limit_flags"]

_PROMPT = "bag> "

#: CLI flag -> (Limits field, converter).
_LIMIT_FLAGS = {
    "--max-steps": ("max_steps", int),
    "--max-size": ("max_size", int),
    "--powerset-budget": ("powerset_budget", int),
    "--timeout": ("timeout", float),
    "--max-depth": ("max_depth", int),
    "--max-iterations": ("max_iterations", int),
}


class Session:
    """One REPL session: named bindings plus the command dispatcher.

    ``limits`` (a :class:`~repro.guard.Limits`) governs every
    evaluation; a fresh governor is armed per expression so deadlines
    are per-query, matching how a query engine would meter requests.
    """

    def __init__(self, out: Optional[TextIO] = None,
                 limits: Optional[Limits] = None,
                 engine: str = "physical",
                 workers: Optional[int] = None,
                 parallel_backend: str = "thread",
                 opt_level: Optional[int] = None,
                 resilience: bool = False,
                 semiring: Optional[str] = None):
        if engine not in ("physical", "parallel", "codegen", "tree"):
            raise ValueError(f"unknown engine {engine!r} "
                             "(choices: physical, parallel, codegen, "
                             "tree)")
        if opt_level is not None and opt_level not in (0, 1, 2, 3):
            raise ValueError(f"--opt-level expects 0, 1, 2, or 3, "
                             f"got {opt_level!r}")
        from repro.core.semiring import resolve_semiring, semiring_name
        #: The multiplicity semiring's registry name; ``"nat"`` is the
        #: paper's N default (every fast path stays engaged).
        self.semiring = semiring_name(resolve_semiring(semiring))
        self.bindings: Dict[str, object] = {}
        self.out = out if out is not None else sys.stdout
        self.limits = limits
        self.engine = engine
        self.workers = workers
        self.parallel_backend = parallel_backend
        #: Fault-tolerant parallel execution (``--resilience`` /
        #: ``:resilience on``): morsel retry, pool respawn, and the
        #: degradation ladder; only consulted under engine=parallel.
        self.resilience = resilience
        #: ``None`` keeps the engine's default level (tree: 0,
        #: physical/parallel: 1, codegen: 3); ``:passes level N``
        #: overrides it.
        self.opt_level = opt_level
        #: Per-pass overrides from ``:passes on/off NAME``.
        self.pass_toggles: Dict[str, bool] = {}
        #: The open :class:`~repro.storage.Workspace` (``:workspace
        #: open PATH``): its relations become session bindings and
        #: its catalog drives compilation.
        self.workspace = None
        #: ``:feedback on`` folds observed cardinalities back into
        #: the open workspace's catalog after each evaluation.
        self.feedback = False

    # -- helpers ----------------------------------------------------------

    def _print(self, *parts: object) -> None:
        print(*parts, file=self.out)

    def _schema(self):
        return {name: type_of(value)
                for name, value in self.bindings.items()}

    def _default_level(self) -> int:
        """The opt level the current engine defaults to: the oracle
        walker evaluates queries as written, the codegen engine needs
        the fusion stage of level 3."""
        if self.engine == "tree":
            return 0
        if self.engine == "codegen":
            return 3
        return 1

    def _pass_config(self):
        """The session's :class:`~repro.planner.PassConfig`, or
        ``None`` when the user has not customised anything (the entry
        points then apply their own defaults)."""
        if (self.opt_level is None and not self.pass_toggles
                and self.semiring == "nat"):
            return None
        from repro.planner import PassConfig
        level = (self.opt_level if self.opt_level is not None
                 else self._default_level())
        return PassConfig.for_level(
            level,
            disabled=tuple(name for name, on in
                           self.pass_toggles.items() if not on),
            enabled=tuple(name for name, on in
                          self.pass_toggles.items() if on),
            semiring=self.semiring)

    def _semiring_arg(self) -> Optional[str]:
        """The semiring argument for the entry points: ``None`` keeps
        the default N fast paths."""
        return None if self.semiring == "nat" else self.semiring

    def evaluate_text(self, text: str):
        from repro.core.eval import evaluate
        expr = parse(text)
        extra = {}
        if self.engine == "parallel":
            extra = {"workers": self.workers,
                     "parallel_backend": self.parallel_backend,
                     "resilience": self.resilience}
        return evaluate(expr, self.bindings,
                        governor=self._governor(),
                        engine=self.engine,
                        config=self._pass_config(),
                        catalog=self.workspace,
                        feedback=self.feedback,
                        semiring=self._semiring_arg(), **extra)

    def _governor(self) -> Optional[ResourceGovernor]:
        if self.limits is None or not self.limits.any_set():
            return None
        return ResourceGovernor(self.limits)

    def _evaluator(self) -> Evaluator:
        governor = self._governor()
        if governor is None:
            return Evaluator()
        return Evaluator(governor=governor)

    # -- command handling ---------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session
        should end."""
        line = line.strip()
        if not line:
            return True
        try:
            return self._dispatch(line)
        except ReproError as error:
            self._print(f"error: {error}")
            return True

    def _dispatch(self, line: str) -> bool:
        if line in (":quit", ":q", ":exit"):
            return False
        if line == ":limits":
            if self.limits is None or not self.limits.any_set():
                self._print("(no limits; pass --max-steps / --max-size"
                            " / --timeout / --max-depth /"
                            " --max-iterations / --powerset-budget)")
            else:
                for name, converter in _LIMIT_FLAGS.values():
                    value = getattr(self.limits, name)
                    if value is not None:
                        self._print(f"{name} = {value}")
            return True
        if line == ":engine" or line.startswith(":engine "):
            choice = line[len(":engine"):].strip()
            if not choice:
                self._print(f"engine = {self.engine}")
            elif choice in ("physical", "parallel", "codegen",
                            "tree"):
                self.engine = choice
                self._print(f"engine = {self.engine}")
            else:
                self._print(f"error: unknown engine {choice!r} "
                            "(choices: physical, parallel, codegen, "
                            "tree)")
            return True
        if line == ":semiring" or line.startswith(":semiring "):
            from repro.core.semiring import known_semirings
            choice = line[len(":semiring"):].strip()
            if not choice:
                self._print(f"semiring = {self.semiring}")
            elif choice in known_semirings():
                self.semiring = choice
                self._print(f"semiring = {self.semiring}")
            else:
                names = ", ".join(known_semirings())
                self._print(f"error: unknown semiring {choice!r} "
                            f"(choices: {names})")
            return True
        if line == ":resilience" or line.startswith(":resilience "):
            choice = line[len(":resilience"):].strip()
            if not choice:
                self._print("resilience = "
                            + ("on" if self.resilience else "off"))
            elif choice in ("on", "off"):
                self.resilience = choice == "on"
                self._print(f"resilience = {choice}")
                if self.engine != "parallel":
                    self._print("(note: resilience applies under "
                                ":engine parallel)")
            else:
                self._print(f"error: :resilience expects 'on' or "
                            f"'off', got {choice!r}")
            return True
        if line == ":passes" or line.startswith(":passes "):
            return self._handle_passes(line[len(":passes"):].strip())
        if line == ":workspace" or line.startswith(":workspace "):
            return self._handle_workspace(
                line[len(":workspace"):].strip())
        if line == ":feedback" or line.startswith(":feedback "):
            choice = line[len(":feedback"):].strip()
            if not choice:
                self._print("feedback = "
                            + ("on" if self.feedback else "off"))
            elif choice in ("on", "off"):
                self.feedback = choice == "on"
                self._print(f"feedback = {choice}")
                if self.workspace is None:
                    self._print("(note: feedback applies once a "
                                "workspace is open)")
            else:
                self._print(f"error: :feedback expects 'on' or "
                            f"'off', got {choice!r}")
            return True
        if line == ":env":
            if not self.bindings:
                self._print("(no bindings)")
            for name in sorted(self.bindings):
                self._print(f"{name} = {self.bindings[name]!r}")
            return True
        if line.startswith(":type "):
            expr = parse(line[len(":type "):])
            inferred = TypeChecker().check(expr, self._schema())
            self._print(repr(inferred))
            return True
        if line.startswith(":fragment "):
            expr = parse(line[len(":fragment "):])
            report = fragment_report(expr, self._schema())
            self._print(f"{report.fragment_name()}  "
                        f"(result type {report.result_type!r}, "
                        f"operators {sorted(report.operators)})")
            return True
        if line.startswith(":optimize "):
            from repro import planner
            expr = parse(line[len(":optimize "):])
            config = self._pass_config() or planner.PassConfig.for_level(2)
            compiled = planner.compile(
                expr, planner.PlanContext(engine="tree",
                                          schema=self._schema(),
                                          config=config))
            self._print(to_text(compiled.logical))
            return True
        if line.startswith(":explain "):
            from repro.engine import explain_physical
            from repro.optimizer.explain import explain
            from repro.planner.stats import stats_of
            expr = parse(line[len(":explain "):])
            statistics = {name: stats_of(value)
                          for name, value in self.bindings.items()
                          if isinstance(value, Bag)}
            self._print("-- logical --")
            self._print(explain(expr, self._schema(), statistics))
            self._print("-- stages --")
            self._print(self._explain_stages(expr))
            self._print("-- physical --")
            # under :engine codegen the physical section is the fused
            # plan itself: segment report, lowered tree, and the
            # "-- codegen --" fusion counters
            self._print(explain_physical(
                expr, self.bindings, governor=self._governor(),
                engine=("codegen" if self.engine == "codegen"
                        else "physical"),
                config=self._pass_config(),
                catalog=self.workspace, feedback=self.feedback,
                semiring=self._semiring_arg()))
            if self.engine == "parallel":
                # the dual output: same expression, partitioned plan
                self._print("-- parallel --")
                self._print(explain_physical(
                    expr, self.bindings, governor=self._governor(),
                    engine="parallel", workers=self.workers,
                    parallel_backend=self.parallel_backend,
                    resilience=self.resilience,
                    semiring=self._semiring_arg()))
            return True
        if line.startswith(":encode "):
            from repro.core.encoding import standard_encoding
            value = self.evaluate_text(line[len(":encode "):])
            self._print(standard_encoding(value))
            return True
        if line.startswith(":save "):
            from repro.core.encoding import standard_encoding
            parts = line.split(maxsplit=2)
            if len(parts) != 3:
                self._print("usage: :save name path")
                return True
            _, name, path = parts
            if name not in self.bindings:
                self._print(f"error: no binding named {name!r}")
                return True
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(standard_encoding(self.bindings[name]))
            self._print(f"saved {name} to {path}")
            return True
        if line.startswith(":load "):
            from repro.core.encoding import decode_standard
            parts = line.split(maxsplit=2)
            if len(parts) != 3:
                self._print("usage: :load name path")
                return True
            _, name, path = parts
            with open(path, "r", encoding="utf-8") as handle:
                self.bindings[name] = decode_standard(
                    handle.read().strip())
            self._print(f"{name} = {self.bindings[name]!r}")
            return True
        if line.startswith(":"):
            self._print(f"unknown command {line.split()[0]!r} "
                        "(:type :fragment :optimize :explain :encode "
                        ":engine :semiring :resilience :passes "
                        ":workspace :feedback :save :load :env "
                        ":limits :quit)")
            return True
        if "=" in line and _looks_like_binding(line):
            name, _, body = line.partition("=")
            value = self.evaluate_text(body.strip())
            self.bindings[name.strip()] = value
            self._print(f"{name.strip()} = {value!r}")
            return True
        self._print(repr(self.evaluate_text(line)))
        return True


    # -- workspaces ---------------------------------------------------------

    def _handle_workspace(self, args: str) -> bool:
        """``:workspace`` — open/inspect a storage workspace.

        ``open PATH`` binds every relation into the session and makes
        the workspace's catalog drive compilation (the ``:explain``
        stages view then shows ``stats: R=catalog``); ``analyze``
        refreshes its statistics; ``close`` detaches it (bindings
        stay).
        """
        from repro.storage import Workspace
        if not args:
            if self.workspace is None:
                self._print("(no workspace; :workspace open PATH)")
            else:
                self._print(self.workspace.describe())
            return True
        parts = args.split()
        if parts[0] == "open" and len(parts) == 2:
            workspace = Workspace.open(parts[1])
            self.workspace = workspace
            self.bindings.update(workspace.database())
            names = ", ".join(workspace.relation_names()) or "(none)"
            self._print(f"workspace {workspace.name}: bound {names}")
            if not len(workspace.catalog):
                self._print("(catalog empty; run :workspace analyze)")
            return True
        if parts[0] == "analyze" and len(parts) == 1:
            if self.workspace is None:
                self._print("error: no workspace open")
                return True
            self.workspace.analyze()
            self._print(self.workspace.describe())
            return True
        if parts[0] == "close" and len(parts) == 1:
            self.workspace = None
            self._print("workspace closed (bindings kept)")
            return True
        self._print("usage: :workspace [open PATH | analyze | close]")
        return True

    # -- planner passes -----------------------------------------------------

    def _handle_passes(self, args: str) -> bool:
        """``:passes`` — inspect or toggle the planner's passes."""
        from repro.planner import (
            OPT_LEVELS, PassConfig, toggleable_passes,
        )
        if not args:
            from repro.planner import rule_named
            from repro.planner.rewrites import product_pushdown_rule
            config = self._pass_config() or PassConfig.for_level(
                self._default_level())
            level = config.opt_level
            self._print(f"opt-level {level}: {OPT_LEVELS[level]}")
            for name in toggleable_passes():
                if name in ("normalize", "rewrite", "cost-lowering"):
                    state = "on" if config.stage_active(name) else "off"
                    self._print(f"  [stage] {name:<22} {state}")
                    continue
                try:
                    rule = rule_named(name)
                except KeyError:
                    rule = product_pushdown_rule(lambda _: None)
                state = "on" if config.rule_active(rule) else "off"
                suffix = " (needs schema)" if rule.requires_schema \
                    else ""
                self._print(f"  [rule]  {name:<22} {state}{suffix}")
            return True
        parts = args.split()
        if parts[0] == "level" and len(parts) == 2:
            if parts[1] not in ("0", "1", "2", "3"):
                self._print(
                    "error: :passes level expects 0, 1, 2, or 3")
                return True
            self.opt_level = int(parts[1])
            self._print(f"opt-level = {self.opt_level}")
            return True
        if parts[0] == "reset":
            self.pass_toggles.clear()
            self.opt_level = None
            self._print("passes reset to engine defaults")
            return True
        if parts[0] in ("on", "off") and len(parts) == 2:
            name = parts[1]
            if name not in toggleable_passes():
                self._print(f"error: unknown pass {name!r} "
                            "(:passes lists them)")
                return True
            self.pass_toggles[name] = parts[0] == "on"
            self._print(f"{name} = {parts[0]}")
            return True
        self._print("usage: :passes [level N | on NAME | off NAME | "
                    "reset]")
        return True

    def _explain_stages(self, expr) -> str:
        """The planner's per-stage report for one expression."""
        from repro import planner
        config = self._pass_config() or planner.PassConfig.for_level(
            self._default_level())
        context = planner.PlanContext.capture(
            self.bindings, catalog=self.workspace,
            engine=self.engine,
            schema=self._schema(), governor=self._governor(),
            config=config)
        compiled = planner.compile(expr, context, trees=True)
        return compiled.report.render()


def _looks_like_binding(line: str) -> bool:
    """``name = expr`` bindings vs expressions containing '=' inside
    sigma brackets: a binding's head is a bare identifier."""
    head = line.split("=", 1)[0].strip()
    return head.isidentifier()


def parse_limit_flags(argv: List[str]) -> Tuple[Optional[Limits],
                                                List[str]]:
    """Split ``--max-steps N``-style limit flags from file arguments.

    Supports both ``--flag value`` and ``--flag=value``; raises
    :class:`~repro.core.errors.ReproError` (via SystemExit-free
    ``ValueError`` wrapping) on malformed flags so callers can report
    cleanly.
    """
    spec: Dict[str, object] = {}
    paths: List[str] = []
    index = 0
    while index < len(argv):
        argument = argv[index]
        name, equals, inline = argument.partition("=")
        if name in _LIMIT_FLAGS:
            field, converter = _LIMIT_FLAGS[name]
            if equals:
                raw = inline
            else:
                index += 1
                if index >= len(argv):
                    raise ValueError(f"{name} needs a value")
                raw = argv[index]
            try:
                spec[field] = converter(raw)
            except ValueError:
                raise ValueError(
                    f"{name} expects {converter.__name__}, got {raw!r}")
        elif argument.startswith("--"):
            raise ValueError(
                f"unknown option {argument!r} (limit flags: "
                f"{' '.join(sorted(_LIMIT_FLAGS))})")
        else:
            paths.append(argument)
        index += 1
    return (Limits(**spec) if spec else None), paths


def _parse_engine_flag(
        argv: List[str]
) -> Tuple[str, Optional[int], str, Optional[int], bool,
           Optional[str], List[str]]:
    """Strip ``--engine NAME`` / ``--workers N`` /
    ``--parallel-backend NAME`` / ``--opt-level N`` / ``--resilience``
    / ``--semiring NAME`` (and their ``=`` forms) from the argument
    list before the limit flags are parsed (so
    :func:`parse_limit_flags` keeps its strict unknown-flag check)."""
    engine = "physical"
    workers: Optional[int] = None
    backend = "thread"
    opt_level: Optional[int] = None
    resilience = False
    semiring: Optional[str] = None
    rest: List[str] = []
    index = 0

    def value_of(name: str, equals: str, inline: str) -> str:
        nonlocal index
        if equals:
            return inline
        index += 1
        if index >= len(argv):
            raise ValueError(f"{name} needs a value")
        return argv[index]

    while index < len(argv):
        argument = argv[index]
        name, equals, inline = argument.partition("=")
        if name == "--engine":
            engine = value_of(name, equals, inline)
            if engine not in ("physical", "parallel", "codegen",
                              "tree"):
                raise ValueError(
                    f"--engine expects 'physical', 'parallel', "
                    f"'codegen', or 'tree', got {engine!r}")
        elif name == "--workers":
            raw = value_of(name, equals, inline)
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(f"--workers expects int, got {raw!r}")
            if workers < 1:
                raise ValueError("--workers must be >= 1")
        elif name == "--parallel-backend":
            backend = value_of(name, equals, inline)
            if backend not in ("thread", "process"):
                raise ValueError(
                    f"--parallel-backend expects 'thread' or "
                    f"'process', got {backend!r}")
        elif name == "--opt-level":
            raw = value_of(name, equals, inline)
            if raw not in ("0", "1", "2", "3"):
                raise ValueError(
                    f"--opt-level expects 0, 1, 2, or 3, "
                    f"got {raw!r}")
            opt_level = int(raw)
        elif name == "--resilience":
            if equals:
                raise ValueError("--resilience takes no value")
            resilience = True
        elif name == "--semiring":
            from repro.core.semiring import known_semirings
            semiring = value_of(name, equals, inline)
            if semiring not in known_semirings():
                names = ", ".join(known_semirings())
                raise ValueError(
                    f"--semiring expects one of {names}, "
                    f"got {semiring!r}")
        else:
            rest.append(argument)
        index += 1
    return (engine, workers, backend, opt_level, resilience, semiring,
            rest)


def main(argv=None) -> int:
    """Entry point: interactive loop, or evaluate files given as
    arguments (one expression per line, '#' comments allowed).

    Limit flags (``--max-steps``, ``--max-size``, ``--timeout``,
    ``--max-depth``, ``--max-iterations``, ``--powerset-budget``)
    govern every evaluation; governed failures print as ``error:``
    lines instead of killing the process.  ``--engine
    physical|parallel|codegen|tree`` picks the evaluator (default:
    the physical kernel engine; ``codegen`` runs fused columnar
    closures); ``--workers N`` and ``--parallel-backend
    thread|process`` configure the parallel engine; ``--opt-level
    0|1|2|3`` picks the planner's pass set (0 disables every rewrite
    and lowers naively; 2 adds the full algebraic fixpoint; 3 adds
    the codegen fusion stage);
    ``--resilience`` turns on fault-tolerant parallel execution
    (morsel retry, pool respawn, degradation ladder); ``--semiring
    nat|bool|tropical|provenance`` picks the multiplicity semiring
    (``nat`` is the paper's bag default; ``bool`` runs set
    semantics, ``tropical`` min-plus costs, ``provenance``
    why-provenance polynomials — see ``docs/semiring.md``).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fuzz":
        # the conformance fuzz loop: ``python -m repro fuzz ...``
        from repro.testkit.cli import main as fuzz_main
        return fuzz_main(argv[1:])
    if argv and argv[0] == "workspace":
        # storage subcommands: ``python -m repro workspace ...``
        from repro.storage.cli import main as workspace_main
        return workspace_main(argv[1:])
    try:
        (engine, workers, backend, opt_level, resilience, semiring,
         argv) = _parse_engine_flag(argv)
        limits, paths = parse_limit_flags(argv)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = Session(limits=limits, engine=engine, workers=workers,
                      parallel_backend=backend, opt_level=opt_level,
                      resilience=resilience, semiring=semiring)
    if paths:
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                for raw in handle:
                    stripped = raw.split("#", 1)[0].strip()
                    if stripped and not session.handle(stripped):
                        return 0
        return 0
    print("repro bag-algebra shell — :quit to leave, :env for "
          "bindings")
    while True:
        try:
            line = input(_PROMPT)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            # ^C cancels the current line, not the session
            print()
            continue
        if not session.handle(line):
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
