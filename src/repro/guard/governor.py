"""The resource governor: one object, every limit.

The paper guarantees that this system routinely sits one expression
away from disaster: powerset/powerbag output is (hyper)exponential in
the input (Prop 3.2, Thm 5.5), ``BALG^2`` evaluation is PSPACE-hard
(Thm 5.1), and the algebra with IFP is Turing complete (Thm 6.6) — so
no static analysis can promise termination.  Instead of each layer
improvising its own cap (a powerset budget here, a ``max_iterations``
there), a single :class:`ResourceGovernor` is threaded through the
evaluator, the IFP engine, the game search, the SQL pipeline, the
workload generators, and the CLI.  It enforces

* **step budgets** — a cap on governed work units (node evaluations,
  search positions, generated elements);
* **size budgets** — a cap on the standard-encoding size of any
  intermediate bag (the paper's complexity measure);
* **wall-clock deadlines** — armed when evaluation starts;
* **recursion-depth limits** — proactive, instead of waiting for
  Python's :class:`RecursionError`;
* **iteration budgets** — for fixpoint engines;
* **cooperative cancellation** — via :class:`CancellationToken`;
* **deterministic fault injection** — via :mod:`repro.guard.faults`.

All failures raise the structured :class:`~repro.core.errors.GovernedError`
family, carrying partial stats, so callers degrade gracefully.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, RecursionDepthExceeded,
)

__all__ = ["Limits", "CancellationToken", "ResourceGovernor"]


@dataclass(frozen=True)
class Limits:
    """A declarative bundle of resource limits; ``None`` = unlimited.

    ``timeout`` is in seconds of wall clock, measured from
    :meth:`ResourceGovernor.start`; everything else is a count.
    """

    max_steps: Optional[int] = None
    max_size: Optional[int] = None
    powerset_budget: Optional[int] = None
    timeout: Optional[float] = None
    max_depth: Optional[int] = None
    max_iterations: Optional[int] = None

    def any_set(self) -> bool:
        return any(value is not None for value in (
            self.max_steps, self.max_size, self.powerset_budget,
            self.timeout, self.max_depth, self.max_iterations))


class CancellationToken:
    """Cooperative cancellation: callers flip it, governed loops obey.

    The token is thread-safe in the only way that matters here — a
    single boolean write — so a watchdog thread (or a signal handler)
    can cancel an evaluation running on the main thread.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"cancelled: {self.reason!r}" if self._cancelled else "live"
        return f"CancellationToken({state})"


class ResourceGovernor:
    """Enforces :class:`Limits` over a governed computation.

    One governor is shared by every layer participating in a single
    logical query (evaluator, fixpoint engine, compiled SQL, ...); its
    counters therefore measure the *whole* computation.  ``clock`` is
    injectable so deadline behaviour is testable deterministically.
    """

    __slots__ = ("max_steps", "max_size", "powerset_budget", "timeout",
                 "max_depth", "max_iterations", "token", "faults",
                 "clock", "steps", "depth", "_deadline", "_started_at")

    def __init__(self, limits: Optional[Limits] = None, *,
                 max_steps: Optional[int] = None,
                 max_size: Optional[int] = None,
                 powerset_budget: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_depth: Optional[int] = None,
                 max_iterations: Optional[int] = None,
                 token: Optional[CancellationToken] = None,
                 faults=None,
                 clock: Callable[[], float] = time.monotonic):
        limits = limits if limits is not None else Limits()

        def pick(explicit, declared):
            return explicit if explicit is not None else declared

        self.max_steps = pick(max_steps, limits.max_steps)
        self.max_size = pick(max_size, limits.max_size)
        self.powerset_budget = pick(powerset_budget,
                                    limits.powerset_budget)
        self.timeout = pick(timeout, limits.timeout)
        self.max_depth = pick(max_depth, limits.max_depth)
        self.max_iterations = pick(max_iterations, limits.max_iterations)
        self.token = token if token is not None else CancellationToken()
        self.faults = faults
        self.clock = clock
        self.steps = 0
        self.depth = 0
        self._deadline: Optional[float] = None
        self._started_at: Optional[float] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ResourceGovernor":
        """Reset counters and arm the deadline; returns ``self``."""
        self.steps = 0
        self.depth = 0
        self._started_at = self.clock()
        self._deadline = (self._started_at + self.timeout
                          if self.timeout is not None else None)
        return self

    def ensure_started(self) -> None:
        if self._started_at is None:
            self.start()

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the first start)."""
        if self._started_at is None:
            return 0.0
        return self.clock() - self._started_at

    def remaining_time(self) -> Optional[float]:
        """Seconds until the deadline; ``None`` when no deadline."""
        if self._deadline is None:
            return None
        return self._deadline - self.clock()

    def limits(self) -> Limits:
        """The governor's configuration as a :class:`Limits` bundle."""
        return Limits(max_steps=self.max_steps, max_size=self.max_size,
                      powerset_budget=self.powerset_budget,
                      timeout=self.timeout, max_depth=self.max_depth,
                      max_iterations=self.max_iterations)

    # -- checks -----------------------------------------------------------

    def tick(self, stats: Any = None) -> None:
        """Account one governed work unit and run every cheap check.

        Called once per node evaluation, per explored game position,
        per generated workload element.  Raises the structured
        :class:`~repro.core.errors.GovernedError` family.
        """
        self.ensure_started()
        self.steps += 1
        if self.faults is not None:
            self.faults.on_tick(self.steps, stats)
        if self.token.cancelled:
            reason = self.token.reason or "cancellation requested"
            raise Cancelled(f"evaluation cancelled: {reason}",
                            stats=stats, reason=self.token.reason,
                            steps=self.steps)
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"step budget exhausted after {self.max_steps} governed "
                "steps", stats=stats, budget="steps",
                limit=self.max_steps, observed=self.steps)
        if self._deadline is not None and self.clock() > self._deadline:
            raise DeadlineExceeded(
                f"deadline of {self.timeout}s exceeded after "
                f"{self.steps} governed steps", stats=stats,
                timeout=self.timeout, steps=self.steps)

    def check_cancelled(self, stats: Any = None) -> None:
        """Cancellation-only check, for loops that are not step-counted."""
        if self.token.cancelled:
            reason = self.token.reason or "cancellation requested"
            raise Cancelled(f"evaluation cancelled: {reason}",
                            stats=stats, reason=self.token.reason,
                            steps=self.steps)

    def check_size(self, size: int, stats: Any = None) -> None:
        """Enforce the intermediate-size budget on one materialised bag."""
        if self.max_size is not None and size > self.max_size:
            raise BudgetExceeded(
                f"intermediate result of encoding size {size} exceeds "
                f"the size budget {self.max_size}", stats=stats,
                budget="size", limit=self.max_size, observed=size)

    def check_iterations(self, completed: int, stats: Any = None) -> None:
        """Enforce the fixpoint-iteration budget."""
        if (self.max_iterations is not None
                and completed >= self.max_iterations):
            raise BudgetExceeded(
                f"iteration budget exhausted after {completed} "
                "fixpoint iterations", stats=stats, budget="iterations",
                limit=self.max_iterations, observed=completed)

    def enter(self, stats: Any = None) -> None:
        """Track one level of evaluator recursion (pair with :meth:`exit`)."""
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            raise RecursionDepthExceeded(
                f"expression nesting exceeds the depth limit "
                f"{self.max_depth}", stats=stats, limit=self.max_depth,
                observed=self.depth)

    def exit(self) -> None:
        self.depth -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResourceGovernor(steps={self.steps}, "
                f"limits={self.limits()!r})")
