"""Retry-with-backoff for governed computations.

Benchmark batteries run hundreds of experiment cells; one cell hitting
its budget must become a recorded data point, not an aborted battery.
:func:`run_with_retry` runs a callable, retries the failure classes
the policy declares transient (by default only deadline expiry — step
and size budgets are deterministic, retrying them is wasted work), and
classifies the outcome into the stable status labels the benchmark
harness persists: ``ok`` / ``retried`` / ``budget-exceeded`` /
``deadline-exceeded`` / ``cancelled``.

``sleep`` is injectable so backoff behaviour is testable without
actually waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
)

__all__ = ["RetryPolicy", "RunOutcome", "run_with_retry",
           "classify_governed_error"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, what to retry, and how long to back off.

    ``backoff`` is the delay before the second attempt; each further
    retry multiplies it by ``multiplier``.
    """

    attempts: int = 3
    backoff: float = 0.0
    multiplier: float = 2.0
    retry_on: Tuple[Type[GovernedError], ...] = (DeadlineExceeded,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


@dataclass
class RunOutcome:
    """The classified result of a governed (possibly retried) run."""

    status: str
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "retried")

    @property
    def stats(self):
        """Partial stats carried by the governed failure, if any."""
        return getattr(self.error, "stats", None)


def classify_governed_error(error: GovernedError) -> str:
    """Map a governed failure onto a stable status label."""
    if isinstance(error, BudgetExceeded):
        return "budget-exceeded"
    if isinstance(error, DeadlineExceeded):
        return "deadline-exceeded"
    if isinstance(error, Cancelled):
        return "cancelled"
    return "governed-error"


def run_with_retry(fn: Callable[[int], Any],
                   policy: Optional[RetryPolicy] = None, *,
                   sleep: Callable[[float], None] = time.sleep
                   ) -> RunOutcome:
    """Run ``fn(attempt)`` under the policy; never raises governed errors.

    ``fn`` receives the 1-based attempt number (so it can build a
    fresh governor per attempt).  Non-governed exceptions propagate —
    they are bugs, not resource exhaustion.
    """
    policy = policy if policy is not None else RetryPolicy()
    delay = policy.backoff
    last: Optional[GovernedError] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            value = fn(attempt)
        except GovernedError as error:
            last = error
            transient = isinstance(error, policy.retry_on)
            if transient and attempt < policy.attempts:
                if delay > 0:
                    sleep(delay)
                    delay *= policy.multiplier
                continue
            return RunOutcome(classify_governed_error(error),
                              error=error, attempts=attempt)
        return RunOutcome("ok" if attempt == 1 else "retried",
                          value=value, attempts=attempt)
    # policy.attempts >= 1 guarantees the loop returned unless every
    # attempt raised a transient error
    assert last is not None
    return RunOutcome(classify_governed_error(last), error=last,
                      attempts=policy.attempts)
