"""Retry-with-backoff for governed computations.

Benchmark batteries run hundreds of experiment cells; one cell hitting
its budget must become a recorded data point, not an aborted battery.
:func:`run_with_retry` runs a callable, retries the failure classes
the policy declares transient (by default deadline expiry and worker
loss — step and size budgets are deterministic, retrying them is
wasted work), and classifies the outcome into the stable status labels
the benchmark harness persists: ``ok`` / ``retried`` / ``degraded`` /
``budget-exceeded`` / ``deadline-exceeded`` / ``cancelled`` /
``worker-lost``.

``sleep`` is injectable so backoff behaviour is testable without
actually waiting, and the optional ``jitter`` is driven by an
injectable seeded RNG so concurrent retries desynchronize without
giving up reproducibility.  ``jitter=0.0`` (the default) keeps the
delay sequence bit-identical to the pre-jitter behaviour.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
)
from repro.guard.faults import WorkerCrash

__all__ = ["RetryPolicy", "RunOutcome", "run_with_retry",
           "classify_governed_error", "WORKER_LOSS_ERRORS"]

#: Infrastructure failures that mean "the worker died", not "the query
#: misbehaved": always transient, classified ``worker-lost``.
WORKER_LOSS_ERRORS = (WorkerCrash, BrokenExecutor)


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, what to retry, and how long to back off.

    ``backoff`` is the delay before the second attempt; each further
    retry multiplies it by ``multiplier``.  ``jitter`` (a fraction in
    ``[0, 1]``) stretches every delay by up to ``jitter * delay``,
    drawn from the RNG handed to :meth:`delay_for` — concurrent
    retries against a shared resource stop firing in lockstep.  The
    default ``jitter=0.0`` leaves delays exactly as before.
    """

    attempts: int = 3
    backoff: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (DeadlineExceeded,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay_for(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """The backoff before retrying after the ``attempt``-th
        failure (1-based): ``backoff * multiplier**(attempt-1)``,
        stretched by the seeded jitter when one is configured."""
        delay = self.backoff * self.multiplier ** (attempt - 1)
        if self.jitter > 0.0 and rng is not None and delay > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass
class RunOutcome:
    """The classified result of a governed (possibly retried) run.

    ``degraded`` marks a run that *did* produce a value but only after
    the resilience ladder demoted execution (parallel → serial, pool
    respawn, ...) — visible in the persisted status, never silent.
    """

    status: str
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "retried", "degraded")

    @property
    def stats(self):
        """Partial stats carried by the governed failure, if any."""
        return getattr(self.error, "stats", None)

    def mark_degraded(self) -> "RunOutcome":
        """Relabel a successful outcome as ``degraded`` (a value was
        produced, but only through a recorded demotion)."""
        if self.status in ("ok", "retried"):
            self.status = "degraded"
        return self


def classify_governed_error(error: BaseException) -> str:
    """Map a governed (or worker-loss) failure onto a stable label."""
    if isinstance(error, WORKER_LOSS_ERRORS):
        return "worker-lost"
    if isinstance(error, BudgetExceeded):
        return "budget-exceeded"
    if isinstance(error, DeadlineExceeded):
        return "deadline-exceeded"
    if isinstance(error, Cancelled):
        return "cancelled"
    return "governed-error"


def run_with_retry(fn: Callable[[int], Any],
                   policy: Optional[RetryPolicy] = None, *,
                   sleep: Callable[[float], None] = time.sleep,
                   rng: Optional[random.Random] = None
                   ) -> RunOutcome:
    """Run ``fn(attempt)`` under the policy; never raises governed errors.

    ``fn`` receives the 1-based attempt number (so it can build a
    fresh governor per attempt).  Worker-loss failures
    (:data:`WORKER_LOSS_ERRORS`) are always transient — a respawned
    pool may well succeed; other non-governed exceptions propagate —
    they are bugs, not resource exhaustion.  ``rng`` seeds the
    jitter; omit it (or keep ``jitter=0``) for bit-identical delays.
    """
    policy = policy if policy is not None else RetryPolicy()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            value = fn(attempt)
        except GovernedError as error:
            last = error
            transient = isinstance(error, policy.retry_on)
            if transient and attempt < policy.attempts:
                delay = policy.delay_for(attempt, rng)
                if delay > 0:
                    sleep(delay)
                continue
            return RunOutcome(classify_governed_error(error),
                              error=error, attempts=attempt)
        except WORKER_LOSS_ERRORS as error:
            last = error
            if attempt < policy.attempts:
                delay = policy.delay_for(attempt, rng)
                if delay > 0:
                    sleep(delay)
                continue
            return RunOutcome("worker-lost", error=error,
                              attempts=attempt)
        return RunOutcome("ok" if attempt == 1 else "retried",
                          value=value, attempts=attempt)
    # policy.attempts >= 1 guarantees the loop returned unless every
    # attempt raised a transient error
    assert last is not None
    return RunOutcome(classify_governed_error(last), error=last,
                      attempts=policy.attempts)
