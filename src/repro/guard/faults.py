"""Deterministic fault injection for the resource governor.

Robustness claims ("a blow-up degrades gracefully") are only testable
if the failure can be produced *on demand, at a chosen point*.  A
:class:`FaultPlan` attached to a
:class:`~repro.guard.governor.ResourceGovernor` fires at exactly the
Nth governed step and raises the same structured exception the real
limit would — budget exhaustion, deadline expiry, or cancellation — so
tests and benchmarks can rehearse every failure path without building
an actual exponential input.

``max_firings`` makes a fault *transient*: after firing that many
times it goes quiet, which is how the retry runner's happy path
("failed twice, succeeded on the third attempt") is exercised.

Chaos plans (:class:`ChaosPlan`) extend the same idea to the parallel
executor: instead of firing at the Nth governed step of one governor,
they target *workers and morsels* — a ``worker-crash`` kills the
worker (a real ``os._exit`` under the process backend, so the parent
observes ``BrokenProcessPool``), a ``morsel-fault`` raises
:class:`WorkerCrash` partway through a shard's segment program.
Firing is probabilistic but fully deterministic: the decision for
``(shard, attempt)`` is a pure function of the plan's seed, so a run
replays byte-for-byte, yet a *retried* morsel re-rolls the dice — the
property the resilience layer's convergence depends on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from random import Random
from typing import Any, Optional, Sequence, Tuple

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
)

__all__ = ["FaultPlan", "FaultSequence", "FAULT_KINDS", "is_injected",
           "ChaosPlan", "WorkerCrash", "CHAOS_KINDS"]

#: The injectable failure kinds and the exception class each raises.
FAULT_KINDS = {
    "budget": BudgetExceeded,
    "deadline": DeadlineExceeded,
    "cancel": Cancelled,
}


@dataclass
class FaultPlan:
    """Fire one injected fault at the ``at_step``-th governed step.

    ``kind`` is one of ``"budget"``, ``"deadline"``, ``"cancel"``.
    ``max_firings=None`` fires every time the step matches (every
    retry attempt restarts the governor's step counter); a finite
    value models a transient failure that eventually clears.
    """

    at_step: int
    kind: str = "budget"
    message: Optional[str] = None
    max_firings: Optional[int] = None
    firings: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if self.at_step < 1:
            raise ValueError("at_step must be >= 1")

    def on_tick(self, step: int, stats: Any = None) -> None:
        """Governor hook: called with the current step count."""
        if step != self.at_step:
            return
        if (self.max_firings is not None
                and self.firings >= self.max_firings):
            return
        self.firings += 1
        message = self.message or (
            f"injected {self.kind} fault at governed step {step}")
        raise FAULT_KINDS[self.kind](
            message, stats=stats, injected=True, step=step,
            firing=self.firings)


@dataclass
class FaultSequence:
    """Several plans consulted in order (first match fires)."""

    plans: Sequence[FaultPlan] = ()

    def on_tick(self, step: int, stats: Any = None) -> None:
        for plan in self.plans:
            plan.on_tick(step, stats)


def is_injected(error: GovernedError) -> bool:
    """Was this governed failure produced by fault injection?"""
    return bool(getattr(error, "injected", False))


# ----------------------------------------------------------------------
# Chaos: worker- and morsel-scoped fault plans
# ----------------------------------------------------------------------

class WorkerCrash(RuntimeError):
    """A simulated worker death.

    Deliberately *not* a :class:`~repro.core.errors.GovernedError`:
    worker loss is an infrastructure failure, not a resource verdict,
    so without the resilience layer it propagates like any other crash
    (fail-fast), while with it the morsel is retried.  Instances are
    picklable, so a crash raised inside a process-pool worker crosses
    the pool boundary with its scope intact.
    """

    def __init__(self, message: str, shard: Optional[int] = None,
                 attempt: Optional[int] = None):
        super().__init__(message)
        self.shard = shard
        self.attempt = attempt
        self.injected = True

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.shard,
                                 self.attempt))


#: The chaos failure kinds.  ``worker-crash`` hard-kills the hosting
#: process when it can (``os._exit`` → ``BrokenProcessPool`` in the
#: parent) and degrades to a raised :class:`WorkerCrash` on the thread
#: backend; ``morsel-fault`` always raises :class:`WorkerCrash`.
CHAOS_KINDS = ("worker-crash", "morsel-fault")


@dataclass(frozen=True)
class ChaosPlan:
    """Scoped, seeded, probabilistic fault injection for morsels.

    ``probability`` is the chance that one ``(shard, attempt)``
    execution fails; the decision — and the program step the fault
    fires at — is a pure function of ``(seed, shard, attempt)``, so
    identical runs replay identically while retries of the same shard
    draw fresh outcomes.  ``shards`` narrows the blast radius to
    specific morsel indexes; ``max_attempt`` silences the plan after
    the Nth attempt of a shard (``probability=1.0, max_attempt=1``
    is the deterministic "fails exactly once, retry succeeds" plan).

    The plan is a frozen dataclass of primitives: picklable, so the
    process backend ships it to workers inside the task payload.
    """

    kind: str = "morsel-fault"
    probability: float = 0.0
    seed: int = 0
    shards: Optional[Tuple[int, ...]] = None
    max_attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; "
                             f"expected one of {list(CHAOS_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.shards is not None:
            object.__setattr__(self, "shards",
                               tuple(sorted(set(self.shards))))

    def _rng(self, shard: int, attempt: int) -> Random:
        return Random((self.seed * 1_000_003 + shard) * 1_000_003
                      + attempt)

    def should_fire(self, shard: int, attempt: int) -> bool:
        """The deterministic per-(shard, attempt) firing decision."""
        if self.probability <= 0.0:
            return False
        if self.shards is not None and shard not in self.shards:
            return False
        if self.max_attempt is not None and attempt > self.max_attempt:
            return False
        if self.probability >= 1.0:
            return True
        return self._rng(shard, attempt).random() < self.probability

    def fire_at(self, shard: int, attempt: int,
                num_steps: int) -> Optional[int]:
        """The 0-based program step this execution dies at, or
        ``None``.  Picking a seeded step partway through the segment
        means retries replay *partial* work — exactly the idempotence
        the immutable input shards must guarantee."""
        if not self.should_fire(shard, attempt):
            return None
        if num_steps <= 1:
            return 0
        return self._rng(shard, attempt).randrange(num_steps)

    def fire(self, shard: int, attempt: int, *,
             in_process_worker: bool = False) -> None:
        """Raise (or die).  ``in_process_worker=True`` marks a
        process-pool child, where ``worker-crash`` exits hard so the
        parent sees genuine worker loss."""
        if self.kind == "worker-crash" and in_process_worker:
            # a real worker death: the parent's future fails with
            # BrokenProcessPool and the whole pool is condemned
            os._exit(13)
        raise WorkerCrash(
            f"injected {self.kind} on shard {shard} "
            f"(attempt {attempt})", shard=shard, attempt=attempt)
