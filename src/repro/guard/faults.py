"""Deterministic fault injection for the resource governor.

Robustness claims ("a blow-up degrades gracefully") are only testable
if the failure can be produced *on demand, at a chosen point*.  A
:class:`FaultPlan` attached to a
:class:`~repro.guard.governor.ResourceGovernor` fires at exactly the
Nth governed step and raises the same structured exception the real
limit would — budget exhaustion, deadline expiry, or cancellation — so
tests and benchmarks can rehearse every failure path without building
an actual exponential input.

``max_firings`` makes a fault *transient*: after firing that many
times it goes quiet, which is how the retry runner's happy path
("failed twice, succeeded on the third attempt") is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
)

__all__ = ["FaultPlan", "FaultSequence", "FAULT_KINDS", "is_injected"]

#: The injectable failure kinds and the exception class each raises.
FAULT_KINDS = {
    "budget": BudgetExceeded,
    "deadline": DeadlineExceeded,
    "cancel": Cancelled,
}


@dataclass
class FaultPlan:
    """Fire one injected fault at the ``at_step``-th governed step.

    ``kind`` is one of ``"budget"``, ``"deadline"``, ``"cancel"``.
    ``max_firings=None`` fires every time the step matches (every
    retry attempt restarts the governor's step counter); a finite
    value models a transient failure that eventually clears.
    """

    at_step: int
    kind: str = "budget"
    message: Optional[str] = None
    max_firings: Optional[int] = None
    firings: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if self.at_step < 1:
            raise ValueError("at_step must be >= 1")

    def on_tick(self, step: int, stats: Any = None) -> None:
        """Governor hook: called with the current step count."""
        if step != self.at_step:
            return
        if (self.max_firings is not None
                and self.firings >= self.max_firings):
            return
        self.firings += 1
        message = self.message or (
            f"injected {self.kind} fault at governed step {step}")
        raise FAULT_KINDS[self.kind](
            message, stats=stats, injected=True, step=step,
            firing=self.firings)


@dataclass
class FaultSequence:
    """Several plans consulted in order (first match fires)."""

    plans: Sequence[FaultPlan] = ()

    def on_tick(self, step: int, stats: Any = None) -> None:
        for plan in self.plans:
            plan.on_tick(step, stats)


def is_injected(error: GovernedError) -> bool:
    """Was this governed failure produced by fault injection?"""
    return bool(getattr(error, "injected", False))
