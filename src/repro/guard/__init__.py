"""repro.guard — resource-governed evaluation.

One :class:`ResourceGovernor` is threaded through every layer that can
run away (the evaluator, the IFP engine, the game search, the SQL
pipeline, the workload generators, the CLI); it enforces step/size/
powerset budgets, wall-clock deadlines, recursion-depth limits, and
cooperative cancellation, failing with the structured
:class:`~repro.core.errors.GovernedError` family that carries partial
:class:`~repro.core.eval.EvalStats`.  See ``docs/resource_limits.md``
for the guard-per-theorem map.
"""

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
    IfpDivergenceError, RecursionDepthExceeded,
)
from repro.guard.faults import (
    CHAOS_KINDS, FAULT_KINDS, ChaosPlan, FaultPlan, FaultSequence,
    WorkerCrash, is_injected,
)
from repro.guard.governor import CancellationToken, Limits, ResourceGovernor
from repro.guard.retry import (
    WORKER_LOSS_ERRORS, RetryPolicy, RunOutcome,
    classify_governed_error, run_with_retry,
)

__all__ = [
    "BudgetExceeded", "Cancelled", "DeadlineExceeded", "GovernedError",
    "IfpDivergenceError", "RecursionDepthExceeded",
    "FAULT_KINDS", "FaultPlan", "FaultSequence", "is_injected",
    "CHAOS_KINDS", "ChaosPlan", "WorkerCrash", "WORKER_LOSS_ERRORS",
    "CancellationToken", "Limits", "ResourceGovernor",
    "RetryPolicy", "RunOutcome", "classify_governed_error",
    "run_with_retry",
]
