"""``python -m repro``: the interactive bag-algebra shell."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
