"""CALC1: the typed calculus for complex objects (Section 5, [HS91]).

CALC1 extends the relational calculus with the constructible types
tuple and set, a component function ``. i``, and the typed logical
predicates membership, containment, and equality.  Its semantics is
the *active domain* semantics: a quantified variable of type ``T``
ranges over ``dom(T, A)``, the objects of type ``T`` constructible
from the atoms of the input structure (the completion ``Comp(A, T)``).

The calculus matters here because of Theorem 5.3: RALG^2 = CALC1 on
sets-of-tuples-of-atoms types, and the GV90 game characterises CALC1
k-variable equivalence.  Lemma 5.4's game argument therefore transfers
to RALG^2 — which this module lets us probe with concrete sentences.

Formulas are ordinary ASTs evaluated against
:class:`~repro.games.structures.CoStructure` instances; the quantifier
depth and variable count (the game parameters) are computed
syntactically.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError, UnboundVariableError
from repro.core.types import Type
from repro.games.structures import CoStructure, dom

__all__ = [
    "Term", "TermVar", "TermConst", "Component",
    "Formula", "Eq", "Member", "Contained", "Rel",
    "Not", "And", "Or", "Implies", "Exists", "Forall",
    "satisfies", "quantifier_depth", "variable_names",
]


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

class Term:
    """A term denotes a complex object under an environment."""

    def value(self, env: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def names(self) -> FrozenSet[str]:
        raise NotImplementedError


class TermVar(Term):
    """A typed variable occurrence."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def value(self, env: Dict[str, Any]) -> Any:
        if self.name not in env:
            raise UnboundVariableError(
                f"free variable {self.name!r} in calculus formula")
        return env[self.name]

    def names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


class TermConst(Term):
    """A constant object."""

    __slots__ = ("constant",)

    def __init__(self, constant: Any):
        self.constant = constant

    def value(self, env: Dict[str, Any]) -> Any:
        return self.constant

    def names(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.constant)


class Component(Term):
    """The component function ``t . i`` (1-based), defined on tuples."""

    __slots__ = ("term", "index")

    def __init__(self, term: Term, index: int):
        self.term = term
        self.index = index

    def value(self, env: Dict[str, Any]) -> Any:
        obj = self.term.value(env)
        if not isinstance(obj, Tup):
            raise BagTypeError(
                f"component of non-tuple object {obj!r}")
        return obj.attribute(self.index)

    def names(self) -> FrozenSet[str]:
        return self.term.names()

    def __repr__(self) -> str:
        return f"{self.term!r}.{self.index}"


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------

class Formula:
    """Base class of CALC1 formulas."""

    def holds(self, structure: CoStructure, env: Dict[str, Any],
              dom_budget: int) -> bool:
        raise NotImplementedError

    def quantifier_depth(self) -> int:
        raise NotImplementedError

    def variable_names(self) -> FrozenSet[str]:
        raise NotImplementedError


class _Atomic(Formula):
    def quantifier_depth(self) -> int:
        return 0


class Eq(_Atomic):
    """``t1 = t2`` (typed equality)."""

    def __init__(self, left: Term, right: Term):
        self.left, self.right = left, right

    def holds(self, structure, env, dom_budget) -> bool:
        return self.left.value(env) == self.right.value(env)

    def variable_names(self):
        return self.left.names() | self.right.names()

    def __repr__(self):
        return f"({self.left!r} = {self.right!r})"


class Member(_Atomic):
    """``t1 in t2`` (typed membership in a set)."""

    def __init__(self, element: Term, container: Term):
        self.element, self.container = element, container

    def holds(self, structure, env, dom_budget) -> bool:
        container = self.container.value(env)
        if not isinstance(container, Bag):
            raise BagTypeError("membership in a non-set object")
        return self.element.value(env) in container

    def variable_names(self):
        return self.element.names() | self.container.names()

    def __repr__(self):
        return f"({self.element!r} ∈ {self.container!r})"


class Contained(_Atomic):
    """``t1 ⊆ t2`` (typed set containment)."""

    def __init__(self, left: Term, right: Term):
        self.left, self.right = left, right

    def holds(self, structure, env, dom_budget) -> bool:
        left, right = self.left.value(env), self.right.value(env)
        if not isinstance(left, Bag) or not isinstance(right, Bag):
            raise BagTypeError("containment between non-set objects")
        return left.is_subbag_of(right)

    def variable_names(self):
        return self.left.names() | self.right.names()

    def __repr__(self):
        return f"({self.left!r} ⊆ {self.right!r})"


class Rel(_Atomic):
    """A nonlogical relation atom ``R(t1, ..., tn)``."""

    def __init__(self, name: str, terms: Sequence[Term]):
        self.name = name
        self.terms = tuple(terms)

    def holds(self, structure, env, dom_budget) -> bool:
        entry = tuple(term.value(env) for term in self.terms)
        return entry in structure.relation(self.name)

    def variable_names(self):
        names: FrozenSet[str] = frozenset()
        for term in self.terms:
            names |= term.names()
        return names

    def __repr__(self):
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.name}({inner})"


class Not(Formula):
    def __init__(self, body: Formula):
        self.body = body

    def holds(self, structure, env, dom_budget) -> bool:
        return not self.body.holds(structure, env, dom_budget)

    def quantifier_depth(self) -> int:
        return self.body.quantifier_depth()

    def variable_names(self):
        return self.body.variable_names()

    def __repr__(self):
        return f"¬{self.body!r}"


class _Connective(Formula):
    symbol = "?"

    def __init__(self, left: Formula, right: Formula):
        self.left, self.right = left, right

    def quantifier_depth(self) -> int:
        return max(self.left.quantifier_depth(),
                   self.right.quantifier_depth())

    def variable_names(self):
        return self.left.variable_names() | self.right.variable_names()

    def __repr__(self):
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(_Connective):
    symbol = "∧"

    def holds(self, structure, env, dom_budget) -> bool:
        return (self.left.holds(structure, env, dom_budget)
                and self.right.holds(structure, env, dom_budget))


class Or(_Connective):
    symbol = "∨"

    def holds(self, structure, env, dom_budget) -> bool:
        return (self.left.holds(structure, env, dom_budget)
                or self.right.holds(structure, env, dom_budget))


class Implies(_Connective):
    symbol = "→"

    def holds(self, structure, env, dom_budget) -> bool:
        return (not self.left.holds(structure, env, dom_budget)
                or self.right.holds(structure, env, dom_budget))


class _Quantifier(Formula):
    symbol = "?"

    def __init__(self, name: str, var_type: Type, body: Formula):
        self.name = name
        self.var_type = var_type
        self.body = body

    def quantifier_depth(self) -> int:
        return 1 + self.body.quantifier_depth()

    def variable_names(self):
        return self.body.variable_names() | frozenset({self.name})

    def _range(self, structure: CoStructure, dom_budget: int):
        return dom(self.var_type, structure.atoms, budget=dom_budget)

    def __repr__(self):
        return f"{self.symbol}{self.name}:{self.var_type!r}.{self.body!r}"


class Exists(_Quantifier):
    symbol = "∃"

    def holds(self, structure, env, dom_budget) -> bool:
        for candidate in self._range(structure, dom_budget):
            extended = dict(env)
            extended[self.name] = candidate
            if self.body.holds(structure, extended, dom_budget):
                return True
        return False


class Forall(_Quantifier):
    symbol = "∀"

    def holds(self, structure, env, dom_budget) -> bool:
        for candidate in self._range(structure, dom_budget):
            extended = dict(env)
            extended[self.name] = candidate
            if not self.body.holds(structure, extended, dom_budget):
                return False
        return True


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def satisfies(structure: CoStructure, sentence: Formula,
              dom_budget: int = 1 << 16) -> bool:
    """``A |= phi`` under active-domain semantics."""
    return sentence.holds(structure, {}, dom_budget)


def quantifier_depth(sentence: Formula) -> int:
    """The k of Theorem 5.3's statement 2."""
    return sentence.quantifier_depth()


def variable_names(sentence: Formula) -> FrozenSet[str]:
    """Distinct variable names (the k-variable bound of the game)."""
    return sentence.variable_names()
