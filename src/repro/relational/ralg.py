"""The (nested) relational algebra baseline, as set semantics for BALG.

The paper compares BALG against RALG (flat relational algebra) and
RALG^k (nested relational algebra with set nesting <= k).  Their
operators are "similar to those of the bag algebra, but they operate
only on (nested) sets" — which we implement literally: a **set** is a
duplicate-free bag (recursively), and the relational evaluation of a
BALG expression applies duplicate elimination after every operator.

This gives three things:

* :func:`deep_dedup` — the sets-from-bags coercion;
* :class:`SetEvaluator` — evaluates any BALG AST under set semantics,
  i.e. *as* a nested-relational-algebra query (RALG when the types are
  flat, RALG^k when nested);
* :func:`ralg_translate` + :func:`supports_agree` — the constructive
  content of Proposition 4.2: for every ``BALG^1_{-minus}`` query Q
  there is an RALG query Q' with the same support on every input, and
  we *build* Q' by the proof's replacement rules and test the
  agreement.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.eval import Evaluator
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)

__all__ = [
    "deep_dedup", "is_set_value", "SetEvaluator", "relational_evaluate",
    "ralg_translate", "supports_agree",
]


def deep_dedup(value: Any) -> Any:
    """Coerce a complex object to a (nested) set: recursively remove
    duplicates at every bag level."""
    if isinstance(value, Tup):
        return Tup(*(deep_dedup(item) for item in value.items()))
    if isinstance(value, Bag):
        return Bag.from_counts(
            {deep_dedup(element): 1 for element in value.distinct()})
    return value


def is_set_value(value: Any) -> bool:
    """Is the object a (nested) set, i.e. duplicate-free at every
    level?"""
    if isinstance(value, Tup):
        return all(is_set_value(item) for item in value.items())
    if isinstance(value, Bag):
        return value.is_set() and all(is_set_value(element)
                                      for element in value.distinct())
    return True


class SetEvaluator(Evaluator):
    """Evaluates a BALG expression under *set* semantics.

    Every intermediate bag is deduplicated (recursively at the top
    level only — inner bags were themselves produced by deduplicated
    steps), which is precisely how the nested relational algebra
    interprets the same operator symbols.  Additive union collapses to
    union, Cartesian product to relational product, MAP to relational
    restructuring, powerset to the relational powerset.
    """

    def eval(self, expr: Expr, env) -> Any:
        result = super().eval(expr, env)
        if isinstance(result, Bag):
            result = Bag.from_counts(
                {element: 1 for element in result.distinct()})
        return result

    def run(self, expr: Expr,
            database: Optional[Mapping[str, Bag]] = None,
            **named_bags: Bag) -> Any:
        # Inputs are coerced to sets: a relational query only ever sees
        # relations.
        bindings = {}
        if database is not None:
            bindings.update(database)
        bindings.update(named_bags)
        coerced = {name: deep_dedup(bag) if isinstance(bag, Bag) else bag
                   for name, bag in bindings.items()}
        return super().run(expr, coerced)


def relational_evaluate(expr: Expr,
                        database: Optional[Mapping[str, Bag]] = None,
                        powerset_budget: Optional[int] = None,
                        **named_bags: Bag) -> Any:
    """One-shot set-semantics evaluation (the RALG/RALG^k baseline)."""
    return SetEvaluator(powerset_budget=powerset_budget).run(
        expr, database, **named_bags)


# ----------------------------------------------------------------------
# Proposition 4.2: BALG^1 without subtraction = RALG on supports
# ----------------------------------------------------------------------

_FORBIDDEN_42 = (Subtraction, Powerset, Powerbag, BagDestroy)


def ralg_translate(expr: Expr) -> Expr:
    """The Q -> Q' construction in the proof of Proposition 4.2.

    Replaces every BALG^1_{-minus} operator by its relational
    counterpart: additive union becomes (set) union, and the remaining
    operators keep their syntax — under set semantics they *are* the
    relational operators.  Duplicate elimination is simply omitted.
    The result is meant to be evaluated with :class:`SetEvaluator`.
    """
    if isinstance(expr, _FORBIDDEN_42):
        raise BagTypeError(
            f"Proposition 4.2 covers BALG^1 without subtraction; "
            f"operator {type(expr).__name__} is outside the fragment")
    if isinstance(expr, (Var, Const)):
        return expr
    if isinstance(expr, Dedup):
        return ralg_translate(expr.operand)   # eps is dropped
    if isinstance(expr, AdditiveUnion):
        return MaxUnion(ralg_translate(expr.left),
                        ralg_translate(expr.right))
    if isinstance(expr, MaxUnion):
        return MaxUnion(ralg_translate(expr.left),
                        ralg_translate(expr.right))
    if isinstance(expr, Intersection):
        return Intersection(ralg_translate(expr.left),
                            ralg_translate(expr.right))
    if isinstance(expr, Cartesian):
        return Cartesian(ralg_translate(expr.left),
                         ralg_translate(expr.right))
    if isinstance(expr, Map):
        return Map(Lam(expr.lam.param, ralg_translate(expr.lam.body)),
                   ralg_translate(expr.operand))
    if isinstance(expr, Select):
        return Select(Lam(expr.left.param,
                          ralg_translate(expr.left.body)),
                      Lam(expr.right.param,
                          ralg_translate(expr.right.body)),
                      ralg_translate(expr.operand), op=expr.op)
    if isinstance(expr, Tupling):
        return Tupling(*(ralg_translate(part) for part in expr.parts))
    if isinstance(expr, Bagging):
        return Bagging(ralg_translate(expr.item))
    if isinstance(expr, Attribute):
        return Attribute(ralg_translate(expr.operand), expr.index)
    raise BagTypeError(
        f"unexpected operator {type(expr).__name__} in a BALG^1 "
        "expression")


def supports_agree(query: Expr, database: Mapping[str, Bag]) -> bool:
    """Check the Proposition 4.2 statement on a concrete input:
    ``a in Q(DB)  iff  a in Q'(DB')`` where DB' deduplicates every
    relation.  Returns True when the supports coincide."""
    bag_result = Evaluator().run(query, database)
    set_result = SetEvaluator().run(ralg_translate(query), database)
    if not isinstance(bag_result, Bag) or not isinstance(set_result, Bag):
        return bag_result == set_result
    return bag_result.support() == set_result.support()
