"""Compiling CALC1 into the algebra — the [AB87] equivalence that
Theorem 5.3 rests on.

The paper uses (without reproving) the equivalence of RALG^2 and the
calculus CALC1; this module implements the calculus-to-algebra half
constructively, in the same style as the classical translation the
proof of Lemma 5.7 cites: conjunction becomes a join, negation a
complement against the domain product, existential quantification a
projection.

Specifics of the complex-object setting:

* the **active atom domain** is computed *inside the algebra* from the
  relation variables (projections, flattened with bag-destroy where
  attributes are sets);
* the quantifier domain of a **set type** is the powerset of the
  element domain — this is where the translation (like RALG^2) needs
  ``P``, and why its complexity is the nested algebra's;
* the logical predicates are encoded with the singleton trick:
  ``o in S`` iff ``beta(o) n S = beta(o)``; ``S1 (subset of) S2`` iff
  ``S1 n S2 = S1``; a relation atom ``R(t...)`` iff
  ``beta(tau(t...)) n R = beta(tau(t...))`` — all plain equality
  selections, as the algebra demands.

Entry point: :func:`compile_calc` returns an expression over the
relation names; a sentence holds iff the expression evaluates to a
nonempty bag.  The test-suite checks agreement with the direct
active-domain evaluator of :mod:`repro.relational.calc` on shared
structures, and benchmark E18 does so on the Figure 1 graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.bag import Bag, Tup
from repro.core.derived import project_expr
from repro.core.errors import BagTypeError
from repro.core.expr import (
    Attribute, Bagging, Cartesian, Const, Dedup, Expr, Intersection,
    Lam, Map, MaxUnion, Powerset, Select, Subtraction, Tupling, Var,
)
from repro.core.types import AtomType, BagType, TupleType, Type, U
from repro.games.structures import CoStructure
from repro.relational.calc import (
    And, Component, Contained, Eq, Exists, Forall, Formula, Implies,
    Member, Not, Or, Rel, Term, TermConst, TermVar,
)

__all__ = ["RelationSchema", "compile_calc", "structure_to_database",
           "active_atoms_expr"]

#: schema: relation name -> tuple of attribute types.
RelationSchema = Mapping[str, Sequence[Type]]

#: The dummy atom used by closed subformulas' unit relations.
_UNIT_ATOM = "·⊤"
_UNIT = Const(Bag.of(Tup(_UNIT_ATOM)))


def structure_to_database(structure: CoStructure) -> Dict[str, Bag]:
    """View a game structure's relations as (set-like) bags of tuples,
    the form the compiled algebra consumes."""
    return {name: Bag.from_counts({Tup(*entry): 1 for entry in tuples})
            for name, tuples in structure.relations.items()}


# ----------------------------------------------------------------------
# The active atom domain, inside the algebra
# ----------------------------------------------------------------------

def active_atoms_expr(schema: RelationSchema) -> Expr:
    """An algebra expression computing the set of atoms occurring in
    the database, as a bag of 1-tuples ``[atom]`` without duplicates.
    """
    pieces: List[Expr] = []
    for name, attribute_types in schema.items():
        for position, attribute_type in enumerate(attribute_types,
                                                  start=1):
            projected = Map(Lam("·t", Attribute(Var("·t"), position)),
                            Var(name))
            pieces.extend(_atoms_of_values(projected, attribute_type))
    if not pieces:
        raise BagTypeError(
            "cannot compute an active domain over an empty schema")
    combined = pieces[0]
    for piece in pieces[1:]:
        combined = MaxUnion(combined, piece)
    return Dedup(combined)


def _atoms_of_values(values: Expr, value_type: Type) -> List[Expr]:
    """Expressions yielding the atoms inside a bag of ``value_type``
    objects, each as a bag of 1-tuples."""
    if isinstance(value_type, AtomType):
        return [Map(Lam("·v", Tupling(Var("·v"))), values)]
    if isinstance(value_type, BagType):
        return _atoms_of_values(_flatten_sets(values),
                                value_type.element)
    if isinstance(value_type, TupleType):
        pieces: List[Expr] = []
        for position, attribute_type in enumerate(value_type.attributes,
                                                  start=1):
            projected = Map(Lam("·v", Attribute(Var("·v"), position)),
                            values)
            pieces.extend(_atoms_of_values(projected, attribute_type))
        return pieces
    raise BagTypeError(f"unsupported attribute type {value_type!r}")


def _flatten_sets(values: Expr) -> Expr:
    """``delta`` over a bag of bags: the member values pooled."""
    from repro.core.expr import BagDestroy
    return BagDestroy(values)


# ----------------------------------------------------------------------
# Quantifier domains
# ----------------------------------------------------------------------

def _domain_values(object_type: Type, atoms: Expr) -> Expr:
    """A bag of *values* of the given type over the atom domain
    (atoms arrive as a set of 1-tuples)."""
    if isinstance(object_type, AtomType):
        return Map(Lam("·d", Attribute(Var("·d"), 1)), atoms)
    if isinstance(object_type, TupleType):
        product = None
        for __ in object_type.attributes:
            product = atoms if product is None else Cartesian(product,
                                                              atoms)
        if product is None:
            raise BagTypeError("empty tuple types are not quantifiable")
        for attribute_type in object_type.attributes:
            if not isinstance(attribute_type, AtomType):
                raise BagTypeError(
                    "CALC1 quantifier tuple types must be flat "
                    f"(got attribute {attribute_type!r})")
        return product  # a bag of k-tuples of atoms
    if isinstance(object_type, BagType):
        return Powerset(_domain_values(object_type.element, atoms))
    raise BagTypeError(f"unsupported quantifier type {object_type!r}")


def _domain_rel(object_type: Type, atoms: Expr) -> Expr:
    """The quantifier domain as a bag of 1-tuples ``[value]``."""
    return Dedup(Map(Lam("·d", Tupling(Var("·d"))),
                     _domain_values(object_type, atoms)))


# ----------------------------------------------------------------------
# Formula compilation
# ----------------------------------------------------------------------

@dataclass
class _Rel:
    """A compiled subformula: a set of satisfying assignments.

    Columns are sorted variable names; a closed subformula is the unit
    relation (arity 1 over the dummy atom, nonempty iff it holds).
    """

    expr: Expr
    columns: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return max(len(self.columns), 1)

    def position(self, column: str) -> int:
        return self.columns.index(column) + 1


class _Compiler:
    def __init__(self, schema: RelationSchema):
        self.schema = dict(schema)
        self.atoms = active_atoms_expr(schema)
        self.var_types: Dict[str, Type] = {}

    # -- terms ---------------------------------------------------------

    def term_expr(self, term: Term, rel: _Rel) -> Expr:
        if isinstance(term, TermVar):
            if term.name not in rel.columns:
                raise BagTypeError(
                    f"free variable {term.name!r} is not in scope")
            return Attribute(Var("·w"), rel.position(term.name))
        if isinstance(term, TermConst):
            return Const(term.constant)
        if isinstance(term, Component):
            return Attribute(self.term_expr(term.term, rel), term.index)
        raise BagTypeError(f"unknown term {term!r}")

    # -- formulas --------------------------------------------------------

    def compile(self, formula: Formula) -> _Rel:
        if isinstance(formula, (Eq, Member, Contained, Rel)):
            return self._atomic(formula)
        if isinstance(formula, And):
            return self._join(self.compile(formula.left),
                              self.compile(formula.right))
        if isinstance(formula, Or):
            left = self.compile(formula.left)
            right = self.compile(formula.right)
            target = tuple(sorted(set(left.columns)
                                  | set(right.columns)))
            left = self._extend(left, target)
            right = self._extend(right, target)
            return _Rel(Dedup(MaxUnion(left.expr, right.expr)), target)
        if isinstance(formula, Implies):
            return self.compile(Or(Not(formula.left), formula.right))
        if isinstance(formula, Not):
            inner = self.compile(formula.body)
            full = self._full(inner.columns)
            return _Rel(Subtraction(full.expr, inner.expr),
                        inner.columns)
        if isinstance(formula, (Exists, Forall)):
            return self._quantified(formula)
        raise BagTypeError(f"unknown formula {formula!r}")

    def _quantified(self, formula) -> _Rel:
        previous = self.var_types.get(formula.name)
        self.var_types[formula.name] = formula.var_type
        try:
            if isinstance(formula, Forall):
                rewritten = Not(Exists(formula.name, formula.var_type,
                                       Not(formula.body)))
                return self.compile(rewritten)
            inner = self.compile(formula.body)
        finally:
            if previous is None:
                self.var_types.pop(formula.name, None)
            else:
                self.var_types[formula.name] = previous
        if formula.name not in inner.columns:
            return inner  # vacuous quantification
        remaining = tuple(col for col in inner.columns
                          if col != formula.name)
        return self._project(inner, remaining)

    # -- atomic formulas -----------------------------------------------------

    def _atomic(self, formula) -> _Rel:
        columns = tuple(sorted(formula.variable_names()))
        base = self._full(columns)
        if isinstance(formula, Eq):
            left = self.term_expr(formula.left, base)
            right = self.term_expr(formula.right, base)
            return _Rel(Select(Lam("·w", left), Lam("·w", right),
                               base.expr), columns)
        if isinstance(formula, Member):
            element = self.term_expr(formula.element, base)
            container = self.term_expr(formula.container, base)
            singleton = Bagging(element)
            return _Rel(Select(
                Lam("·w", Intersection(singleton, container)),
                Lam("·w", singleton), base.expr), columns)
        if isinstance(formula, Contained):
            left = self.term_expr(formula.left, base)
            right = self.term_expr(formula.right, base)
            return _Rel(Select(
                Lam("·w", Intersection(left, right)),
                Lam("·w", left), base.expr), columns)
        # Rel atom
        entry = Tupling(*(self.term_expr(term, base)
                          for term in formula.terms))
        singleton = Bagging(entry)
        return _Rel(Select(
            Lam("·w", Intersection(singleton, Var(formula.name))),
            Lam("·w", singleton), base.expr), columns)

    # -- relation plumbing (joins, complements, projections) -----------------

    def _full(self, columns: Tuple[str, ...]) -> _Rel:
        if not columns:
            return _Rel(_UNIT, ())
        expr = None
        for column in columns:
            if column not in self.var_types:
                raise BagTypeError(
                    f"variable {column!r} has no quantifier in scope")
            domain = _domain_rel(self.var_types[column], self.atoms)
            expr = domain if expr is None else Cartesian(expr, domain)
        return _Rel(expr, columns)

    def _join(self, left: _Rel, right: _Rel) -> _Rel:
        expr = Cartesian(left.expr, right.expr)
        shared = set(left.columns) & set(right.columns)
        for column in sorted(shared):
            expr = Select(
                Lam("·w", Attribute(Var("·w"), left.position(column))),
                Lam("·w", Attribute(Var("·w"), left.arity
                                    + right.position(column))),
                expr)
        target = tuple(sorted(set(left.columns) | set(right.columns)))
        if not target:
            return _Rel(Dedup(project_expr(expr, 1)), ())
        positions = []
        for column in target:
            if column in left.columns:
                positions.append(left.position(column))
            else:
                positions.append(left.arity + right.position(column))
        return _Rel(Dedup(project_expr(expr, *positions)), target)

    def _extend(self, rel: _Rel, target: Tuple[str, ...]) -> _Rel:
        if rel.columns == target:
            return rel
        missing = [col for col in target if col not in rel.columns]
        expr = rel.expr
        for column in missing:
            domain = _domain_rel(self.var_types[column], self.atoms)
            expr = Cartesian(expr, domain)
        if rel.columns:
            layout = list(rel.columns) + missing
            positions = [layout.index(column) + 1 for column in target]
        else:
            positions = [2 + missing.index(column) for column in target]
        return _Rel(Dedup(project_expr(expr, *positions)), target)

    def _project(self, rel: _Rel, target: Tuple[str, ...]) -> _Rel:
        if not target:
            collapsed = Map(Lam("·w", Tupling(Const(_UNIT_ATOM))),
                            rel.expr)
            return _Rel(Dedup(collapsed), ())
        positions = [rel.position(column) for column in target]
        return _Rel(Dedup(project_expr(rel.expr, *positions)), target)


def compile_calc(sentence: Formula, schema: RelationSchema) -> Expr:
    """Compile a CALC1 sentence to a BALG expression over the relation
    names.  The sentence holds on a database iff the expression
    evaluates to a nonempty bag there."""
    compiler = _Compiler(schema)
    relation = compiler.compile(sentence)
    if relation.columns:
        raise BagTypeError(
            f"sentence has free variables: {list(relation.columns)}")
    return relation.expr
