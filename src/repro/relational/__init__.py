"""Relational baselines: the (nested) relational algebra as set
semantics for BALG (Proposition 4.2, Theorem 5.2) and the CALC1
calculus (Theorem 5.3)."""

from repro.relational.calc import (
    And, Component, Contained, Eq, Exists, Forall, Formula, Implies,
    Member, Not, Or, Rel, Term, TermConst, TermVar, quantifier_depth,
    satisfies, variable_names,
)
from repro.relational.calc2alg import (
    active_atoms_expr, compile_calc, structure_to_database,
)
from repro.relational.ralg import (
    SetEvaluator, deep_dedup, is_set_value, ralg_translate,
    relational_evaluate, supports_agree,
)

__all__ = [
    "And", "Component", "Contained", "Eq", "Exists", "Forall",
    "Formula", "Implies", "Member", "Not", "Or", "Rel", "Term",
    "TermConst", "TermVar", "quantifier_depth", "satisfies",
    "variable_names",
    "SetEvaluator", "deep_dedup", "is_set_value", "ralg_translate",
    "relational_evaluate", "supports_agree",
    "active_atoms_expr", "compile_calc", "structure_to_database",
]
