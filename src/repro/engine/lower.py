"""Lowering: logical ``core.expr`` trees to physical plans.

The pass walks the *dataflow* children of an expression (lambda bodies
are per-member object computations, evaluated by compiled closures or
the tree walker — they are not plan steps) and chooses a kernel per
node:

* union-family operators map to their hash kernels; intersection
  operands are reordered so the estimated-smaller side becomes the
  probe dict (``n`` is commutative; ``-`` is not and keeps its order);
* ``sigma_{alpha_i = alpha_j}(B x B')`` with the equality crossing the
  product fuses into a :class:`~repro.engine.physical.HashJoin`, with
  the build side picked by :mod:`repro.planner.stats` estimates; tiny
  products stay nested-loop (a hash table would cost more than it
  saves);
* ``e (+) e`` over a shared subexpression collapses into a
  :class:`~repro.engine.physical.MultiplicityScale`;
* bag-typed subexpressions occurring more than once become
  :class:`~repro.engine.physical.SharedScan` nodes, materialised once
  per run (the common-subexpression memo);
* MAP/selection lambdas built from projections, constants, tupling,
  and bagging compile to plain Python closures; anything else falls
  back to evaluator-backed application;
* operators the pass does not know (IFP, machine encodings, anything
  object-typed) lower to :class:`~repro.engine.physical.OracleEval`,
  keeping the engine total over the whole language.

Estimates come from :func:`repro.planner.stats.estimate` when
per-relation statistics are available; without statistics every choice
falls back to a safe default (hash kernels, syntactic operand order).
The whole pass runs as the ``lower`` stage of
:func:`repro.planner.compile`; ``cost_based=False`` is the planner's
opt-level-0 mode (purely syntax-directed kernel choice).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.bag import Bag
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Powerbag, Powerset, Select,
    Subtraction, Tupling, Var, _compare,
)
from repro.core.nest import Nest, Unnest
from repro.core.ops import attribute as ops_attribute
from repro.core.expr import BagDestroy
from repro.engine.physical import (
    ConstSource, FlattenBags, HashDedup, HashDifference, HashIntersect,
    HashJoin, HashMaxUnion, HashUnion, MultiplicityScale, NestBuild,
    NestedLoopProduct, OracleEval, PhysicalNode, PowersetExpand,
    ScanBag, SharedScan, StreamingMap, StreamingSelect, UnnestExpand,
)
from repro.planner.stats import BagStats, estimate

__all__ = ["PhysicalPlan", "Lowering", "lower", "compile_object_lambda"]

#: Estimated product cardinality below which a nested-loop product is
#: kept even when an equality predicate could fuse into a hash join.
HASH_JOIN_THRESHOLD = 16.0


class PhysicalPlan:
    """A lowered plan: the root physical node plus provenance."""

    __slots__ = ("root", "expr", "statistics_used")

    def __init__(self, root: PhysicalNode, expr: Expr,
                 statistics_used: bool):
        self.root = root
        self.expr = expr
        self.statistics_used = statistics_used

    def execute(self, ctx) -> Any:
        return self.root.execute(ctx)

    def render(self) -> str:
        from repro.engine.physical import render_plan
        return render_plan(self.root)

    def __repr__(self) -> str:
        return f"PhysicalPlan({type(self.root).__name__})"


class Lowering:
    """One lowering run over one expression."""

    def __init__(self, statistics: Optional[Mapping[str, BagStats]]
                 = None, selectivity: float = 0.5,
                 arities: Optional[Mapping[str, int]] = None,
                 parallel=None, cost_based: bool = True,
                 selectivity_fn=None, segment_tag=None, semiring=None):
        self.statistics = dict(statistics) if statistics else None
        #: Multiplicity semiring instance (None = N): gates the
        #: self-union collapse and threads into compiled lambdas so
        #: closure-produced bags agree with the tree walker.
        self.semiring = semiring
        self.selectivity = selectivity
        #: Optional per-predicate selectivity oracle (catalog
        #: histograms); refines the flat ``selectivity`` per Select.
        self.selectivity_fn = selectivity_fn
        self.arities = dict(arities) if arities else {}
        #: Optional ParallelPolicy: when set, the parallelism pass
        #: wraps eligible subtrees in Gather/Exchange/Partition nodes.
        self.parallel = parallel
        #: The planner's ``PassConfig.cache_tag()``: stamped onto every
        #: Exchange so workers key their compiled-segment caches on it.
        self.segment_tag = segment_tag
        #: ``False`` is the planner's opt-level-0 mode: a purely
        #: syntax-directed kernel choice — no join fusion, no operand
        #: reordering, no multiplicity-scale collapse, no shared-scan
        #: CSE.  The differential ``engine-opt0`` backend pins that
        #: this naive plan is still bag-equal to the optimized one.
        self.cost_based = cost_based
        self._shared: Dict[Expr, SharedScan] = {}
        self._share_counts: Dict[Expr, int] = {}

    # -- estimates ------------------------------------------------------

    def _estimate(self, expr: Expr) -> Optional[BagStats]:
        if self.statistics is None:
            return None
        try:
            return estimate(expr, self.statistics,
                            selectivity=self.selectivity,
                            selectivity_fn=self.selectivity_fn)
        except BagTypeError:
            return None

    @staticmethod
    def _card(stats: Optional[BagStats]) -> Optional[float]:
        return None if stats is None else stats.cardinality

    # -- entry ----------------------------------------------------------

    def lower(self, expr: Expr) -> PhysicalPlan:
        self._count_occurrences(expr)
        root = self._lower(expr, shared_ok=False)
        return PhysicalPlan(root, expr, self.statistics is not None)

    def _count_occurrences(self, expr: Expr) -> None:
        """Count structural occurrences of dataflow subexpressions, to
        decide which ones deserve a shared materialisation."""
        stack: List[Expr] = [expr]
        while stack:
            node = stack.pop()
            self._share_counts[node] = self._share_counts.get(node, 0) + 1
            stack.extend(self._dataflow_children(node))

    @staticmethod
    def _dataflow_children(node: Expr) -> Tuple[Expr, ...]:
        bodies = tuple(lam.body for lam in node.lambdas())
        return tuple(child for child in node.children()
                     if all(child is not body for body in bodies))

    def _is_shared(self, expr: Expr) -> bool:
        """Worth sharing: occurs more than once and is not a leaf."""
        return (self.cost_based
                and self._share_counts.get(expr, 0) > 1
                and not isinstance(expr, (Var, Const)))

    # -- recursive lowering ---------------------------------------------

    def _lower(self, expr: Expr, shared_ok: bool = True) -> PhysicalNode:
        if shared_ok and self._is_shared(expr):
            node = self._shared.get(expr)
            if node is None:
                node = SharedScan(self._lower_node(expr),
                                  self._estimate(expr))
                self._shared[expr] = node
            return node
        return self._lower_node(expr)

    def _lower_node(self, expr: Expr) -> PhysicalNode:
        estimated = self._estimate(expr)

        if self.parallel is not None:
            exchanged = self._try_parallel(expr, estimated)
            if exchanged is not None:
                return exchanged

        if isinstance(expr, Var):
            return ScanBag(expr.name, estimated)
        if isinstance(expr, Const):
            if isinstance(expr.value, Bag):
                return ConstSource(expr.value, estimated)
            return OracleEval(expr, estimated)

        if isinstance(expr, AdditiveUnion):
            if self.cost_based and expr.left == expr.right:
                if (self.semiring is not None
                        and self.semiring.idempotent_add):
                    # e (+) e = e when addition is idempotent
                    # (Bool, Tropical): no scale node needed
                    return self._lower(expr.left)
                return MultiplicityScale(self._lower(expr.left), 2,
                                         estimated)
            return HashUnion(self._lower(expr.left),
                             self._lower(expr.right), estimated)
        if isinstance(expr, Subtraction):
            return HashDifference(self._lower(expr.left),
                                  self._lower(expr.right), estimated)
        if isinstance(expr, MaxUnion):
            return HashMaxUnion(self._lower(expr.left),
                                self._lower(expr.right), estimated)
        if isinstance(expr, Intersection):
            left, right = expr.left, expr.right
            if self.cost_based:
                lcard = self._card(self._estimate(left))
                rcard = self._card(self._estimate(right))
                if (lcard is not None and rcard is not None
                        and rcard < lcard):
                    left, right = right, left  # smaller side probes
            return HashIntersect(self._lower(left), self._lower(right),
                                 estimated)

        if isinstance(expr, Dedup):
            return HashDedup(self._lower(expr.operand), estimated)
        if isinstance(expr, BagDestroy):
            return FlattenBags(self._lower(expr.operand), estimated)
        if isinstance(expr, Powerset):
            return PowersetExpand(self._lower(expr.operand), False,
                                  estimated)
        if isinstance(expr, Powerbag):
            return PowersetExpand(self._lower(expr.operand), True,
                                  estimated)
        if isinstance(expr, Nest):
            return NestBuild(self._lower(expr.operand), expr.indices,
                             estimated)
        if isinstance(expr, Unnest):
            return UnnestExpand(self._lower(expr.operand), expr.index,
                                estimated)

        if isinstance(expr, Map):
            fn = compile_object_lambda(expr.lam, self.semiring)
            return StreamingMap(self._lower(expr.operand), expr.lam,
                                fn, estimated)
        if isinstance(expr, Select):
            return self._lower_select(expr, estimated)
        if isinstance(expr, Cartesian):
            return self._lower_product(expr, estimated)

        # Extension operators (Ifp, encodings, ...) and object-typed
        # expressions: the tree walker is the oracle.
        return OracleEval(expr, estimated)

    # -- parallelism pass ------------------------------------------------

    def _try_parallel(self, expr: Expr,
                      estimated: Optional[BagStats]
                      ) -> Optional[PhysicalNode]:
        """Wrap a partition-compatible subtree in
        Gather -> Exchange -> Partition* nodes.

        Refusal conditions (documented in ``docs/parallel.md``):

        1. the root operator is not partition-compatible (the segment
           compiler returns ``None``, and the pass recurses into the
           children via normal lowering);
        2. cardinality estimates are unavailable for some leaf while
           the policy threshold is positive — without statistics the
           pass cannot justify the fan-out cost;
        3. the estimated total leaf input cardinality is below the
           policy threshold (too small to amortise sharding).
        """
        from repro.engine.parallel.partition import (
            compile_parallel_segment,
        )
        segment = compile_parallel_segment(expr, self._operand_arity)
        if segment is None:
            return None
        threshold = self.parallel.threshold
        if threshold > 0:
            total = 0.0
            for leaf in segment.leaves:
                card = self._card(self._estimate(leaf.expr))
                if card is None:
                    return None
                total += card
            if total < threshold:
                return None
        from repro.engine.parallel.exchange import (
            Exchange, Gather, Partition,
        )
        partitions = [
            Partition(self._lower(leaf.expr), leaf.key,
                      self._estimate(leaf.expr))
            for leaf in segment.leaves
        ]
        exchange = Exchange(partitions, segment.program, estimated,
                            tag=self.segment_tag)
        return Gather(exchange, estimated)

    # -- selection / join -----------------------------------------------

    def _lower_select(self, expr: Select,
                      estimated: Optional[BagStats]) -> PhysicalNode:
        if (self.cost_based and expr.op == "eq"
                and isinstance(expr.operand, Cartesian)):
            join = self._try_fuse_join(expr, expr.operand, estimated)
            if join is not None:
                return join
        compiled = compile_predicate(expr, self.semiring)
        if compiled is not None:
            return StreamingSelect(self._lower(expr.operand),
                                   lambda ctx: compiled, True,
                                   estimated)

        def make(ctx, select=expr):
            def predicate(value):
                lhs = ctx.apply_lambda(select.left, value)
                rhs = ctx.apply_lambda(select.right, value)
                return _compare(select.op, lhs, rhs)
            return predicate

        return StreamingSelect(self._lower(expr.operand), make, False,
                               estimated)

    def _try_fuse_join(self, select: Select, product: Cartesian,
                       estimated: Optional[BagStats]
                       ) -> Optional[PhysicalNode]:
        """Fuse ``sigma_{alpha_i = alpha_j}`` over a product into a
        hash join when the equality crosses the product boundary."""
        indices = _attr_eq_indices(select)
        if indices is None:
            return None
        left_arity = self._operand_arity(product.left)
        if left_arity is None:
            return None
        i, j = sorted(indices)
        if not (i <= left_arity < j):
            return None  # both attributes on one side: plain filter
        left_stats = self._estimate(product.left)
        right_stats = self._estimate(product.right)
        lcard = self._card(left_stats)
        rcard = self._card(right_stats)
        if (lcard is not None and rcard is not None
                and lcard * rcard < HASH_JOIN_THRESHOLD):
            return None  # tiny product: nested loop wins
        build_right = True
        if lcard is not None and rcard is not None and lcard < rcard:
            build_right = False
        return HashJoin(self._lower(product.left),
                        self._lower(product.right),
                        (i,), (j - left_arity,), build_right,
                        estimated)

    def _operand_arity(self, operand: Expr) -> Optional[int]:
        """Arity of a product operand's tuples, from statistics-free
        structural evidence only.

        Dedup, selection, and the union family preserve element shape,
        so the pass sees through them — a join whose side is, say,
        ``eps(R)`` or ``R (+) S`` still fuses (and still partitions).
        """
        if isinstance(operand, Const) and isinstance(operand.value, Bag):
            bag = operand.value
            if bag.is_empty():
                return None
            element = bag.an_element()
            return element.arity if hasattr(element, "arity") else None
        if isinstance(operand, Cartesian):
            left = self._operand_arity(operand.left)
            right = self._operand_arity(operand.right)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(operand, Var):
            return self.arities.get(operand.name)
        if isinstance(operand, (Dedup, Select)):
            return self._operand_arity(operand.operand)
        if isinstance(operand, (AdditiveUnion, Subtraction, MaxUnion,
                                Intersection)):
            left = self._operand_arity(operand.left)
            if left is not None:
                return left
            return self._operand_arity(operand.right)
        return None

    def _lower_product(self, expr: Cartesian,
                       estimated: Optional[BagStats]) -> PhysicalNode:
        # Products are not commutative (the tuples concatenate), so the
        # right side always builds and the left side always streams.
        return NestedLoopProduct(self._lower(expr.left),
                                 self._lower(expr.right), estimated)


# ----------------------------------------------------------------------
# Lambda compilation
# ----------------------------------------------------------------------

def compile_object_lambda(lam: Lam, sr=None
                          ) -> Optional[Callable[[Any], Any]]:
    """Compile a lambda body made of projections, constants, tupling,
    and bagging into a plain closure; ``None`` when the body mentions
    anything else (the evaluator applies it instead).

    ``sr`` keeps closure output aligned with the tree walker under a
    non-N semiring: bagging mints ``sr.one`` and bag constants are
    adapted (cache keys include the semiring, so baking the adapted
    value into the closure is safe).
    """
    return _compile_body(lam.body, lam.param, sr)


def _compile_body(body: Expr, param: str, sr=None
                  ) -> Optional[Callable[[Any], Any]]:
    if isinstance(body, Var):
        if body.name == param:
            return lambda value: value
        return None  # free variable: needs the environment
    if isinstance(body, Const):
        constant = body.value
        if sr is not None and isinstance(constant, Bag):
            constant = sr.adapt_bag(constant)
        return lambda value: constant
    if isinstance(body, Attribute):
        inner = _compile_body(body.operand, param, sr)
        if inner is None:
            return None
        index = body.index
        return lambda value: ops_attribute(inner(value), index)
    if isinstance(body, Tupling):
        parts = [_compile_body(part, param, sr) for part in body.parts]
        if any(part is None for part in parts):
            return None
        from repro.core.bag import Tup
        return lambda value: Tup(*(part(value) for part in parts))
    if isinstance(body, Bagging):
        inner = _compile_body(body.item, param, sr)
        if inner is None:
            return None
        if sr is None:
            return lambda value: Bag.of(inner(value))
        one = sr.one
        return lambda value: Bag.from_counts({inner(value): one})
    return None


def compile_predicate(select: Select, sr=None
                      ) -> Optional[Callable[[Any], bool]]:
    """Compile both selection lambdas; ``None`` if either resists."""
    lhs = _compile_body(select.left.body, select.left.param, sr)
    rhs = _compile_body(select.right.body, select.right.param, sr)
    if lhs is None or rhs is None:
        return None
    op = select.op
    if op == "eq":
        return lambda value: lhs(value) == rhs(value)
    if op == "ne":
        return lambda value: lhs(value) != rhs(value)
    return lambda value: _compare(op, lhs(value), rhs(value))


def _attr_eq_indices(select: Select) -> Optional[Tuple[int, int]]:
    """``(i, j)`` when the selection is ``alpha_i(t) = alpha_j(t)``."""
    left, right = select.left.body, select.right.body
    if (isinstance(left, Attribute) and isinstance(right, Attribute)
            and isinstance(left.operand, Var)
            and isinstance(right.operand, Var)
            and left.operand.name == select.left.param
            and right.operand.name == select.right.param):
        return left.index, right.index
    return None


def lower(expr: Expr,
          statistics: Optional[Mapping[str, BagStats]] = None,
          selectivity: float = 0.5,
          arities: Optional[Mapping[str, int]] = None,
          parallel=None, cost_based: bool = True,
          selectivity_fn=None, segment_tag=None,
          semiring=None) -> PhysicalPlan:
    """One-shot lowering convenience wrapper."""
    return Lowering(statistics, selectivity=selectivity,
                    arities=arities, parallel=parallel,
                    cost_based=cost_based,
                    selectivity_fn=selectivity_fn,
                    segment_tag=segment_tag,
                    semiring=semiring).lower(expr)
