"""Dict-keyed multiplicity kernels for the physical engine.

The tree-walking evaluator recomputes, for **every** intermediate
result, an immutable :class:`~repro.core.bag.Bag`: a homogeneity check
over all elements, a structural ``type_of``/``unify`` pass per binary
operator, and a frozenset hash of the whole counts mapping.  Those
passes are what make chains of differences and dedups scale badly even
though the underlying mapping is already a dict.

The kernels below work directly on *multiplicity streams* — iterables
of ``(value, count)`` pairs in which the same value may appear more
than once (consumers sum the counts) — and on plain ``value -> count``
dicts for the materialised build sides.  No Bag is constructed, no
typing pass runs, no hash is taken until the engine's final result is
sealed into a Bag.  Static well-typedness is the lowering pass's
problem (and the tree walker remains the semantics oracle); the
kernels only enforce the checks that guard memory safety (powerset
budgets) and value integrity (tuples where tuples are required).

Every kernel matches the operator semantics of :mod:`repro.core.ops`
exactly; the differential fuzz suite (``tests/test_engine.py``) checks
bag-equality of the two evaluators on random well-typed programs.
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterable, Iterator, Optional, Tuple,
)

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError, BudgetExceeded
from repro.core.ops import (
    powerbag_multiplicity, powerbag_total, powerset_cardinality,
    subbags,
)

__all__ = [
    "Rows", "collect",
    "k_additive_union", "k_monus", "k_min_intersect", "k_max_union",
    "k_dedup", "k_scale", "k_map", "k_select", "k_product",
    "k_hash_join", "k_flatten", "k_nest", "k_unnest",
    "k_powerset", "k_powerbag",
]

#: A multiplicity stream: ``(value, count)`` pairs, values may repeat.
Rows = Iterable[Tuple[Any, int]]


def collect(rows: Rows, tick: Optional[Callable[[], None]] = None,
            every: int = 128,
            get_every: Optional[Callable[[], int]] = None,
            sr=None) -> Dict[Any, int]:
    """Materialise a multiplicity stream into a ``value -> count``
    dict, summing repeated values.

    ``tick`` (typically ``ResourceGovernor.tick``) is invoked every
    ``every`` materialised rows so step budgets, deadlines, and
    cancellation apply to hash builds without a per-row penalty.
    ``get_every`` re-reads the interval after each tick, so an
    adaptive context (near-deadline halving) takes effect inside a
    long-running build instead of only at the next one.

    ``sr`` selects the multiplicity semiring; ``None`` is the int fast
    path, anything else sums collisions with ``sr.add`` (coercing
    stray int counts through ``sr.coerce``).
    """
    if sr is not None:
        return _collect_generic(rows, tick, every, get_every, sr)
    counts: Dict[Any, int] = {}
    get = counts.get
    if tick is None:
        for value, count in rows:
            counts[value] = get(value, 0) + count
        return counts
    pending = 0
    for value, count in rows:
        counts[value] = get(value, 0) + count
        pending += 1
        if pending >= every:
            pending = 0
            tick()
            if get_every is not None:
                every = get_every()
    return counts


def _collect_generic(rows: Rows, tick, every, get_every,
                     sr) -> Dict[Any, int]:
    """Generic-semiring :func:`collect` (same governance contract)."""
    counts: Dict[Any, int] = {}
    get = counts.get
    coerce, add = sr.coerce, sr.add
    pending = 0
    for value, count in rows:
        count = coerce(count)
        existing = get(value)
        counts[value] = count if existing is None else add(existing,
                                                           count)
        if tick is not None:
            pending += 1
            if pending >= every:
                pending = 0
                tick()
                if get_every is not None:
                    every = get_every()
    return counts


# ----------------------------------------------------------------------
# Union family: monus / min / max need both sides exact, so the right
# side is a materialised dict; additive union is fully streaming.
# ----------------------------------------------------------------------

def k_additive_union(left: Rows, right: Rows) -> Iterator[Tuple[Any, int]]:
    """``B (+) B'``: concatenate the streams; consumers sum counts."""
    yield from left
    yield from right


def k_monus(left: Dict[Any, int], right: Dict[Any, int],
            sr=None) -> Iterator[Tuple[Any, int]]:
    """``B - B'``: monus on multiplicities (n = max(0, p - q))."""
    get = right.get
    if sr is None:
        for value, count in left.items():
            remaining = count - get(value, 0)
            if remaining > 0:
                yield value, remaining
    else:
        coerce, monus, is_zero = sr.coerce, sr.monus, sr.is_zero
        for value, count in left.items():
            remaining = monus(coerce(count), coerce(get(value, 0)))
            if not is_zero(remaining):
                yield value, remaining


def k_min_intersect(small: Dict[Any, int], large: Dict[Any, int],
                    sr=None) -> Iterator[Tuple[Any, int]]:
    """``B n B'``: min of multiplicities; probe the smaller dict."""
    get = large.get
    if sr is None:
        for value, count in small.items():
            other = get(value, 0)
            if other > 0:
                yield value, count if count < other else other
    else:
        coerce, meet = sr.coerce, sr.min_
        for value, count in small.items():
            other = get(value)
            if other is not None:
                yield value, meet(coerce(count), coerce(other))


def k_max_union(left: Dict[Any, int], right: Dict[Any, int],
                sr=None) -> Iterator[Tuple[Any, int]]:
    """``B u B'``: max of multiplicities."""
    if sr is None:
        left_get = left.get
        for value, count in left.items():
            other = right.get(value, 0)
            yield value, count if count > other else other
        for value, count in right.items():
            if left_get(value, 0) == 0:
                yield value, count
    else:
        coerce, join = sr.coerce, sr.max_
        for value, count in left.items():
            other = right.get(value)
            count = coerce(count)
            yield value, (count if other is None
                          else join(count, coerce(other)))
        for value, count in right.items():
            if value not in left:
                yield value, coerce(count)


# ----------------------------------------------------------------------
# Streaming unary kernels
# ----------------------------------------------------------------------

def k_dedup(rows: Rows, sr=None) -> Iterator[Tuple[Any, int]]:
    """``eps(B)``: emit each distinct value once with count 1 (the
    semiring's ``one``).

    Streams with an O(distinct) seen-set, so a dedup above a pipelined
    union never materialises the union.
    """
    seen = set()
    add = seen.add
    one = 1 if sr is None else sr.one
    for value, _ in rows:
        if value not in seen:
            add(value)
            yield value, one


def k_scale(rows: Rows, factor: int, sr=None
            ) -> Iterator[Tuple[Any, int]]:
    """Multiply every multiplicity by a constant ``factor`` — the
    kernel behind ``e (+) e (+) ... (+) e`` of a shared subexpression."""
    if sr is None:
        for value, count in rows:
            yield value, count * factor
    else:
        scale = sr.scale
        for value, count in rows:
            yield value, scale(count, factor)


def k_map(rows: Rows, fn: Callable[[Any], Any]
          ) -> Iterator[Tuple[Any, int]]:
    """``MAP_phi(B)``: image stream; colliding images are summed by the
    consumer, matching the additive restructuring semantics."""
    for value, count in rows:
        yield fn(value), count


def k_select(rows: Rows, predicate: Callable[[Any], bool]
             ) -> Iterator[Tuple[Any, int]]:
    """``sigma(B)``: keep satisfying values, multiplicities unchanged."""
    for value, count in rows:
        if predicate(value):
            yield value, count


# ----------------------------------------------------------------------
# Product / join kernels
# ----------------------------------------------------------------------

def _require_tup(value: Any, operation: str) -> Tup:
    if not isinstance(value, Tup):
        raise BagTypeError(
            f"{operation} requires bags of tuples, found element of "
            f"type {type(value).__name__}")
    return value


def k_product(probe: Rows, build: Dict[Any, int],
              sr=None) -> Iterator[Tuple[Any, int]]:
    """``B x B'``: nested-loop product against a materialised build
    side; counts multiply and tuples concatenate."""
    build_items = list(build.items())
    for value in build:
        _require_tup(value, "cartesian product")
    if sr is None:
        for left, lcount in probe:
            _require_tup(left, "cartesian product")
            for right, rcount in build_items:
                yield left.concat(right), lcount * rcount
    else:
        coerce, mul = sr.coerce, sr.mul
        for left, lcount in probe:
            _require_tup(left, "cartesian product")
            lcount = coerce(lcount)
            for right, rcount in build_items:
                yield left.concat(right), mul(lcount, coerce(rcount))


def k_hash_join(probe: Rows, build: Dict[Any, int],
                probe_key: Callable[[Tup], Any],
                build_key: Callable[[Tup], Any],
                probe_is_left: bool, sr=None
                ) -> Iterator[Tuple[Any, int]]:
    """Equi-join kernel for ``sigma_{alpha_i = alpha_j}(B x B')``.

    The build side is hashed on its key attributes; the probe side
    streams.  ``probe_is_left`` restores the concatenation order of
    the logical product (the build side is chosen by estimated size,
    not by syntactic position).
    """
    table: Dict[Any, list] = {}
    if sr is None:
        for value, count in build.items():
            _require_tup(value, "hash join")
            table.setdefault(build_key(value), []).append((value, count))
        for value, count in probe:
            _require_tup(value, "hash join")
            matches = table.get(probe_key(value))
            if not matches:
                continue
            if probe_is_left:
                for other, other_count in matches:
                    yield value.concat(other), count * other_count
            else:
                for other, other_count in matches:
                    yield other.concat(value), count * other_count
    else:
        coerce, mul = sr.coerce, sr.mul
        for value, count in build.items():
            _require_tup(value, "hash join")
            table.setdefault(build_key(value), []).append(
                (value, coerce(count)))
        for value, count in probe:
            _require_tup(value, "hash join")
            matches = table.get(probe_key(value))
            if not matches:
                continue
            count = coerce(count)
            if probe_is_left:
                for other, other_count in matches:
                    yield value.concat(other), mul(count, other_count)
            else:
                for other, other_count in matches:
                    yield other.concat(value), mul(count, other_count)


# ----------------------------------------------------------------------
# Restructuring kernels
# ----------------------------------------------------------------------

def k_flatten(rows: Rows, sr=None) -> Iterator[Tuple[Any, int]]:
    """``delta(B)``: flatten one level of nesting, scaling the inner
    multiplicities by the outer count."""
    if sr is None:
        for inner, outer_count in rows:
            if not isinstance(inner, Bag):
                raise BagTypeError(
                    "bag-destroy requires a bag of bags, found element "
                    f"of type {type(inner).__name__}")
            for element, inner_count in inner.items():
                yield element, inner_count * outer_count
    else:
        coerce, mul = sr.coerce, sr.mul
        for inner, outer_count in rows:
            if not isinstance(inner, Bag):
                raise BagTypeError(
                    "bag-destroy requires a bag of bags, found element "
                    f"of type {type(inner).__name__}")
            outer_count = coerce(outer_count)
            for element, inner_count in inner.items():
                yield element, mul(coerce(inner_count), outer_count)


def k_nest(counts: Dict[Any, int], group_indices: Tuple[int, ...],
           sr=None) -> Iterator[Tuple[Any, int]]:
    """``nest_J(B)``: group by the complement of ``group_indices``,
    collecting the J-projections into an inner bag (the grouping
    kernel; semantics of :func:`repro.core.nest.nest_bag`)."""
    groups: Dict[Tup, Dict[Any, int]] = {}
    rest_indices: Optional[Tuple[int, ...]] = None
    for element, count in counts.items():
        _require_tup(element, "nest")
        if max(group_indices) > element.arity or min(group_indices) < 1:
            raise BagTypeError(
                f"nest indices {group_indices} out of range for arity "
                f"{element.arity}")
        if rest_indices is None:
            rest_indices = tuple(i for i in range(1, element.arity + 1)
                                 if i not in group_indices)
        key = Tup(*(element.attribute(i) for i in rest_indices))
        grouped = Tup(*(element.attribute(i) for i in group_indices))
        bucket = groups.setdefault(key, {})
        if sr is None:
            bucket[grouped] = bucket.get(grouped, 0) + count
        else:
            existing = bucket.get(grouped)
            count = sr.coerce(count)
            bucket[grouped] = (count if existing is None
                               else sr.add(existing, count))
    one = 1 if sr is None else sr.one
    for key, bucket in groups.items():
        yield Tup(*key.items(), Bag.from_counts(bucket)), one


def k_unnest(rows: Rows, index: int, sr=None
             ) -> Iterator[Tuple[Any, int]]:
    """``unnest_i(B)``: expand the bag-valued attribute ``i``,
    multiplying multiplicities (:func:`repro.core.nest.unnest_bag`)."""
    for element, count in rows:
        _require_tup(element, "unnest")
        if not 1 <= index <= element.arity:
            raise BagTypeError(
                f"unnest index {index} out of range for arity "
                f"{element.arity}")
        inner = element.attribute(index)
        if not isinstance(inner, Bag):
            raise BagTypeError(f"attribute {index} is not bag-valued")
        prefix = element.items()[:index - 1]
        suffix = element.items()[index:]
        if sr is None:
            for member, inner_count in inner.items():
                spliced = (member.items() if isinstance(member, Tup)
                           else (member,))
                yield (Tup(*prefix, *spliced, *suffix),
                       count * inner_count)
        else:
            count = sr.coerce(count)
            for member, inner_count in inner.items():
                spliced = (member.items() if isinstance(member, Tup)
                           else (member,))
                yield (Tup(*prefix, *spliced, *suffix),
                       sr.mul(count, sr.coerce(inner_count)))


# ----------------------------------------------------------------------
# Powerset expansion (budget-checked before materialisation)
# ----------------------------------------------------------------------

def k_powerset(counts: Dict[Any, int], budget: Optional[int],
               sr=None) -> Iterator[Tuple[Any, int]]:
    """``P(B)``: every subbag once; the budget check fires before any
    subbag is generated (Prop 3.2 territory)."""
    if sr is not None and not sr.integer_counts:
        raise BagTypeError(
            f"powerset requires integer multiplicities; semiring "
            f"{sr.name!r} does not provide them")
    base = Bag.from_counts(counts)
    cardinality = powerset_cardinality(base)
    if budget is not None and cardinality > budget:
        raise BudgetExceeded(
            f"powerset would contain {cardinality} subbags, "
            f"budget is {budget}", budget="powerset", limit=budget,
            observed=cardinality)
    for subbag in subbags(base):
        yield subbag, 1


def k_powerbag(counts: Dict[Any, int], budget: Optional[int],
               sr=None) -> Iterator[Tuple[Any, int]]:
    """``P_b(B)``: the duplicate-aware powerset of Definition 5.1."""
    if sr is not None and not sr.integer_counts:
        raise BagTypeError(
            f"powerbag requires integer multiplicities; semiring "
            f"{sr.name!r} does not provide them")
    base = Bag.from_counts(counts)
    total = powerbag_total(base)
    if budget is not None and total > budget:
        raise BudgetExceeded(
            f"powerbag would contain {total} subbags (with duplicates), "
            f"budget is {budget}", budget="powerbag", limit=budget,
            observed=total)
    for subbag in subbags(base):
        yield subbag, powerbag_multiplicity(base, subbag)
