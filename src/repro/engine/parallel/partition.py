"""Hash partitioning and shard-local segment programs.

The bag operators of the paper distribute over a *hash partition of
the value space*: for any deterministic shard function ``s(v)``, all
copies of a value ``v`` — in every operand — land in the same shard,
so monus, min-intersection, max-union, dedup, scaling, and selection
compute their exact per-value multiplicities shard-locally, and the
gather step is a plain count merge.  (This is the semiring view of
multiplicities made operational: each shard carries a sub-semimodule
of the bag, and the partition-compatible operators are module
homomorphisms.)  Two operators consume the *choice* of shard function
instead of merely preserving it:

* hash join — both sides must be partitioned by their join key;
* nest — the input must be partitioned by the group key (the
  complement of the nested attributes).

Everything else (powerset, powerbag, flatten, unnest, oracle
fallbacks) forces a gather barrier: those subtrees are materialised
once, serially, and become partitioned *inputs* of the segment.

A *segment* is the unit shipped to workers: a closure-free program of
kernel steps over input slots (:func:`execute_program`).  Keeping the
program declarative — attribute indices and constants, never compiled
closures — is what makes the process backend possible: a program plus
its shard inputs pickles, a closure does not.

:data:`PARTITION_COMPAT` is the compatibility table the docs and the
lowering pass share; :func:`compile_parallel_segment` turns a logical
expression into a program plus leaf partition specs, or ``None`` when
the root operator is not partition-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.core.bag import Tup
from repro.core.database import encoding_size
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Select, Subtraction, Tupling,
    Var, _compare,
)
from repro.core.nest import Nest
from repro.engine import kernels

__all__ = [
    "PARTITION_COMPAT", "ParallelPolicy", "ParallelSegment", "LeafSpec",
    "shard_of", "split_counts", "merge_counts", "counts_size",
    "execute_program", "compile_parallel_segment",
]

#: Kernel name -> how it behaves under a hash partition of the value
#: space.  ``local`` runs shard-local under any value partition;
#: ``key-local`` runs shard-local only when the inputs are partitioned
#: on the operator's key (join key / group key); ``root-local`` runs
#: shard-local but destroys value-disjointness, so it is admitted only
#: as the last step before the gather; ``barrier`` forces a gather —
#: the subtree is materialised serially and partitioned as an input.
PARTITION_COMPAT: Dict[str, str] = {
    "scan": "local",
    "const": "local",
    "additive-union": "local",
    "monus": "local",
    "min-intersect": "local",
    "max-union": "local",
    "dedup": "local",
    "scale": "local",
    "select": "local",
    "map": "root-local",
    "hash-join": "key-local",
    "nest-build": "key-local",
    "flatten": "barrier",
    "unnest": "barrier",
    "powerset": "barrier",
    "powerbag": "barrier",
    "nested-loop-product": "barrier",
    "oracle": "barrier",
    "shared": "barrier",
}


@dataclass(frozen=True)
class ParallelPolicy:
    """Plan-time knobs of the parallelism pass.

    ``threshold`` is the minimum *estimated total input cardinality*
    (summed over the segment's leaves) below which the pass refuses to
    insert an exchange — fanning out a few hundred rows costs more
    than it saves.  A threshold of ``0`` forces exchanges wherever a
    segment compiles (the differential harness uses this to fuzz the
    partition machinery on tiny bags).
    """

    threshold: float = 1024.0


@dataclass
class LeafSpec:
    """One segment input: the subtree feeding the slot plus the
    partition key (attribute indices; ``None`` = whole-value hash)."""

    expr: Expr
    key: Optional[Tuple[int, ...]] = None


@dataclass
class ParallelSegment:
    """A compiled segment: the step program plus its input leaves."""

    program: Tuple[Tuple, ...]
    leaves: List[LeafSpec]


# ----------------------------------------------------------------------
# Shard arithmetic
# ----------------------------------------------------------------------

def _key_projector(indices: Optional[Sequence[int]]
                   ) -> Callable[[Any], Any]:
    if not indices:
        return lambda value: value
    if len(indices) == 1:
        index = indices[0]
        return lambda value: value.attribute(index)
    fixed = tuple(indices)
    return lambda value: tuple(value.attribute(i) for i in fixed)


def shard_of(value: Any, num_shards: int,
             key: Optional[Sequence[int]] = None) -> int:
    """The shard a value belongs to under a key projection."""
    return hash(_key_projector(key)(value)) % num_shards


def split_counts(counts: Dict[Any, int], num_shards: int,
                 key: Optional[Sequence[int]] = None
                 ) -> List[Dict[Any, int]]:
    """Split a count dict into ``num_shards`` disjoint shard dicts.

    The shard of a value is a pure function of the value (optionally
    through a key projection), so every copy of a value — across all
    co-partitioned operands — lands in the same shard.
    """
    shards: List[Dict[Any, int]] = [{} for _ in range(num_shards)]
    if num_shards == 1:
        shards[0].update(counts)
        return shards
    project = _key_projector(key)
    for value, count in counts.items():
        shards[hash(project(value)) % num_shards][value] = count
    return shards


def merge_counts(shards: Sequence[Dict[Any, int]]) -> Dict[Any, int]:
    """Sum-merge shard results in shard order (the ordered gather)."""
    merged: Dict[Any, int] = {}
    get = merged.get
    for shard in shards:
        for value, count in shard.items():
            merged[value] = get(value, 0) + count
    return merged


def counts_size(counts: Dict[Any, int]) -> int:
    """Standard-encoding size of a materialised count dict (the same
    measure :meth:`ExecContext.check_size` applies)."""
    return 1 + sum(count * encoding_size(value)
                   for value, count in counts.items())


# ----------------------------------------------------------------------
# Segment programs
# ----------------------------------------------------------------------

def _predicate_for(op: str, index: int, rhs: Tuple) -> Callable[[Any], bool]:
    if rhs[0] == "attr":
        other = rhs[1]
        if op == "eq":
            return lambda t: t.attribute(index) == t.attribute(other)
        return lambda t: _compare(op, t.attribute(index),
                                  t.attribute(other))
    constant = rhs[1]
    if op == "eq":
        return lambda t: t.attribute(index) == constant
    return lambda t: _compare(op, t.attribute(index), constant)


def _mapper_for(spec: Tuple) -> Callable[[Any], Any]:
    kind, payload = spec
    if kind == "val":
        part_kind, part = payload
        if part_kind == "attr":
            return lambda t: t.attribute(part)
        return lambda t: part
    parts = payload

    def build(t, parts=parts):
        return Tup(*(t.attribute(p) if k == "attr" else p
                     for k, p in parts))

    return build


def execute_program(program: Sequence[Tuple],
                    inputs: Sequence[Dict[Any, int]],
                    tick: Optional[Callable[[], None]] = None,
                    every: int = 128,
                    check_size: Optional[Callable[[int], None]] = None,
                    stats=None,
                    fault: Optional[Callable[[int], None]] = None
                    ) -> Dict[Any, int]:
    """Run a segment program over one shard's input dicts.

    Slots ``0..len(inputs)-1`` are the inputs; step ``k`` of the
    program produces slot ``len(inputs)+k``; the last step's dict is
    the shard's result.  ``tick`` is the worker governor's tick (step
    budget / deadline / cancellation), ``check_size`` its
    intermediate-size check, ``stats`` an optional
    :class:`~repro.engine.physical.EngineStats` fed per step.

    ``fault`` is the chaos hook: called with the 0-based program-step
    index *before* the step runs, it may raise to simulate a worker
    dying mid-segment.  Because the input dicts are never mutated —
    every step appends a fresh slot — a retry from the same inputs is
    idempotent no matter where a previous attempt died.
    """
    slots: List[Dict[Any, int]] = list(inputs)
    for position, step in enumerate(program):
        if fault is not None:
            fault(position)
        op = step[0]
        if op == "union":
            rows = kernels.k_additive_union(slots[step[1]].items(),
                                            slots[step[2]].items())
        elif op == "monus":
            rows = kernels.k_monus(slots[step[1]], slots[step[2]])
        elif op == "intersect":
            rows = kernels.k_min_intersect(slots[step[1]], slots[step[2]])
        elif op == "max":
            rows = kernels.k_max_union(slots[step[1]], slots[step[2]])
        elif op == "dedup":
            rows = kernels.k_dedup(slots[step[1]].items())
        elif op == "scale":
            rows = kernels.k_scale(slots[step[1]].items(), step[2])
        elif op == "select":
            rows = kernels.k_select(
                slots[step[1]].items(),
                _predicate_for(step[2], step[3], step[4]))
        elif op == "map":
            rows = kernels.k_map(slots[step[1]].items(),
                                 _mapper_for(step[2]))
        elif op == "join":
            probe = slots[step[1]].items()
            rows = kernels.k_hash_join(
                probe, slots[step[2]],
                _key_projector((step[3],)), _key_projector((step[4],)),
                probe_is_left=True)
        elif op == "nest":
            rows = kernels.k_nest(slots[step[1]], step[2])
        else:  # pragma: no cover - compiler emits known ops only
            raise ValueError(f"unknown segment op {op!r}")
        result = kernels.collect(rows, tick=tick, every=every)
        if check_size is not None:
            check_size(counts_size(result))
        if stats is not None:
            stats.record_kernel(f"p-{op}")
            stats.rows_emitted += len(result)
        slots.append(result)
    return slots[-1]


# ----------------------------------------------------------------------
# Segment compilation (logical expression -> program + leaves)
# ----------------------------------------------------------------------

_VP_BINARY = {AdditiveUnion: "union", Subtraction: "monus",
              Intersection: "intersect", MaxUnion: "max"}


def _select_spec(select: Select) -> Optional[Tuple[str, int, Tuple]]:
    """``(op, i, rhs)`` for declarative selections
    ``sigma[t: alpha_i(t) op (alpha_j(t) | const)]``; ``None`` when
    either lambda resists (the evaluator would be needed)."""
    left = select.left.body
    if not (isinstance(left, Attribute)
            and isinstance(left.operand, Var)
            and left.operand.name == select.left.param):
        return None
    right = select.right.body
    if (isinstance(right, Attribute)
            and isinstance(right.operand, Var)
            and right.operand.name == select.right.param):
        return (select.op, left.index, ("attr", right.index))
    if isinstance(right, Const):
        value = right.value
        if isinstance(value, (str, int, float, bool)):
            return (select.op, left.index, ("const", value))
    return None


def _map_spec(lam: Lam) -> Optional[Tuple]:
    """Declarative MAP bodies: a projection, a constant, or a tupling
    of projections/constants."""

    def part_of(body: Expr) -> Optional[Tuple]:
        if (isinstance(body, Attribute) and isinstance(body.operand, Var)
                and body.operand.name == lam.param):
            return ("attr", body.index)
        if isinstance(body, Const) and isinstance(
                body.value, (str, int, float, bool)):
            return ("const", body.value)
        return None

    body = lam.body
    if isinstance(body, Tupling) and body.parts:
        parts = tuple(part_of(part) for part in body.parts)
        if any(part is None for part in parts):
            return None
        return ("tup", parts)
    single = part_of(body)
    if single is None:
        return None
    return ("val", single)


class _SegmentCompiler:
    """One compilation attempt over one expression root.

    ``arity_of`` resolves the tuple arity of a subexpression (needed
    to split join attribute positions and to complement nest indices);
    it may return ``None``, which makes the key operators refuse.
    """

    def __init__(self, arity_of: Callable[[Expr], Optional[int]]):
        self.arity_of = arity_of
        self.steps: List[Tuple] = []
        self.leaves: List[LeafSpec] = []

    # -- leaves -----------------------------------------------------------

    def _leaf(self, expr: Expr) -> int:
        self.leaves.append(LeafSpec(expr))
        return len(self.leaves) - 1

    # -- value-preserving trees ------------------------------------------

    def _vp(self, expr: Expr) -> int:
        """Compile a value-preserving subtree; anything else becomes a
        leaf slot (materialised serially, partitioned as input)."""
        cls = type(expr)
        if cls in _VP_BINARY:
            if cls is AdditiveUnion and expr.left == expr.right:
                inner = self._vp(expr.left)
                return self._push(("scale", inner, 2))
            left = self._vp(expr.left)
            right = self._vp(expr.right)
            return self._push((_VP_BINARY[cls], left, right))
        if isinstance(expr, Dedup):
            return self._push(("dedup", self._vp(expr.operand)))
        if isinstance(expr, Select):
            spec = _select_spec(expr)
            if spec is not None and self._join_shape(expr) is None:
                inner = self._vp(expr.operand)
                return self._push(("select", inner, *spec))
        return self._leaf(expr)

    def _push(self, step: Tuple) -> int:
        self.steps.append(step)
        return -len(self.steps)  # negative = step slot, resolved later

    # -- key operators ----------------------------------------------------

    def _join_shape(self, expr: Expr):
        """``(left, right, i, j_local)`` when the selection is an
        attribute equality crossing a product boundary."""
        if not (isinstance(expr, Select) and expr.op == "eq"
                and isinstance(expr.operand, Cartesian)):
            return None
        spec = _select_spec(expr)
        if spec is None or spec[2][0] != "attr":
            return None
        product = expr.operand
        left_arity = self.arity_of(product.left)
        if left_arity is None:
            return None
        i, j = sorted((spec[1], spec[2][1]))
        if not (i <= left_arity < j):
            return None
        return (product.left, product.right, i, j - left_arity)

    def _key_side(self, expr: Expr, key: Tuple[int, ...]) -> int:
        """Compile one side of a key operator: a value-preserving tree
        whose leaves are partitioned by the operator's key."""
        first_leaf = len(self.leaves)
        slot = self._vp(expr)
        for leaf in self.leaves[first_leaf:]:
            leaf.key = key
        return slot

    # -- entry ------------------------------------------------------------

    def compile(self, expr: Expr) -> Optional[ParallelSegment]:
        map_spec = None
        if isinstance(expr, Map):
            map_spec = _map_spec(expr.lam)
            if map_spec is None:
                return None  # the pass retries on the operand
            expr = expr.operand
        root = self._core(expr)
        if root is None or not self.steps:
            return None
        if map_spec is not None:
            root = self._push(("map", root, map_spec))
        program = self._resolve(root)
        if program is None:
            return None
        return ParallelSegment(program, self.leaves)

    def _core(self, expr: Expr) -> Optional[int]:
        """The segment spine: unary value-preserving operators above at
        most one key operator (join or nest), else a pure VP tree."""
        if isinstance(expr, Dedup):
            inner = self._core(expr.operand)
            if inner is None:
                return None
            return self._push(("dedup", inner))
        join = self._join_shape(expr) if isinstance(expr, Select) else None
        if join is not None:
            left, right, i, j = join
            a = self._key_side(left, (i,))
            b = self._key_side(right, (j,))
            return self._push(("join", a, b, i, j))
        if isinstance(expr, Select):
            spec = _select_spec(expr)
            if spec is None:
                return None
            inner = self._core(expr.operand)
            if inner is None:
                return None
            return self._push(("select", inner, *spec))
        if isinstance(expr, Nest):
            arity = self.arity_of(expr.operand)
            if arity is None:
                return None
            indices = expr.indices
            if max(indices) > arity or min(indices) < 1:
                return None
            rest = tuple(i for i in range(1, arity + 1)
                         if i not in indices)
            if not rest:
                return None  # grouping by the empty key: one global group
            slot = self._key_side(expr.operand, rest)
            return self._push(("nest", slot, indices))
        return self._vp(expr)

    def _resolve(self, root: int) -> Optional[Tuple[Tuple, ...]]:
        """Rewrite negative step references into absolute slot ids
        (leaves occupy ``0..L-1``, step k produces ``L+k``)."""
        base = len(self.leaves)

        def fix(ref: int) -> int:
            return ref if ref >= 0 else base + (-ref - 1)

        resolved = []
        for step in self.steps:
            op = step[0]
            if op in ("union", "monus", "intersect", "max"):
                resolved.append((op, fix(step[1]), fix(step[2])))
            elif op in ("dedup",):
                resolved.append((op, fix(step[1])))
            elif op in ("scale", "map", "nest"):
                resolved.append((op, fix(step[1]), step[2]))
            elif op == "select":
                resolved.append((op, fix(step[1]), *step[2:]))
            elif op == "join":
                resolved.append((op, fix(step[1]), fix(step[2]),
                                 step[3], step[4]))
            else:  # pragma: no cover
                return None
        if fix(root) != base + len(resolved) - 1:
            return None  # the root must be the last step
        return tuple(resolved)


def compile_parallel_segment(expr: Expr,
                             arity_of: Callable[[Expr], Optional[int]]
                             ) -> Optional[ParallelSegment]:
    """Compile an expression into a shard-local segment, or ``None``
    when the root is not partition-compatible (the lowering pass then
    recurses and retries on the children)."""
    segment = _SegmentCompiler(arity_of).compile(expr)
    if segment is None or not segment.program or not segment.leaves:
        return None
    # A segment that is a bare passthrough of one leaf parallelises
    # nothing; require at least one real kernel step over the fan-out.
    return segment
