"""Hash partitioning and shard-local segment programs.

The bag operators of the paper distribute over a *hash partition of
the value space*: for any deterministic shard function ``s(v)``, all
copies of a value ``v`` — in every operand — land in the same shard,
so monus, min-intersection, max-union, dedup, scaling, and selection
compute their exact per-value multiplicities shard-locally, and the
gather step is a plain count merge.  (This is the semiring view of
multiplicities made operational: each shard carries a sub-semimodule
of the bag, and the partition-compatible operators are module
homomorphisms.)  Two operators consume the *choice* of shard function
instead of merely preserving it:

* hash join — both sides must be partitioned by their join key;
* nest — the input must be partitioned by the group key (the
  complement of the nested attributes).

Everything else (powerset, powerbag, flatten, unnest, oracle
fallbacks) forces a gather barrier: those subtrees are materialised
once, serially, and become partitioned *inputs* of the segment.

A *segment* is the unit shipped to workers: a closure-free program of
kernel steps over input slots (:func:`execute_program`).  Keeping the
program declarative — attribute indices and constants, never compiled
closures — is what makes the process backend possible: a program plus
its shard inputs pickles, a closure does not.  Each worker compiles
the declarative program **once** into a list of columnar step
closures (predicates, mappers, and key projectors prebuilt; kernels
from :mod:`repro.engine.columnar`) and caches it in a process-local
cache keyed by the planner's pass tag plus the program itself, so
every subsequent morsel of the same plan reuses the compiled segment
(:func:`compiled_segment_for`).

:data:`PARTITION_COMPAT` is the compatibility table the docs and the
lowering pass share; :func:`compile_parallel_segment` turns a logical
expression into a program plus leaf partition specs, or ``None`` when
the root operator is not partition-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.core.bag import Tup
from repro.core.database import encoding_size
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Select, Subtraction, Tupling,
    Var, _compare,
)
from repro.core.nest import Nest
from repro.engine import kernels
from repro.engine.columnar import (
    c_add_union, c_hash_join, c_max_union, c_min_intersect, c_monus,
    c_scale_dict, sum_counts,
)

__all__ = [
    "PARTITION_COMPAT", "ParallelPolicy", "ParallelSegment", "LeafSpec",
    "shard_of", "split_counts", "merge_counts", "counts_size",
    "execute_program", "compile_parallel_segment",
    "compiled_segment_for", "clear_segment_cache", "segment_cache_len",
]

#: Kernel name -> how it behaves under a hash partition of the value
#: space.  ``local`` runs shard-local under any value partition;
#: ``key-local`` runs shard-local only when the inputs are partitioned
#: on the operator's key (join key / group key); ``root-local`` runs
#: shard-local but destroys value-disjointness, so it is admitted only
#: as the last step before the gather; ``barrier`` forces a gather —
#: the subtree is materialised serially and partitioned as an input.
PARTITION_COMPAT: Dict[str, str] = {
    "scan": "local",
    "const": "local",
    "additive-union": "local",
    "monus": "local",
    "min-intersect": "local",
    "max-union": "local",
    "dedup": "local",
    "scale": "local",
    "select": "local",
    "map": "root-local",
    "hash-join": "key-local",
    "nest-build": "key-local",
    "flatten": "barrier",
    "unnest": "barrier",
    "powerset": "barrier",
    "powerbag": "barrier",
    "nested-loop-product": "barrier",
    "oracle": "barrier",
    "shared": "barrier",
}


@dataclass(frozen=True)
class ParallelPolicy:
    """Plan-time knobs of the parallelism pass.

    ``threshold`` is the minimum *estimated total input cardinality*
    (summed over the segment's leaves) below which the pass refuses to
    insert an exchange — fanning out a few hundred rows costs more
    than it saves.  A threshold of ``0`` forces exchanges wherever a
    segment compiles (the differential harness uses this to fuzz the
    partition machinery on tiny bags).
    """

    threshold: float = 1024.0


@dataclass
class LeafSpec:
    """One segment input: the subtree feeding the slot plus the
    partition key (attribute indices; ``None`` = whole-value hash)."""

    expr: Expr
    key: Optional[Tuple[int, ...]] = None


@dataclass
class ParallelSegment:
    """A compiled segment: the step program plus its input leaves."""

    program: Tuple[Tuple, ...]
    leaves: List[LeafSpec]


# ----------------------------------------------------------------------
# Shard arithmetic
# ----------------------------------------------------------------------

def _key_projector(indices: Optional[Sequence[int]]
                   ) -> Callable[[Any], Any]:
    if not indices:
        return lambda value: value
    if len(indices) == 1:
        index = indices[0]
        return lambda value: value.attribute(index)
    fixed = tuple(indices)
    return lambda value: tuple(value.attribute(i) for i in fixed)


def shard_of(value: Any, num_shards: int,
             key: Optional[Sequence[int]] = None) -> int:
    """The shard a value belongs to under a key projection."""
    return hash(_key_projector(key)(value)) % num_shards


def split_counts(counts: Dict[Any, int], num_shards: int,
                 key: Optional[Sequence[int]] = None
                 ) -> List[Dict[Any, int]]:
    """Split a count dict into ``num_shards`` disjoint shard dicts.

    The shard of a value is a pure function of the value (optionally
    through a key projection), so every copy of a value — across all
    co-partitioned operands — lands in the same shard.
    """
    shards: List[Dict[Any, int]] = [{} for _ in range(num_shards)]
    if num_shards == 1:
        shards[0].update(counts)
        return shards
    project = _key_projector(key)
    for value, count in counts.items():
        shards[hash(project(value)) % num_shards][value] = count
    return shards


def merge_counts(shards: Sequence[Dict[Any, int]],
                 sr=None) -> Dict[Any, int]:
    """Sum-merge shard results in shard order (the ordered gather)."""
    merged: Dict[Any, int] = {}
    get = merged.get
    if sr is None:
        for shard in shards:
            for value, count in shard.items():
                merged[value] = get(value, 0) + count
        return merged
    add = sr.add
    for shard in shards:
        for value, count in shard.items():
            existing = get(value)
            merged[value] = (count if existing is None
                             else add(existing, count))
    return merged


def counts_size(counts: Dict[Any, int]) -> int:
    """Standard-encoding size of a materialised count dict (the same
    measure :meth:`ExecContext.check_size` applies); non-integer
    semiring annotations weigh one occurrence."""
    return 1 + sum((count if isinstance(count, int) else 1)
                   * encoding_size(value)
                   for value, count in counts.items())


# ----------------------------------------------------------------------
# Segment programs
# ----------------------------------------------------------------------

def _predicate_for(op: str, index: int, rhs: Tuple) -> Callable[[Any], bool]:
    if rhs[0] == "attr":
        other = rhs[1]
        if op == "eq":
            return lambda t: t.attribute(index) == t.attribute(other)
        return lambda t: _compare(op, t.attribute(index),
                                  t.attribute(other))
    constant = rhs[1]
    if op == "eq":
        return lambda t: t.attribute(index) == constant
    return lambda t: _compare(op, t.attribute(index), constant)


def _mapper_for(spec: Tuple) -> Callable[[Any], Any]:
    kind, payload = spec
    if kind == "val":
        part_kind, part = payload
        if part_kind == "attr":
            return lambda t: t.attribute(part)
        return lambda t: part
    parts = payload

    def build(t, parts=parts):
        return Tup(*(t.attribute(p) if k == "attr" else p
                     for k, p in parts))

    return build


def _compile_step(step: Tuple, sr=None) -> Tuple[str, Callable]:
    """Compile one declarative program step into a columnar closure.

    The closure takes ``(slots, tick)`` and returns a fresh count
    dict; predicates, mappers, and key projectors are built **here**,
    once per compiled segment, never per morsel.  Only the join kernel
    consumes ``tick`` directly (it is the one step that can emit far
    more rows than it reads); every other step is governed by the
    driver's proportional post-step ticking.

    ``sr`` is the multiplicity semiring (``None`` = N): the closures
    thread it into the columnar kernels, which keep their own int
    fast paths, so the N specialisation is unchanged.
    """
    op = step[0]
    if op == "union":
        i, j = step[1], step[2]
        return op, lambda slots, tick: c_add_union(slots[i], slots[j],
                                                   sr)
    if op == "monus":
        i, j = step[1], step[2]
        return op, lambda slots, tick: c_monus(slots[i], slots[j], sr)
    if op == "intersect":
        i, j = step[1], step[2]
        return op, lambda slots, tick: c_min_intersect(slots[i],
                                                       slots[j], sr)
    if op == "max":
        i, j = step[1], step[2]
        return op, lambda slots, tick: c_max_union(slots[i], slots[j],
                                                   sr)
    if op == "dedup":
        i = step[1]
        one = 1 if sr is None else sr.one
        return op, lambda slots, tick: dict.fromkeys(slots[i], one)
    if op == "scale":
        i, factor = step[1], step[2]
        return op, lambda slots, tick: c_scale_dict(slots[i], factor,
                                                    sr)
    if op == "select":
        i = step[1]
        predicate = _predicate_for(step[2], step[3], step[4])
        return op, lambda slots, tick: {
            value: count for value, count in slots[i].items()
            if predicate(value)}
    if op == "map":
        i = step[1]
        mapper = _mapper_for(step[2])
        return op, lambda slots, tick: sum_counts(
            map(mapper, slots[i]), slots[i].values(), sr)
    if op == "join":
        i, j = step[1], step[2]
        probe_key = _key_projector((step[3],))
        build_key = _key_projector((step[4],))

        def join(slots, tick, i=i, j=j):
            probe = slots[i]
            values, counts = c_hash_join(
                list(probe.keys()), list(probe.values()), slots[j],
                probe_key, build_key, probe_is_left=True, tick=tick,
                sr=sr)
            return sum_counts(values, counts, sr)

        return op, join
    if op == "nest":
        i, indices = step[1], step[2]
        return op, lambda slots, tick: dict(
            kernels.k_nest(slots[i], indices, sr=sr))
    raise ValueError(f"unknown segment op {op!r}")  # pragma: no cover


#: Worker-local compiled segments: ``(tag, program) -> [(op, fn)]``.
#: Lives at module level so it survives across morsels of one worker
#: process (fork'd children inherit the parent's warm entries too).
#: The tag is the planner's ``PassConfig.cache_tag()`` — a config
#: change (different passes, different selectivity) must compile a
#: fresh segment even for a syntactically identical program.
_SEGMENT_CACHE: Dict[Tuple[Any, Tuple[Tuple, ...]], List[Tuple[str, Callable]]] = {}
_SEGMENT_CACHE_CAP = 256


def compiled_segment_for(program: Sequence[Tuple],
                         tag: Optional[Tuple] = None,
                         stats=None,
                         sr=None) -> List[Tuple[str, Callable]]:
    """The compiled closure list for a program, compiled at most once
    per worker per ``(tag, program)``.  Hit/miss counts land in
    ``stats`` (an :class:`~repro.engine.physical.EngineStats`), which
    the exchange merges back into the parent — so ``:explain`` shows
    how often workers reused a resident segment.  The tag (the
    planner's ``cache_tag()``) already carries the semiring name, so
    N and generic compilations of the same program never collide."""
    key = (tag, tuple(program))
    compiled = _SEGMENT_CACHE.get(key)
    if compiled is not None:
        if stats is not None:
            stats.segment_cache_hits += 1
        return compiled
    compiled = [_compile_step(step, sr) for step in program]
    if len(_SEGMENT_CACHE) >= _SEGMENT_CACHE_CAP:
        _SEGMENT_CACHE.pop(next(iter(_SEGMENT_CACHE)))
    _SEGMENT_CACHE[key] = compiled
    if stats is not None:
        stats.segment_cache_misses += 1
    return compiled


def clear_segment_cache() -> None:
    """Drop every compiled segment (tests; a respawned pool starts
    cold anyway because a fresh process starts with an empty dict)."""
    _SEGMENT_CACHE.clear()


def segment_cache_len() -> int:
    """Number of resident compiled segments in this process."""
    return len(_SEGMENT_CACHE)


def execute_program(program: Sequence[Tuple],
                    inputs: Sequence[Dict[Any, int]],
                    tick: Optional[Callable[[], None]] = None,
                    every: int = 128,
                    check_size: Optional[Callable[[int], None]] = None,
                    stats=None,
                    fault: Optional[Callable[[int], None]] = None,
                    tag: Optional[Tuple] = None,
                    sr=None) -> Dict[Any, int]:
    """Run a segment program over one shard's input dicts.

    Slots ``0..len(inputs)-1`` are the inputs; step ``k`` of the
    program produces slot ``len(inputs)+k``; the last step's dict is
    the shard's result.  ``tick`` is the worker governor's tick (step
    budget / deadline / cancellation), ``check_size`` its
    intermediate-size check, ``stats`` an optional
    :class:`~repro.engine.physical.EngineStats` fed per step.

    The program is compiled (once per worker, see
    :func:`compiled_segment_for`) into columnar closures over the
    dict kernels of :mod:`repro.engine.columnar`; each step runs as
    one bulk dict operation instead of a per-row generator chain.
    Governance is preserved per step: the driver ticks once before a
    step and proportionally to the result size after it (so budgets,
    deadlines, and cancellation trip with the same granularity the
    stream kernels had), the join kernel additionally ticks inside
    per ``TICK_CHUNK`` emitted rows, and every step's materialised
    size passes through ``check_size``.

    ``fault`` is the chaos hook: called with the 0-based program-step
    index *before* the step runs, it may raise to simulate a worker
    dying mid-segment.  Because the input dicts are never mutated —
    every step produces a fresh dict in a new slot — a retry from the
    same inputs is idempotent no matter where a previous attempt died.
    """
    compiled = compiled_segment_for(program, tag=tag, stats=stats,
                                    sr=sr)
    slots: List[Dict[Any, int]] = list(inputs)
    for position, (op, fn) in enumerate(compiled):
        if fault is not None:
            fault(position)
        if tick is not None:
            tick()
        result = fn(slots, tick)
        if tick is not None:
            for _ in range(len(result) // every):
                tick()
        if check_size is not None:
            check_size(counts_size(result))
        if stats is not None:
            stats.record_kernel(f"p-{op}")
            stats.rows_emitted += len(result)
        slots.append(result)
    return slots[-1]


# ----------------------------------------------------------------------
# Segment compilation (logical expression -> program + leaves)
# ----------------------------------------------------------------------

_VP_BINARY = {AdditiveUnion: "union", Subtraction: "monus",
              Intersection: "intersect", MaxUnion: "max"}


def _select_spec(select: Select) -> Optional[Tuple[str, int, Tuple]]:
    """``(op, i, rhs)`` for declarative selections
    ``sigma[t: alpha_i(t) op (alpha_j(t) | const)]``; ``None`` when
    either lambda resists (the evaluator would be needed)."""
    left = select.left.body
    if not (isinstance(left, Attribute)
            and isinstance(left.operand, Var)
            and left.operand.name == select.left.param):
        return None
    right = select.right.body
    if (isinstance(right, Attribute)
            and isinstance(right.operand, Var)
            and right.operand.name == select.right.param):
        return (select.op, left.index, ("attr", right.index))
    if isinstance(right, Const):
        value = right.value
        if isinstance(value, (str, int, float, bool)):
            return (select.op, left.index, ("const", value))
    return None


def _map_spec(lam: Lam) -> Optional[Tuple]:
    """Declarative MAP bodies: a projection, a constant, or a tupling
    of projections/constants."""

    def part_of(body: Expr) -> Optional[Tuple]:
        if (isinstance(body, Attribute) and isinstance(body.operand, Var)
                and body.operand.name == lam.param):
            return ("attr", body.index)
        if isinstance(body, Const) and isinstance(
                body.value, (str, int, float, bool)):
            return ("const", body.value)
        return None

    body = lam.body
    if isinstance(body, Tupling) and body.parts:
        parts = tuple(part_of(part) for part in body.parts)
        if any(part is None for part in parts):
            return None
        return ("tup", parts)
    single = part_of(body)
    if single is None:
        return None
    return ("val", single)


class _SegmentCompiler:
    """One compilation attempt over one expression root.

    ``arity_of`` resolves the tuple arity of a subexpression (needed
    to split join attribute positions and to complement nest indices);
    it may return ``None``, which makes the key operators refuse.
    """

    def __init__(self, arity_of: Callable[[Expr], Optional[int]]):
        self.arity_of = arity_of
        self.steps: List[Tuple] = []
        self.leaves: List[LeafSpec] = []
        # common-subexpression sharing: an expression tree repeats
        # shared subtrees textually (the chain workloads repeat their
        # relations at every level), but a shard is a pure function of
        # (leaf expression, partition key) and a step a pure function
        # of its tuple — so equal leaves and equal steps collapse to
        # one slot instead of being materialised, shipped, and
        # executed once per occurrence.
        self._leaf_slots: Dict[Any, int] = {}
        self._step_refs: Dict[Tuple, int] = {}
        self._current_key: Optional[Tuple[int, ...]] = None

    # -- leaves -----------------------------------------------------------

    def _leaf(self, expr: Expr) -> int:
        slot_key = (self._current_key, expr)
        slot = self._leaf_slots.get(slot_key)
        if slot is None:
            self.leaves.append(LeafSpec(expr, self._current_key))
            slot = len(self.leaves) - 1
            self._leaf_slots[slot_key] = slot
        return slot

    # -- value-preserving trees ------------------------------------------

    def _vp(self, expr: Expr) -> int:
        """Compile a value-preserving subtree; anything else becomes a
        leaf slot (materialised serially, partitioned as input)."""
        cls = type(expr)
        if cls in _VP_BINARY:
            if cls is AdditiveUnion and expr.left == expr.right:
                inner = self._vp(expr.left)
                return self._push(("scale", inner, 2))
            left = self._vp(expr.left)
            right = self._vp(expr.right)
            return self._push((_VP_BINARY[cls], left, right))
        if isinstance(expr, Dedup):
            return self._push(("dedup", self._vp(expr.operand)))
        if isinstance(expr, Select):
            spec = _select_spec(expr)
            if spec is not None and self._join_shape(expr) is None:
                inner = self._vp(expr.operand)
                return self._push(("select", inner, *spec))
        return self._leaf(expr)

    def _push(self, step: Tuple) -> int:
        ref = self._step_refs.get(step)
        if ref is None:
            self.steps.append(step)
            ref = -len(self.steps)  # negative step slot, resolved later
            self._step_refs[step] = ref
        return ref

    # -- key operators ----------------------------------------------------

    def _join_shape(self, expr: Expr):
        """``(left, right, i, j_local)`` when the selection is an
        attribute equality crossing a product boundary."""
        if not (isinstance(expr, Select) and expr.op == "eq"
                and isinstance(expr.operand, Cartesian)):
            return None
        spec = _select_spec(expr)
        if spec is None or spec[2][0] != "attr":
            return None
        product = expr.operand
        left_arity = self.arity_of(product.left)
        if left_arity is None:
            return None
        i, j = sorted((spec[1], spec[2][1]))
        if not (i <= left_arity < j):
            return None
        return (product.left, product.right, i, j - left_arity)

    def _key_side(self, expr: Expr, key: Tuple[int, ...]) -> int:
        """Compile one side of a key operator: a value-preserving tree
        whose leaves are partitioned by the operator's key.  The key
        scopes the CSE map — the same subtree needed under a different
        partitioning is a different shard and keeps its own slot."""
        previous = self._current_key
        self._current_key = key
        try:
            return self._vp(expr)
        finally:
            self._current_key = previous

    # -- entry ------------------------------------------------------------

    def compile(self, expr: Expr) -> Optional[ParallelSegment]:
        map_spec = None
        if isinstance(expr, Map):
            map_spec = _map_spec(expr.lam)
            if map_spec is None:
                return None  # the pass retries on the operand
            expr = expr.operand
        root = self._core(expr)
        if root is None or not self.steps:
            return None
        if map_spec is not None:
            root = self._push(("map", root, map_spec))
        program = self._resolve(root)
        if program is None:
            return None
        return ParallelSegment(program, self.leaves)

    def _core(self, expr: Expr) -> Optional[int]:
        """The segment spine: unary value-preserving operators above at
        most one key operator (join or nest), else a pure VP tree."""
        if isinstance(expr, Dedup):
            inner = self._core(expr.operand)
            if inner is None:
                return None
            return self._push(("dedup", inner))
        join = self._join_shape(expr) if isinstance(expr, Select) else None
        if join is not None:
            left, right, i, j = join
            a = self._key_side(left, (i,))
            b = self._key_side(right, (j,))
            return self._push(("join", a, b, i, j))
        if isinstance(expr, Select):
            spec = _select_spec(expr)
            if spec is None:
                return None
            inner = self._core(expr.operand)
            if inner is None:
                return None
            return self._push(("select", inner, *spec))
        if isinstance(expr, Nest):
            arity = self.arity_of(expr.operand)
            if arity is None:
                return None
            indices = expr.indices
            if max(indices) > arity or min(indices) < 1:
                return None
            rest = tuple(i for i in range(1, arity + 1)
                         if i not in indices)
            if not rest:
                return None  # grouping by the empty key: one global group
            slot = self._key_side(expr.operand, rest)
            return self._push(("nest", slot, indices))
        return self._vp(expr)

    def _resolve(self, root: int) -> Optional[Tuple[Tuple, ...]]:
        """Rewrite negative step references into absolute slot ids
        (leaves occupy ``0..L-1``, step k produces ``L+k``)."""
        base = len(self.leaves)

        def fix(ref: int) -> int:
            return ref if ref >= 0 else base + (-ref - 1)

        resolved = []
        for step in self.steps:
            op = step[0]
            if op in ("union", "monus", "intersect", "max"):
                resolved.append((op, fix(step[1]), fix(step[2])))
            elif op in ("dedup",):
                resolved.append((op, fix(step[1])))
            elif op in ("scale", "map", "nest"):
                resolved.append((op, fix(step[1]), step[2]))
            elif op == "select":
                resolved.append((op, fix(step[1]), *step[2:]))
            elif op == "join":
                resolved.append((op, fix(step[1]), fix(step[2]),
                                 step[3], step[4]))
            else:  # pragma: no cover
                return None
        if fix(root) != base + len(resolved) - 1:
            return None  # the root must be the last step
        return tuple(resolved)


def compile_parallel_segment(expr: Expr,
                             arity_of: Callable[[Expr], Optional[int]]
                             ) -> Optional[ParallelSegment]:
    """Compile an expression into a shard-local segment, or ``None``
    when the root is not partition-compatible (the lowering pass then
    recurses and retries on the children)."""
    segment = _SegmentCompiler(arity_of).compile(expr)
    if segment is None or not segment.program or not segment.leaves:
        return None
    # A segment that is a bare passthrough of one leaf parallelises
    # nothing; require at least one real kernel step over the fan-out.
    return segment
