"""Compact binary codec for columnar morsels.

The process backend used to ship each shard as a pickled
``{value: count}`` dict.  Pickle is general but fat: every ``Tup``
carries its class reference, slot-state machinery, and re-encoded
atoms — for a join shard of k-ary tuples over a small atom domain
that is an order of magnitude more bytes than the information
content.  This codec exploits exactly the structure the bag model
guarantees (Section 3 of the paper: complex objects are atoms closed
under tuple and bag constructors):

* **interned atoms** — every distinct atom is encoded once in a
  type-tagged atom table; values reference atoms by varint index.
  Join outputs repeat the same handful of atoms across thousands of
  rows, so the table amortises to ~1–2 bytes per attribute.
* **value array + count array** — the distinct values are encoded as
  one contiguous value stream plus one varint count column: the wire
  form of :class:`~repro.engine.columnar.ColumnarBag`'s parallel
  ``values``/``counts`` arrays.  Homogeneous shards (every value a
  same-arity tuple of atoms, or a bare atom — the join/scan shape)
  take a *flat* mode whose value array is fixed-width columns of atom
  indices, ~1 byte per attribute with no per-value tags; mixed or
  nested shards fall back to a tagged recursive stream.
* **no per-object protocol overhead** — tuples are
  ``TUP arity item...``, nested bags are ``BAG n (value count)...``;
  arity and nesting are explicit, so decoding rebuilds values without
  running any constructor validation (the parent already validated
  the shard it split).

Atoms outside the scalar fast path (exotic hashables) fall back to an
embedded pickle, so the codec is total over every shard the engine
can produce.  ``decode_shard(encode_shard(d)) == d`` for any
well-formed count dict — property-tested in ``tests/test_parallel.py``.

Semiring annotations: a shard whose multiplicities are all
non-negative ints (the N default, and Bool, which stays in ``{0,1}``
ints) takes the original ``CM01`` layout byte-for-byte.  When any
count — top-level or inside a nested bag — is a semiring annotation
(a ``Trop`` cost, a ``Prov`` polynomial), the blob is stamped
``CM02`` and every count is tag-prefixed: ``0`` + varint for ints,
``1`` + length-prefixed pickle for annotations.  The atom table and
value stream are unchanged, so the generic column costs exactly one
tag byte per count plus the annotation payloads.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.bag import Bag, Tup, _check_homogeneous

__all__ = ["encode_shard", "decode_shard"]

_MAGIC = b"CM01"
_MAGIC_V2 = b"CM02"

# CM02 count-column tags
_C_INT = 0
_C_PICKLE = 1

# atom table tags
_A_NONE = 0
_A_TRUE = 1
_A_FALSE = 2
_A_INT = 3
_A_STR = 4
_A_FLOAT = 5
_A_BYTES = 6
_A_PICKLE = 7

# value stream tags
_V_ATOM = 0
_V_TUP = 1
_V_BAG = 2

# value-stream modes: the common shard shapes drop per-value tags
_M_GENERIC = 0       # tagged recursive stream (nested bags, mixes)
_M_FLAT_TUPLES = 1   # same-arity atom tuples: arity, then n*arity idx
_M_FLAT_ATOMS = 2    # bare atoms: n indices

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _write_varint(buf: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_signed(buf: bytearray, value: int) -> None:
    # zigzag: small magnitudes of either sign stay one byte
    if value >= 0:
        _write_varint(buf, value << 1)
    else:
        _write_varint(buf, ((-value) << 1) - 1)


def _read_signed(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_varint(data, pos)
    if raw & 1:
        return -((raw + 1) >> 1), pos
    return raw >> 1, pos


class _AtomTable:
    """Assigns dense indices to distinct atoms on first sight and
    serialises the table itself (in index order) into the header."""

    __slots__ = ("index", "buf")

    def __init__(self) -> None:
        self.index: Dict[Any, int] = {}
        self.buf = bytearray()

    def intern(self, atom: Any) -> int:
        # bool before int: True == 1 would collide in the dict, and a
        # bool must round-trip as a bool
        key = (type(atom), atom)
        slot = self.index.get(key)
        if slot is not None:
            return slot
        slot = len(self.index)
        self.index[key] = slot
        buf = self.buf
        if atom is None:
            buf.append(_A_NONE)
        elif atom is True:
            buf.append(_A_TRUE)
        elif atom is False:
            buf.append(_A_FALSE)
        elif type(atom) is int:
            buf.append(_A_INT)
            _write_signed(buf, atom)
        elif type(atom) is str:
            raw = atom.encode("utf-8")
            buf.append(_A_STR)
            _write_varint(buf, len(raw))
            buf += raw
        elif type(atom) is float:
            buf.append(_A_FLOAT)
            buf += _pack_double(atom)
        elif type(atom) is bytes:
            buf.append(_A_BYTES)
            _write_varint(buf, len(raw := atom))
            buf += raw
        else:
            raw = pickle.dumps(atom, protocol=pickle.HIGHEST_PROTOCOL)
            buf.append(_A_PICKLE)
            _write_varint(buf, len(raw))
            buf += raw
        return slot


def _write_count_v2(buf: bytearray, count: Any) -> None:
    """CM02 count cell: tag byte, then varint or embedded pickle."""
    if isinstance(count, int):
        buf.append(_C_INT)
        _write_varint(buf, count)
    else:
        raw = pickle.dumps(count, protocol=pickle.HIGHEST_PROTOCOL)
        buf.append(_C_PICKLE)
        _write_varint(buf, len(raw))
        buf += raw


def _read_count_v2(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _C_INT:
        return _read_varint(data, pos)
    if tag == _C_PICKLE:
        length, pos = _read_varint(data, pos)
        return pickle.loads(data[pos:pos + length]), pos + length
    raise ValueError(f"bad count tag {tag}")  # pragma: no cover


def _value_has_annotations(value: Any) -> bool:
    """Whether a value carries non-int counts in some nested bag."""
    if isinstance(value, Tup):
        return any(_value_has_annotations(item)
                   for item in value.items())
    if isinstance(value, Bag):
        return any(not isinstance(count, int)
                   or _value_has_annotations(element)
                   for element, count in value._counts.items())
    return False


def _needs_v2(counts: Dict[Any, int]) -> bool:
    for value, count in counts.items():
        if not isinstance(count, int):
            return True
        if _value_has_annotations(value):
            return True
    return False


def _encode_value(value: Any, buf: bytearray, atoms: _AtomTable,
                  generic: bool = False) -> None:
    if isinstance(value, Tup):
        buf.append(_V_TUP)
        items = value.items()
        _write_varint(buf, len(items))
        for item in items:
            _encode_value(item, buf, atoms, generic)
    elif isinstance(value, Bag):
        counts = value._counts
        buf.append(_V_BAG)
        _write_varint(buf, len(counts))
        for element, count in counts.items():
            _encode_value(element, buf, atoms, generic)
            if generic:
                _write_count_v2(buf, count)
            else:
                _write_varint(buf, count)
    else:
        buf.append(_V_ATOM)
        _write_varint(buf, atoms.intern(value))


def _flat_arity(counts: Dict[Any, int]) -> Optional[int]:
    """The common arity when every value is a ``Tup`` of atoms (the
    join/scan shard shape), else ``None``."""
    arity = None
    for value in counts:
        if type(value) is not Tup:
            return None
        items = value.items()
        if arity is None:
            arity = len(items)
        elif len(items) != arity:
            return None
        for item in items:
            if isinstance(item, (Tup, Bag)):
                return None
    return arity


def encode_shard(counts: Dict[Any, int]) -> bytes:
    """Encode a ``{value: count}`` shard into the wire format.

    Layout: magic, varint atom-table length, the type-tagged atom
    table, varint value count, the count array (one varint per
    value), a mode byte, then the value array.  Homogeneous shards —
    every value a same-arity tuple of atoms, or every value a bare
    atom — take a *flat* mode: fixed-width columns of atom indices
    with no per-value structure tags (the dominant join/scan shape,
    ~1 byte per attribute).  Anything else takes the generic tagged
    recursive stream.

    Shards with semiring annotations anywhere in their counts take
    the ``CM02`` layout: identical except every count cell is
    tag-prefixed (see module docstring).  All-int shards — every N
    and Bool shard — emit ``CM01`` bytes unchanged.
    """
    generic = bool(counts) and _needs_v2(counts)
    atoms = _AtomTable()
    values = bytearray()
    column = bytearray()
    _write_varint(column, len(counts))
    if generic:
        for count in counts.values():
            _write_count_v2(column, count)
    else:
        for count in counts.values():
            _write_varint(column, count)
    arity = _flat_arity(counts) if counts else None
    if arity is not None:
        values.append(_M_FLAT_TUPLES)
        _write_varint(values, arity)
        for value in counts:
            for item in value.items():
                _write_varint(values, atoms.intern(item))
    elif counts and not any(isinstance(value, (Tup, Bag))
                            for value in counts):
        values.append(_M_FLAT_ATOMS)
        for value in counts:
            _write_varint(values, atoms.intern(value))
    else:
        values.append(_M_GENERIC)
        for value in counts:
            _encode_value(value, values, atoms, generic)
    out = bytearray(_MAGIC_V2 if generic else _MAGIC)
    _write_varint(out, len(atoms.index))
    out += atoms.buf
    out += column
    out += values
    return bytes(out)


def _decode_atoms(data: bytes, pos: int) -> Tuple[List[Any], int]:
    natoms, pos = _read_varint(data, pos)
    atoms: List[Any] = []
    append = atoms.append
    for _ in range(natoms):
        tag = data[pos]
        pos += 1
        if tag == _A_NONE:
            append(None)
        elif tag == _A_TRUE:
            append(True)
        elif tag == _A_FALSE:
            append(False)
        elif tag == _A_INT:
            value, pos = _read_signed(data, pos)
            append(value)
        elif tag == _A_STR:
            length, pos = _read_varint(data, pos)
            append(data[pos:pos + length].decode("utf-8"))
            pos += length
        elif tag == _A_FLOAT:
            append(_unpack_double(data, pos)[0])
            pos += 8
        elif tag == _A_BYTES:
            length, pos = _read_varint(data, pos)
            append(data[pos:pos + length])
            pos += length
        elif tag == _A_PICKLE:
            length, pos = _read_varint(data, pos)
            append(pickle.loads(data[pos:pos + length]))
            pos += length
        else:  # pragma: no cover - encoder emits known tags only
            raise ValueError(f"bad atom tag {tag}")
    return atoms, pos


def _decode_value(data: bytes, pos: int, atoms: List[Any],
                  generic: bool = False) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _V_ATOM:
        index, pos = _read_varint(data, pos)
        return atoms[index], pos
    if tag == _V_TUP:
        arity, pos = _read_varint(data, pos)
        items = []
        for _ in range(arity):
            item, pos = _decode_value(data, pos, atoms, generic)
            items.append(item)
        # the encoder only sees validated values, so rebuild without
        # re-running constructor checks; hash and shape stay lazy
        tup = Tup.__new__(Tup)
        tup._items = tuple(items)
        tup._hash = None
        tup._shape = None
        return tup, pos
    if tag == _V_BAG:
        ndistinct, pos = _read_varint(data, pos)
        inner: Dict[Any, int] = {}
        for _ in range(ndistinct):
            element, pos = _decode_value(data, pos, atoms, generic)
            if generic:
                count, pos = _read_count_v2(data, pos)
            else:
                count, pos = _read_varint(data, pos)
            inner[element] = count
        bag = Bag.__new__(Bag)
        bag._shape = _check_homogeneous(inner.keys())
        bag._counts = inner
        try:
            bag._cardinality = sum(inner.values())
        except TypeError:  # annotated counts: one per distinct value
            bag._cardinality = len(inner)
        bag._hash = None
        return bag, pos
    raise ValueError(f"bad value tag {tag}")  # pragma: no cover


def decode_shard(data: bytes) -> Dict[Any, int]:
    """Decode :func:`encode_shard` output back into a count dict."""
    magic = data[:4]
    if magic == _MAGIC:
        generic = False
    elif magic == _MAGIC_V2:
        generic = True
    else:
        raise ValueError("not a columnar-morsel blob")
    atoms, pos = _decode_atoms(data, 4)
    nvalues, pos = _read_varint(data, pos)
    counts = []
    for _ in range(nvalues):
        if generic:
            count, pos = _read_count_v2(data, pos)
        else:
            count, pos = _read_varint(data, pos)
        counts.append(count)
    out: Dict[Any, int] = {}
    mode = data[pos]
    pos += 1
    if mode == _M_FLAT_TUPLES:
        arity, pos = _read_varint(data, pos)
        for count in counts:
            items = []
            for _ in range(arity):
                index, pos = _read_varint(data, pos)
                items.append(atoms[index])
            tup = Tup.__new__(Tup)
            tup._items = tuple(items)
            tup._hash = None
            tup._shape = None
            out[tup] = count
    elif mode == _M_FLAT_ATOMS:
        for count in counts:
            index, pos = _read_varint(data, pos)
            out[atoms[index]] = count
    elif mode == _M_GENERIC:
        for count in counts:
            value, pos = _decode_value(data, pos, atoms, generic)
            out[value] = count
    else:  # pragma: no cover - encoder emits known modes only
        raise ValueError(f"bad value-stream mode {mode}")
    return out
