"""Morsel-driven parallel execution for the physical engine.

Three layers (see ``docs/parallel.md`` for the full story):

* :mod:`~repro.engine.parallel.partition` — hash partitioning of
  multiplicity streams, the partition-compatibility table, and the
  closure-free *segment programs* shipped to workers;
* :mod:`~repro.engine.parallel.exchange` — the
  Partition/Exchange/Gather physical nodes and the thread/process
  worker pools with ordered merge and fail-fast errors;
* :mod:`~repro.engine.parallel.governor` — budget splitting so a
  parallel run honours the same :class:`~repro.guard.Limits` as a
  serial one (shared step pool, inherited deadline, linked
  cancellation, per-worker stats merge).

Fault tolerance is opt-in via
:class:`~repro.engine.resilience.ResilienceConfig` (per-morsel retry,
process-pool respawn, the process → thread → serial degradation
ladder); see ``docs/parallel.md``'s "Failure semantics & degradation
ladder".

Entry points: ``repro.engine.evaluate(..., engine="parallel",
workers=N)``, ``run_sql(..., engine="parallel")``, the CLI's
``--engine parallel --workers N`` / ``:engine parallel``.
"""

from repro.engine.parallel.exchange import (
    Exchange, Gather, ParallelConfig, Partition,
)
from repro.engine.parallel.governor import (
    SharedBudget, WorkerGovernor, merge_worker_steps, presplit_limits,
    presplit_spec,
)
from repro.engine.parallel.partition import (
    PARTITION_COMPAT, LeafSpec, ParallelPolicy, ParallelSegment,
    compile_parallel_segment, execute_program, merge_counts,
    split_counts,
)
from repro.engine.resilience import LADDER, ResilienceConfig

__all__ = [
    "PARTITION_COMPAT", "ParallelPolicy", "ParallelSegment", "LeafSpec",
    "ParallelConfig", "Partition", "Exchange", "Gather",
    "SharedBudget", "WorkerGovernor", "presplit_limits",
    "presplit_spec", "merge_worker_steps", "compile_parallel_segment",
    "execute_program", "split_counts", "merge_counts",
    "ResilienceConfig", "LADDER",
]
