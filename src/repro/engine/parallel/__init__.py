"""Morsel-driven parallel execution for the physical engine.

Three layers (see ``docs/parallel.md`` for the full story):

* :mod:`~repro.engine.parallel.partition` — hash partitioning of
  multiplicity streams, the partition-compatibility table, the
  closure-free *segment programs* shipped to workers, and the
  worker-resident compiled-segment cache (each worker compiles a
  segment once per plan tag and reuses the closure across morsels);
* :mod:`~repro.engine.parallel.codec` — the columnar shard codec
  (value column + count column, interned atoms) used to ship morsels
  to process-pool workers instead of pickled count dicts;
* :mod:`~repro.engine.parallel.exchange` — the
  Partition/Exchange/Gather physical nodes and the thread/process
  worker pools with ordered merge and fail-fast errors;
* :mod:`~repro.engine.parallel.governor` — budget splitting so a
  parallel run honours the same :class:`~repro.guard.Limits` as a
  serial one (shared step pool, inherited deadline, linked
  cancellation, per-worker stats merge).

Fault tolerance is opt-in via
:class:`~repro.engine.resilience.ResilienceConfig` (per-morsel retry,
process-pool respawn, the process → thread → serial degradation
ladder); see ``docs/parallel.md``'s "Failure semantics & degradation
ladder".

Entry points: ``repro.engine.evaluate(..., engine="parallel",
workers=N)``, ``run_sql(..., engine="parallel")``, the CLI's
``--engine parallel --workers N`` / ``:engine parallel``.
"""

from repro.engine.parallel.codec import decode_shard, encode_shard
from repro.engine.parallel.exchange import (
    Exchange, Gather, ParallelConfig, Partition, adaptive_shards,
)
from repro.engine.parallel.governor import (
    SharedBudget, WorkerGovernor, merge_worker_steps, presplit_limits,
    presplit_spec,
)
from repro.engine.parallel.partition import (
    PARTITION_COMPAT, LeafSpec, ParallelPolicy, ParallelSegment,
    clear_segment_cache, compile_parallel_segment,
    compiled_segment_for, execute_program, merge_counts,
    segment_cache_len, split_counts,
)
from repro.engine.resilience import LADDER, ResilienceConfig

__all__ = [
    "PARTITION_COMPAT", "ParallelPolicy", "ParallelSegment", "LeafSpec",
    "ParallelConfig", "Partition", "Exchange", "Gather",
    "adaptive_shards",
    "SharedBudget", "WorkerGovernor", "presplit_limits",
    "presplit_spec", "merge_worker_steps", "compile_parallel_segment",
    "compiled_segment_for", "clear_segment_cache", "segment_cache_len",
    "execute_program", "split_counts", "merge_counts",
    "encode_shard", "decode_shard",
    "ResilienceConfig", "LADDER",
]
