"""Cross-worker resource governance.

A parallel exchange must not weaken PR 1's guarantees: a query with
``max_steps=N`` may do at most ~N governed steps *in total*, not N per
worker, and a deadline or cancellation must stop every worker inside
one morsel, not just the one that noticed.  Three pieces make that
hold:

* :class:`SharedBudget` — the parent's remaining step budget as a
  lock-protected counter.  Workers draw fixed-size *slices* from it
  and count the slice down locally, so the lock is touched once per
  slice (every :data:`SLICE` ticks), not once per tick.  When the pool
  runs dry the worker that failed to acquire raises the same
  :class:`~repro.core.errors.BudgetExceeded` the serial engine would.
* :class:`LinkedToken` — a cancellation token that also observes the
  parent's token, so user cancellation (or fail-fast after another
  worker's error) reaches every worker at its next tick.
* :class:`WorkerGovernor` — a :class:`~repro.guard.ResourceGovernor`
  whose step accounting goes through the shared budget and whose
  deadline is the *parent's* deadline (workers inherit the absolute
  deadline rather than restarting the clock).

Fault injection stays parent-side: deterministic fault schedules are
keyed on the serial step counter, which has no stable meaning across
a nondeterministic worker interleaving.

The process backend cannot share a lock, so it *pre-splits*: each
task's governor gets ``remaining // tasks`` steps and the remaining
wall-clock as its timeout (:func:`presplit_limits`).  That is stricter
than the thread backend's work-stealing slices — a morsel cannot
borrow unused budget from an idle sibling — which is part of the
thread-vs-process tradeoff documented in ``docs/parallel.md``.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.core.errors import BudgetExceeded
from repro.guard import CancellationToken, Limits, ResourceGovernor

__all__ = [
    "SLICE", "SharedBudget", "LinkedToken", "WorkerGovernor",
    "presplit_limits", "presplit_spec", "merge_worker_steps",
]

#: Steps a worker draws from the shared budget at a time.  Small
#: enough that a worker cannot overshoot the global budget by more
#: than ``workers * SLICE``; large enough that the lock is cold.
SLICE = 64


class SharedBudget:
    """An atomic pool of governed steps shared by all workers.

    ``acquire(want)`` hands out up to ``want`` steps (less when the
    pool is nearly dry, 0 when empty); ``refund(unused)`` returns a
    finished worker's untouched remainder so trailing morsels can use
    it.  ``spilled()`` reports total steps actually drawn, which the
    exchange adds back into the parent governor's counter so serial
    and parallel runs agree on ``steps`` within one slice per worker.
    """

    __slots__ = ("_lock", "_remaining", "_drawn")

    def __init__(self, total: Optional[int]):
        self._lock = threading.Lock()
        self._remaining = total  # None = unlimited
        self._drawn = 0

    def acquire(self, want: int = SLICE) -> int:
        with self._lock:
            if self._remaining is None:
                self._drawn += want
                return want
            granted = min(want, self._remaining)
            self._remaining -= granted
            self._drawn += granted
            return granted

    def refund(self, unused: int) -> None:
        if unused <= 0:
            return
        with self._lock:
            self._drawn -= unused
            if self._remaining is not None:
                self._remaining += unused

    def spilled(self) -> int:
        with self._lock:
            return self._drawn


class LinkedToken(CancellationToken):
    """A token that is cancelled when either it or its parent is."""

    __slots__ = ("_parent", "_reason")

    def __init__(self, parent: CancellationToken):
        self._parent = parent
        super().__init__()

    @property
    def cancelled(self) -> bool:
        return self._cancelled or self._parent.cancelled

    @property
    def reason(self) -> Optional[str]:  # type: ignore[override]
        return self._reason if self._cancelled else self._parent.reason

    @reason.setter
    def reason(self, value: Optional[str]) -> None:
        self._reason = value


class WorkerGovernor(ResourceGovernor):
    """Per-worker governor drawing steps from a :class:`SharedBudget`.

    The inherited fast-path checks (deadline, cancellation, size) run
    unchanged; only the step budget is rerouted: ``max_steps`` is the
    locally-held slice, topped up from the shared pool whenever it
    runs out.  The parent's ``max_steps`` ceases to bind locally — the
    pool is the single source of truth.
    """

    __slots__ = ("shared", "_slice_left")

    def __init__(self, parent: ResourceGovernor, shared: SharedBudget):
        parent.ensure_started()
        remaining = parent.remaining_time()
        super().__init__(
            max_size=parent.max_size,
            powerset_budget=parent.powerset_budget,
            # the parent deadline, expressed as this governor's timeout
            timeout=remaining if remaining is not None else None,
            max_depth=parent.max_depth,
            token=LinkedToken(parent.token),
            clock=parent.clock,
        )
        self.shared = shared
        self._slice_left = 0
        self.start()

    def tick(self, stats=None) -> None:
        if self._slice_left <= 0:
            granted = self.shared.acquire(SLICE)
            if granted <= 0:
                raise BudgetExceeded(
                    "step budget exhausted across parallel workers",
                    stats=stats, budget="steps",
                    limit=self.shared.spilled(),
                    observed=self.shared.spilled() + 1)
            self._slice_left = granted
        self._slice_left -= 1
        super().tick(stats)

    def close(self) -> None:
        """Refund the untouched tail of the current slice."""
        self.shared.refund(self._slice_left)
        self._slice_left = 0


def presplit_limits(parent: ResourceGovernor, tasks: int) -> Limits:
    """Static per-task limits for the process backend.

    Steps are divided evenly across outstanding tasks; the deadline is
    passed through as remaining wall-clock so a child armed "now"
    expires with the parent.  Sizes and powerset budgets are per
    intermediate result, hence inherited unchanged.
    """
    parent.ensure_started()
    max_steps = None
    if parent.max_steps is not None:
        remaining = max(0, parent.max_steps - parent.steps)
        max_steps = max(1, remaining // max(1, tasks))
    remaining_time = parent.remaining_time()
    timeout = None
    if remaining_time is not None:
        timeout = max(0.0, remaining_time)
    return Limits(max_steps=max_steps, max_size=parent.max_size,
                  powerset_budget=parent.powerset_budget,
                  timeout=timeout, max_depth=parent.max_depth)


def presplit_spec(parent: Optional[ResourceGovernor],
                  tasks: int) -> Optional[dict]:
    """:func:`presplit_limits` as a picklable keyword dict — the form
    shipped inside process-pool task payloads.  Computed *once* per
    exchange and reused verbatim when a morsel is retried or a pool is
    respawned: a retry runs under exactly the limits its first attempt
    had, so accounting stays deterministic across recovery paths."""
    if parent is None:
        return None
    limits = presplit_limits(parent, tasks)
    return {
        "max_steps": limits.max_steps, "max_size": limits.max_size,
        "powerset_budget": limits.powerset_budget,
        "timeout": limits.timeout, "max_depth": limits.max_depth,
    }


def merge_worker_steps(parent: ResourceGovernor,
                       worker_steps: List[int]) -> None:
    """Fold per-worker step counts back into the parent.

    After a gather the parent's counter reflects all parallel work, so
    downstream serial operators (and error messages) see the same
    accounting a serial run would.  The merged total is then checked
    against the parent's own budget — a pre-split process run that
    collectively overshot surfaces here.
    """
    parent.ensure_started()
    parent.steps += sum(worker_steps)
    if (parent.max_steps is not None
            and parent.steps > parent.max_steps):
        raise BudgetExceeded(
            f"step budget exhausted after {parent.max_steps} governed "
            "steps (parallel gather)", budget="steps",
            limit=parent.max_steps, observed=parent.steps)
