"""Morsel-driven exchange: worker pools over hash-partitioned shards.

The parallelism pass (:mod:`repro.engine.lower`) rewrites an eligible
subtree into::

    Gather
      Exchange  <segment program>
        Partition key=(i,)   <leaf plan>
        Partition key=(j,)   <leaf plan>

:class:`Partition` materialises one leaf serially (the leaf plan is an
arbitrary physical plan — it may itself contain joins, oracles, or
powersets) and declares the partition key its slot must be sharded on.
:class:`Exchange` splits every input into ``workers x morsel_factor``
shards, runs the segment program shard-by-shard on a
``concurrent.futures`` pool, and sum-merges the shard results *in
shard order* — the merge is deterministic regardless of completion
order.  :class:`Gather` is the explicit barrier marker above the
exchange (it is where value-disjointness ends and serial execution
resumes).

Morsels: over-partitioning by ``morsel_factor`` (default 2) gives the
pool more tasks than workers, so a skewed shard does not leave the
other workers idle — the classic morsel-driven load-balancing shape.
The shard count additionally adapts downward to the input cardinality
(:func:`adaptive_shards`): a morsel below ~``MORSEL_MIN_ROWS``
distinct rows costs more in dispatch than it saves in parallelism, so
small inputs get fewer, bigger morsels (down to one).

Columnar morsels: under the process backend each shard crosses the
process boundary as a codec blob
(:mod:`repro.engine.parallel.codec` — interned atoms, value array +
count array) instead of a pickled dict, in both directions; the bytes
actually shipped are counted in ``EngineStats.bytes_shipped``.
Workers execute the declarative segment program through a
process-local compiled-segment cache
(:func:`~repro.engine.parallel.partition.compiled_segment_for`), so a
worker compiles each distinct ``(pass tag, program)`` once and every
later morsel reuses the resident closures.

Error handling is fail-fast by default: the first worker failure
cancels the shared fail-fast token (thread backend), so sibling
workers stop at their next governor tick; queued morsels are cancelled
outright.  A governed failure in any worker surfaces as the same
:class:`~repro.core.errors.GovernedError` subclass a serial run would
raise.  Non-``Cancelled`` errors win over the secondary ``Cancelled``
errors they provoke.

With a :class:`~repro.engine.resilience.ResilienceConfig` attached to
the :class:`ParallelConfig`, *transient* failures stop being fatal:
crashed morsels are retried from their immutable input shards,
a broken process pool is respawned once (rescheduling only the
unfinished shards), and when recovery is exhausted the exchange
descends the degradation ladder — process → thread → serial — with
every demotion recorded in :class:`~repro.engine.physical.EngineStats`.
Governed errors keep the fail-fast contract either way: budgets are
deterministic verdicts, not infrastructure noise.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import Cancelled
from repro.engine.parallel.codec import decode_shard, encode_shard
from repro.engine.parallel.governor import (
    SharedBudget, WorkerGovernor, merge_worker_steps, presplit_spec,
)
from repro.engine.parallel.partition import (
    counts_size, execute_program, merge_counts, split_counts,
)
from repro.engine.physical import EngineStats, PhysicalNode
from repro.engine.resilience import (
    ResilienceConfig, is_transient_fault, next_rung,
)
from repro.guard import Limits, ResourceGovernor
from repro.guard.retry import classify_governed_error

__all__ = ["ParallelConfig", "Partition", "Exchange", "Gather",
           "adaptive_shards"]

#: Default shards-per-worker over-partitioning factor.  2, not 4: a
#: compiled columnar step costs microseconds per morsel, so dispatch
#: overhead — not load imbalance — dominates at high shard counts.
MORSEL_FACTOR = 2

#: Target minimum distinct rows per morsel; inputs smaller than
#: ``num_shards * MORSEL_MIN_ROWS`` get proportionally fewer shards.
MORSEL_MIN_ROWS = 512


@dataclass(frozen=True)
class ParallelConfig:
    """Run-time parallel execution settings (plan-independent).

    ``backend`` is ``"thread"`` (default: shared-memory shards, a
    work-stealing shared step budget, cross-worker cancellation within
    one morsel) or ``"process"`` (true multi-core for the pure-Python
    kernels; budgets are pre-split per task and cancellation stops at
    morsel granularity — see ``docs/parallel.md``).

    ``resilience`` (a :class:`~repro.engine.resilience.
    ResilienceConfig`, or ``None``) opts the exchange into per-morsel
    retry, pool respawn, and the degradation ladder; ``None`` keeps
    the original fail-fast scheduler.

    ``min_morsel_rows`` is the adaptive-granularity floor (see
    :func:`adaptive_shards`); ``1`` splits as finely as the input
    cardinality allows, up to ``workers x morsel_factor`` shards —
    the differential harness uses that to fuzz the multi-shard merge
    on tiny bags.
    """

    workers: int = 2
    backend: str = "thread"
    morsel_factor: int = MORSEL_FACTOR
    resilience: Optional[ResilienceConfig] = None
    min_morsel_rows: int = MORSEL_MIN_ROWS

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"unknown parallel backend "
                             f"{self.backend!r} (thread | process)")

    @property
    def num_shards(self) -> int:
        return self.workers * self.morsel_factor


def adaptive_shards(config: ParallelConfig,
                    inputs: Sequence[Dict[Any, int]]) -> int:
    """Shard count adapted to the exchange's input cardinality.

    ``workers x morsel_factor`` is the ceiling (enough morsels to
    steal work across skewed shards); below it the count shrinks so
    every morsel routes at least ~:data:`MORSEL_MIN_ROWS` distinct
    rows — per-morsel dispatch (task submit, governor arming, and
    under the process backend codec + IPC) is a fixed cost, so tiny
    morsels make parallelism a net loss.  One shard means the segment
    still runs on the pool (same code path, same governance) but
    without splitting overhead.
    """
    total = sum(len(counts) for counts in inputs)
    if total <= 0:
        return 1
    floor = max(1, config.min_morsel_rows)
    by_rows = -(-total // floor)  # ceil division
    return max(1, min(config.num_shards, by_rows))


class Partition(PhysicalNode):
    """Declares the partition key for one exchange input slot.

    Execution is a serial passthrough — the actual sharding happens in
    the parent :class:`Exchange`, which needs the materialised dict
    anyway.  The node exists so ``:explain`` shows where the plan
    partitions and on what key.
    """

    __slots__ = ("child", "key")
    kernel = "partition"

    def __init__(self, child: PhysicalNode,
                 key: Optional[Tuple[int, ...]] = None, estimated=None):
        super().__init__(estimated)
        self.child = child
        self.key = key

    def children(self):
        return (self.child,)

    def _rows(self, ctx):
        return self.child.rows(ctx)

    def label(self):
        shown = "value" if self.key is None else list(self.key)
        return super().label() + f"  key={shown}"


class Exchange(PhysicalNode):
    """Run a shard-local segment program on a worker pool.

    ``partitions`` feed the program's input slots in order;
    ``program`` is the closure-free step list of
    :func:`repro.engine.parallel.partition.execute_program`.  Without a
    :class:`ParallelConfig` on the context (``ctx.parallel is None``)
    the program runs inline on a single unsplit shard — byte-identical
    to the parallel result, which keeps cached parallel plans usable
    from serial entry points.
    """

    __slots__ = ("partitions", "program", "tag")
    kernel = "exchange"

    def __init__(self, partitions: Sequence[Partition],
                 program: Tuple[Tuple, ...], estimated=None,
                 tag: Optional[Tuple] = None):
        super().__init__(estimated)
        self.partitions = tuple(partitions)
        self.program = program
        #: The planner's ``PassConfig.cache_tag()`` (or ``None``):
        #: half of the worker-local compiled-segment cache key, so a
        #: pass-config change invalidates resident segments.
        self.tag = tag

    def children(self):
        return self.partitions

    def label(self):
        steps = ",".join(step[0] for step in self.program)
        return super().label() + f"  program=[{steps}]"

    # -- execution --------------------------------------------------------

    def _rows(self, ctx):
        inputs = [ctx.collect(part) for part in self.partitions]
        config = getattr(ctx, "parallel", None)
        sr = getattr(ctx, "semiring", None)
        if config is None:
            merged = execute_program(
                self.program, inputs, tick=self._serial_tick(ctx),
                every=ctx.tick_interval, stats=ctx.stats,
                check_size=self._size_check(ctx), tag=self.tag,
                sr=sr)
        else:
            merged = self._run_sharded(ctx, config, inputs, sr)
        yield from merged.items()

    @staticmethod
    def _serial_tick(ctx):
        return None if ctx.governor is None else ctx.tick

    @staticmethod
    def _size_check(ctx):
        governor = ctx.governor
        if governor is None or governor.max_size is None:
            return None
        evaluator_stats = ctx.evaluator.stats

        def check(size: int) -> None:
            governor.check_size(size, evaluator_stats)

        return check

    def _run_sharded(self, ctx, config: ParallelConfig,
                     inputs: List[Dict[Any, int]],
                     sr=None) -> Dict[Any, int]:
        num_shards = adaptive_shards(config, inputs)
        sharded = [split_counts(counts, num_shards, part.key)
                   for counts, part in zip(inputs, self.partitions)]
        ctx.stats.partitions_created += len(inputs)
        tasks = [(index, [shards[index] for shards in sharded])
                 for index in range(num_shards)
                 if any(shards[index] for shards in sharded)]
        if not tasks:
            return {}
        if config.resilience is not None:
            outcomes = _run_resilient(ctx, config, self.program, tasks,
                                      config.resilience, self.tag, sr)
        elif config.backend == "process":
            outcomes = _run_process_pool(ctx, config, self.program,
                                         tasks, self.tag, sr)
        else:
            outcomes = _run_thread_pool(ctx, config, self.program,
                                        tasks, self.tag, sr)
        ctx.stats.morsels_executed += len(tasks)
        # ordered merge: shard index order, not completion order
        outcomes.sort(key=lambda outcome: outcome[0])
        merged = merge_counts([counts for _, counts, _, _ in outcomes],
                              sr)
        worker_steps = [steps for _, _, steps, _ in outcomes]
        if ctx.governor is not None:
            merge_worker_steps(ctx.governor, worker_steps)
            if ctx.governor.max_size is not None:
                # counts_size walks every merged value, so only pay
                # for it when a size budget can actually trip
                ctx.governor.check_size(counts_size(merged),
                                        ctx.evaluator.stats)
        ctx.stats.worker_steps.extend(worker_steps)
        for _, _, _, stats in outcomes:
            ctx.stats.merge_from(stats)
        return merged


class Gather(PhysicalNode):
    """The barrier above an exchange: counts the gather and resumes
    serial, value-order-free streaming."""

    __slots__ = ("child",)
    kernel = "gather"

    def __init__(self, child: Exchange, estimated=None):
        super().__init__(estimated)
        self.child = child

    def children(self):
        return (self.child,)

    def _rows(self, ctx):
        ctx.stats.gather_barriers += 1
        return self.child.rows(ctx)


# ----------------------------------------------------------------------
# Thread backend
# ----------------------------------------------------------------------

#: Long-lived thread pools shared by every exchange, one per worker
#: count.  Spawning OS threads costs ~10ms apiece on small boxes — a
#: per-exchange pool would dominate sub-50ms queries, so the thread
#: backend keeps its pools resident the same way workers keep their
#: compiled segments.  The resilient thread rung still spawns its own
#: pools: its worker-loss recovery condemns and respawns them.
_THREAD_POOLS: Dict[int, concurrent.futures.ThreadPoolExecutor] = {}
_THREAD_POOLS_LOCK = threading.Lock()


def _thread_pool(workers: int) -> concurrent.futures.ThreadPoolExecutor:
    with _THREAD_POOLS_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"exchange-{workers}w")
            _THREAD_POOLS[workers] = pool
        return pool


def _run_thread_pool(ctx, config: ParallelConfig, program,
                     tasks: List[Tuple[int, List[Dict[Any, int]]]],
                     tag: Optional[Tuple] = None,
                     sr=None
                     ) -> List[Tuple[int, Dict[Any, int], int,
                                     EngineStats]]:
    parent = ctx.governor
    shared: Optional[SharedBudget] = None
    if parent is not None:
        parent.ensure_started()
        remaining = None
        if parent.max_steps is not None:
            remaining = max(0, parent.max_steps - parent.steps)
        shared = SharedBudget(remaining)

    def run_task(index: int, inputs: List[Dict[Any, int]]):
        stats = EngineStats()
        if parent is None:
            counts = execute_program(program, inputs,
                                     every=ctx.tick_interval,
                                     stats=stats, tag=tag, sr=sr)
            return index, counts, 0, stats
        worker = WorkerGovernor(parent, shared)
        try:
            counts = execute_program(
                program, inputs, tick=worker.tick,
                every=ctx.tick_interval, stats=stats,
                check_size=worker.check_size, tag=tag, sr=sr)
            return index, counts, worker.steps, stats
        finally:
            worker.close()

    outcomes: List[Tuple[int, Dict[Any, int], int, EngineStats]] = []
    first_error: Optional[BaseException] = None
    pool = _thread_pool(config.workers)
    futures = [pool.submit(run_task, index, inputs)
               for index, inputs in tasks]
    # as_completed drains *every* future (cancelled ones included), so
    # no task of this exchange is still running when we return even
    # though the shared pool itself stays alive.
    for future in concurrent.futures.as_completed(futures):
        if future.cancelled():
            # a queued morsel we cancelled after the first
            # failure; .exception() would raise CancelledError
            continue
        error = future.exception()
        if error is None:
            outcomes.append(future.result())
            continue
        first_error = _prefer(first_error, error)
        if parent is not None:
            # fail fast: siblings observe the token at their
            # next governor tick and stop mid-morsel
            parent.token.cancel("parallel worker failed: "
                                f"{type(error).__name__}")
        for pending in futures:
            pending.cancel()
    if first_error is not None:
        _uncancel(ctx, first_error)
        raise first_error
    return outcomes


def _prefer(current: Optional[BaseException],
            candidate: BaseException) -> BaseException:
    """Keep the most informative error: the first non-``Cancelled``
    failure beats the secondary cancellations it caused."""
    if current is None:
        return candidate
    if isinstance(current, Cancelled) and not isinstance(candidate,
                                                        Cancelled):
        return candidate
    return current


def _uncancel(ctx, error: BaseException) -> None:
    """Reset a fail-fast cancellation so the error propagating out of
    the exchange is the worker's own failure, not a sticky token that
    would poison unrelated later evaluations on the same governor."""
    governor = ctx.governor
    if governor is None:
        return
    token = governor.token
    if (token.cancelled and token.reason
            and token.reason.startswith("parallel worker failed")
            and not isinstance(error, Cancelled)):
        token._cancelled = False
        token.reason = None


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------

def _process_task(payload):
    """Top-level worker entry (must be picklable by reference).

    Shard inputs arrive as columnar-codec blobs and the result goes
    back the same way — the payload never carries a pickled value
    dict.  Budgets arrive pre-split
    (:func:`~repro.engine.parallel.governor.presplit_spec`); the
    governor is armed in the child, with the remaining wall-clock as
    its timeout, so absolute deadlines carry across the process
    boundary.  ``chaos``/``attempt`` ride in the payload so injected
    faults fire *inside* the worker — a ``worker-crash`` genuinely
    kills this process.  ``tag`` keys this process's compiled-segment
    cache: the first morsel of a plan compiles, every later one hits.
    ``sr_name`` is the multiplicity semiring's registry name (``None``
    = N): instances are not shipped, the worker resolves the name
    against its own registry.
    """
    (index, program, blobs, limits_spec, every, chaos, attempt,
     tag, sr_name) = payload
    sr = None
    if sr_name is not None:
        from repro.core.semiring import resolve_semiring
        sr = resolve_semiring(sr_name)
    inputs = [decode_shard(blob) for blob in blobs]
    fault = _chaos_hook(chaos, index, attempt, len(program),
                        in_process_worker=True)
    stats = EngineStats()
    if limits_spec is None:
        counts = execute_program(program, inputs, every=every,
                                 stats=stats, fault=fault, tag=tag,
                                 sr=sr)
        return index, encode_shard(counts), 0, stats
    governor = ResourceGovernor(Limits(**limits_spec))
    governor.start()
    counts = execute_program(program, inputs, tick=governor.tick,
                             every=every, stats=stats,
                             check_size=governor.check_size,
                             fault=fault, tag=tag, sr=sr)
    return index, encode_shard(counts), governor.steps, stats


def _process_context():
    """Prefer fork: shard dicts ship without re-hashing surprises and
    the pool starts fast; fall back to the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _encode_task(ctx, inputs: List[Dict[Any, int]]) -> List[bytes]:
    """Codec-encode one task's shard inputs, counting the outbound
    bytes (what actually crosses the process boundary)."""
    blobs = [encode_shard(counts) for counts in inputs]
    ctx.stats.bytes_shipped += sum(len(blob) for blob in blobs)
    return blobs


def _decode_outcome(ctx, outcome) -> Tuple[int, Dict[Any, int], int,
                                           EngineStats]:
    """Decode a worker's result blob, counting the inbound bytes."""
    index, blob, steps, stats = outcome
    ctx.stats.bytes_shipped += len(blob)
    return index, decode_shard(blob), steps, stats


def _run_process_pool(ctx, config: ParallelConfig, program,
                      tasks: List[Tuple[int, List[Dict[Any, int]]]],
                      tag: Optional[Tuple] = None,
                      sr=None
                      ) -> List[Tuple[int, Dict[Any, int], int,
                                      EngineStats]]:
    limits_spec = presplit_spec(ctx.governor, len(tasks))
    sr_name = None if sr is None else sr.name
    payloads = [(index, program, _encode_task(ctx, inputs),
                 limits_spec, ctx.tick_interval, None, 1, tag,
                 sr_name)
                for index, inputs in tasks]
    outcomes: List[Tuple[int, Dict[Any, int], int, EngineStats]] = []
    first_error: Optional[BaseException] = None
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=config.workers,
            mp_context=_process_context()) as pool:
        futures = [pool.submit(_process_task, payload)
                   for payload in payloads]
        for future in concurrent.futures.as_completed(futures):
            if future.cancelled():
                continue
            error = future.exception()
            if error is None:
                outcomes.append(_decode_outcome(ctx, future.result()))
                continue
            first_error = _prefer(first_error, error)
            for pending in futures:
                pending.cancel()
    if first_error is not None:
        raise first_error
    return outcomes


# ----------------------------------------------------------------------
# Resilient scheduling: retry, respawn, degradation ladder
# ----------------------------------------------------------------------

class _LadderFault(Exception):
    """Internal: a rung of the ladder gave up on some shards.

    Carries the outcomes the rung *did* finish (their results are
    kept — shards are value-disjoint, so partial progress composes)
    and the unfinished tasks for the next rung.
    """

    def __init__(self, error: BaseException, outcomes, remaining,
                 reason: str):
        super().__init__(reason)
        self.error = error
        self.outcomes = outcomes
        self.remaining = remaining
        self.reason = reason


def _chaos_hook(chaos, shard: int, attempt: int, num_steps: int, *,
                in_process_worker: bool):
    """Bind one (shard, attempt) execution to its chaos decision.

    Returns ``None`` (no fault this attempt) or a per-step callable
    for :func:`execute_program`'s ``fault`` hook that detonates at the
    seeded step index."""
    if chaos is None:
        return None
    target = chaos.fire_at(shard, attempt, num_steps)
    if target is None:
        return None

    def fault(step_index: int) -> None:
        if step_index == target:
            chaos.fire(shard, attempt,
                       in_process_worker=in_process_worker)

    return fault


def _fault_reason(error: BaseException, attempts: int) -> str:
    return (f"{classify_governed_error(error)} "
            f"({type(error).__name__}) after {attempts} attempt(s)")


def _run_resilient(ctx, config: ParallelConfig, program,
                   tasks: List[Tuple[int, List[Dict[Any, int]]]],
                   res: ResilienceConfig,
                   tag: Optional[Tuple] = None,
                   sr=None
                   ) -> List[Tuple[int, Dict[Any, int], int,
                                   EngineStats]]:
    """Run the shard tasks with retry/respawn, descending the
    degradation ladder on repeated transient failure.

    Completed shard outcomes survive a demotion — only the unfinished
    tasks are re-run on the lower rung.  Governed errors (and genuine
    bugs) are *not* caught here: they propagate fail-fast exactly as
    the non-resilient scheduler would raise them.
    """
    rng = random.Random(res.seed)
    mode = config.backend
    remaining = list(tasks)
    outcomes: List[Tuple[int, Dict[Any, int], int, EngineStats]] = []
    demotions = 0
    while True:
        try:
            if mode == "serial":
                chunk = _run_serial_inline(ctx, program, remaining,
                                           tag, sr)
            elif mode == "process":
                chunk = _run_process_pool_resilient(
                    ctx, config, program, remaining, res, rng, tag,
                    sr)
            else:
                chunk = _run_thread_pool_resilient(
                    ctx, config, program, remaining, res, rng, tag,
                    sr)
            outcomes.extend(chunk)
            return outcomes
        except _LadderFault as fault:
            outcomes.extend(fault.outcomes)
            rung = next_rung(mode)
            if rung is None or demotions >= res.max_demotions:
                raise fault.error
            demotions += 1
            ctx.stats.demotions.append(f"{mode}->{rung}: "
                                       f"{fault.reason}")
            mode = rung
            remaining = fault.remaining


def _run_serial_inline(ctx, program,
                       tasks: List[Tuple[int, List[Dict[Any, int]]]],
                       tag: Optional[Tuple] = None,
                       sr=None
                       ) -> List[Tuple[int, Dict[Any, int], int,
                                       EngineStats]]:
    """The ladder floor: run the remaining shards inline under the
    parent governor.  No workers → no worker loss; chaos plans target
    workers, so they never fire here and termination is guaranteed
    (governed verdicts aside)."""
    tick = None if ctx.governor is None else ctx.tick
    check = Exchange._size_check(ctx)
    outcomes = []
    for index, inputs in tasks:
        stats = EngineStats()
        counts = execute_program(program, inputs, tick=tick,
                                 every=ctx.tick_interval, stats=stats,
                                 check_size=check, tag=tag, sr=sr)
        # steps were ticked straight into the parent governor
        outcomes.append((index, counts, 0, stats))
    return outcomes


def _run_thread_pool_resilient(
        ctx, config: ParallelConfig, program,
        tasks: List[Tuple[int, List[Dict[Any, int]]]],
        res: ResilienceConfig, rng: random.Random,
        tag: Optional[Tuple] = None, sr=None
) -> List[Tuple[int, Dict[Any, int], int, EngineStats]]:
    """The thread rung: fail-fast semantics for governed errors, plus
    per-morsel retry for transient faults.

    Each morsel gets ``res.retry.attempts`` tries (with seeded
    backoff/jitter); resubmission lands on whichever worker is free —
    "a new worker" in the thread sense.  When one morsel exhausts its
    retries the rung stops retrying, drains in-flight work (keeping
    every completed result), and raises :class:`_LadderFault` with
    the unfinished tasks.
    """
    parent = ctx.governor
    shared: Optional[SharedBudget] = None
    if parent is not None:
        parent.ensure_started()
        remaining_steps = None
        if parent.max_steps is not None:
            remaining_steps = max(0, parent.max_steps - parent.steps)
        shared = SharedBudget(remaining_steps)
    chaos = res.chaos

    def run_task(index: int, inputs: List[Dict[Any, int]],
                 attempt: int):
        fault = _chaos_hook(chaos, index, attempt, len(program),
                            in_process_worker=False)
        stats = EngineStats()
        if parent is None:
            counts = execute_program(program, inputs,
                                     every=ctx.tick_interval,
                                     stats=stats, fault=fault,
                                     tag=tag, sr=sr)
            return index, counts, 0, stats
        worker = WorkerGovernor(parent, shared)
        try:
            counts = execute_program(
                program, inputs, tick=worker.tick,
                every=ctx.tick_interval, stats=stats,
                check_size=worker.check_size, fault=fault, tag=tag,
                sr=sr)
            return index, counts, worker.steps, stats
        finally:
            worker.close()

    inputs_of = dict(tasks)
    outcomes: List[Tuple[int, Dict[Any, int], int, EngineStats]] = []
    unfinished = {index for index, _ in tasks}
    first_error: Optional[BaseException] = None
    exhausted: Optional[BaseException] = None
    exhausted_attempts = 0
    with concurrent.futures.ThreadPoolExecutor(
            max_workers=config.workers) as pool:
        pending = {pool.submit(run_task, index, inputs, 1):
                   (index, 1) for index, inputs in tasks}
        while pending:
            done, _ = concurrent.futures.wait(
                pending, return_when=FIRST_COMPLETED)
            for future in done:
                index, attempt = pending.pop(future)
                if future.cancelled():
                    continue
                error = future.exception()
                if error is None:
                    outcomes.append(future.result())
                    unfinished.discard(index)
                    continue
                if is_transient_fault(error):
                    if (first_error is None and exhausted is None
                            and attempt < res.retry.attempts):
                        delay = res.retry.delay_for(attempt, rng)
                        if delay > 0:
                            time.sleep(delay)
                        ctx.stats.morsel_retries += 1
                        handle = pool.submit(run_task, index,
                                             inputs_of[index],
                                             attempt + 1)
                        pending[handle] = (index, attempt + 1)
                    elif exhausted is None and first_error is None:
                        # retries dry: stop feeding this rung, keep
                        # draining so in-flight results are not lost
                        exhausted = error
                        exhausted_attempts = attempt
                        for other in pending:
                            other.cancel()
                    continue
                # governed error or genuine bug: original fail-fast
                first_error = _prefer(first_error, error)
                if parent is not None:
                    parent.token.cancel("parallel worker failed: "
                                        f"{type(error).__name__}")
                for other in pending:
                    other.cancel()
    if first_error is not None:
        _uncancel(ctx, first_error)
        raise first_error
    if exhausted is not None:
        left = [(index, inputs_of[index])
                for index in sorted(unfinished)]
        raise _LadderFault(exhausted, outcomes, left,
                           _fault_reason(exhausted,
                                         exhausted_attempts))
    return outcomes


def _run_process_pool_resilient(
        ctx, config: ParallelConfig, program,
        tasks: List[Tuple[int, List[Dict[Any, int]]]],
        res: ResilienceConfig, rng: random.Random,
        tag: Optional[Tuple] = None, sr=None
) -> List[Tuple[int, Dict[Any, int], int, EngineStats]]:
    """The process rung: per-morsel retry plus worker-loss recovery.

    A :class:`WorkerCrash` pickled back from a child retries just that
    morsel in the still-healthy pool.  A dead child condemns the whole
    ``ProcessPoolExecutor`` (``BrokenExecutor``): the pool is rebuilt
    once (``res.respawn_pool``) and only the unfinished shards are
    resubmitted — completed results are kept, and the pre-split limits
    are reused verbatim so a retried shard runs under exactly the
    budget its first attempt had.
    """
    limits_spec = presplit_spec(ctx.governor, len(tasks))
    chaos = res.chaos
    sr_name = None if sr is None else sr.name
    inputs_of = dict(tasks)
    attempts = {index: 1 for index, _ in tasks}
    unfinished = {index for index, _ in tasks}
    outcomes: List[Tuple[int, Dict[Any, int], int, EngineStats]] = []
    respawns_left = 1 if res.respawn_pool else 0
    blobs_of: Dict[int, List[bytes]] = {}

    def payload_for(index: int):
        # encode once per shard (the blob is immutable, like the shard
        # dict it encodes) but count bytes per submission — a retried
        # or respawned morsel crosses the boundary again
        blobs = blobs_of.get(index)
        if blobs is None:
            blobs = [encode_shard(counts)
                     for counts in inputs_of[index]]
            blobs_of[index] = blobs
        ctx.stats.bytes_shipped += sum(len(blob) for blob in blobs)
        return (index, program, blobs, limits_spec,
                ctx.tick_interval, chaos, attempts[index], tag,
                sr_name)

    while unfinished:
        broken: Optional[BaseException] = None
        first_error: Optional[BaseException] = None
        exhausted: Optional[BaseException] = None
        exhausted_attempts = 0
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=config.workers,
                mp_context=_process_context()) as pool:
            pending = {pool.submit(_process_task, payload_for(index)):
                       index for index in sorted(unfinished)}
            while pending:
                done, _ = concurrent.futures.wait(
                    pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    if future.cancelled():
                        continue
                    error = future.exception()
                    if error is None:
                        outcomes.append(
                            _decode_outcome(ctx, future.result()))
                        unfinished.discard(index)
                        continue
                    if isinstance(error, BrokenExecutor):
                        # the pool is condemned: every sibling future
                        # fails the same way; stop consuming them
                        broken = error
                        break
                    if is_transient_fault(error):
                        attempt = attempts[index]
                        if (first_error is None and exhausted is None
                                and attempt < res.retry.attempts):
                            delay = res.retry.delay_for(attempt, rng)
                            if delay > 0:
                                time.sleep(delay)
                            attempts[index] = attempt + 1
                            ctx.stats.morsel_retries += 1
                            handle = pool.submit(_process_task,
                                                 payload_for(index))
                            pending[handle] = index
                        elif exhausted is None and first_error is None:
                            exhausted = error
                            exhausted_attempts = attempt
                            for other in pending:
                                other.cancel()
                        continue
                    # governed error or genuine bug: fail fast
                    first_error = _prefer(first_error, error)
                    for other in pending:
                        other.cancel()
                if broken is not None:
                    break
        if first_error is not None:
            raise first_error
        if broken is not None:
            if respawns_left > 0:
                respawns_left -= 1
                ctx.stats.pool_respawns += 1
                # the crashing shard is indistinguishable from its
                # cancelled siblings, so every unfinished shard's
                # attempt advances — chaos re-rolls for all of them
                for index in unfinished:
                    attempts[index] = attempts[index] + 1
                continue
            left = [(index, inputs_of[index])
                    for index in sorted(unfinished)]
            raise _LadderFault(broken, outcomes, left,
                               "worker-lost (pool broke after "
                               "respawn)")
        if exhausted is not None:
            left = [(index, inputs_of[index])
                    for index in sorted(unfinished)]
            raise _LadderFault(exhausted, outcomes, left,
                               _fault_reason(exhausted,
                                             exhausted_attempts))
    return outcomes
