"""Bounded LRU plan cache keyed on canonicalized expression hashes.

Lowering is cheap next to evaluation, but a production front end (the
SQL layer, the CLI, a service loop) sends the *same* queries over and
over; caching the physical plan makes the repeated case allocation-free
up to execution.  Two layers of reuse:

* **across runs** — :class:`PlanCache`, an LRU of
  :class:`~repro.engine.lower.PhysicalPlan` objects keyed on the
  *canonical key* of the expression (structural, with commutative
  operands sorted so ``A n B`` and ``B n A`` share a plan) plus the
  arity signature of the free relations (join fusion bakes attribute
  positions into the plan, so a schema change must miss);
* **within a run** — the lowering pass's
  :class:`~repro.engine.physical.SharedScan` nodes materialise each
  repeated subexpression once per execution; the per-run memo lives in
  the :class:`~repro.engine.physical.ExecContext`, so cached plans
  never leak data between databases.

Plans hold no data, only structure and compiled closures, which is what
makes sharing them across databases of the same schema safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Tuple

from repro.core.expr import (
    AdditiveUnion, Expr, Intersection, MaxUnion,
)
from repro.engine.lower import PhysicalPlan

__all__ = ["CacheStats", "PlanCache", "canonical_key"]

#: Commutative binary operators whose operands the canonical key sorts.
_COMMUTATIVE = (AdditiveUnion, MaxUnion, Intersection)


def canonical_key(expr: Expr) -> Hashable:
    """A canonicalized structural key for an expression.

    Commutative operands are sorted by their repr — at *every* depth,
    not only the root — so the two operand orders of ``(+)``, ``u``,
    and ``n`` hash to the same plan: a cached plan for one order
    computes the same bag for the other.  Non-commutative nodes key on
    their type plus the canonical keys of their slots, so order
    differences buried under a ``Dedup`` or a ``Map`` still collapse.
    """
    if isinstance(expr, _COMMUTATIVE):
        left = canonical_key(expr.left)
        right = canonical_key(expr.right)
        if repr(right) < repr(left):
            left, right = right, left
        return (type(expr).__name__, left, right)
    if isinstance(expr, Expr):
        parts = [type(expr).__name__]
        for slot in _slots_of(type(expr)):
            parts.append(_value_key(getattr(expr, slot)))
        return tuple(parts)
    return expr


def _slots_of(cls) -> Tuple[str, ...]:
    slots = []
    for base in reversed(cls.__mro__):
        slots.extend(getattr(base, "__slots__", ()))
    return tuple(slots)


def _value_key(value) -> Hashable:
    if isinstance(value, Expr):
        return canonical_key(value)
    if isinstance(value, (tuple, list)):
        return tuple(_value_key(item) for item in value)
    return value


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded LRU mapping canonical keys to physical plans."""

    __slots__ = ("capacity", "stats", "_plans")

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._plans: "OrderedDict[Hashable, PhysicalPlan]" = OrderedDict()

    @staticmethod
    def key_for(expr: Expr,
                arities: Optional[Mapping[str, int]] = None,
                tag: Hashable = None) -> Hashable:
        """Cache key: canonical expression key + arity signature.

        ``tag`` distinguishes plans built under different lowering
        policies (the parallelism pass bakes Exchange nodes into the
        plan, so a serial and a parallel plan for the same expression
        must not share a slot).
        """
        signature: Tuple = ()
        if arities:
            signature = tuple(sorted(arities.items()))
        return (canonical_key(expr), signature, tag)

    def get(self, key: Hashable) -> Optional[PhysicalPlan]:
        plan = self._plans.get(key)
        if plan is None:
            self.stats.misses += 1
            return None
        self._plans.move_to_end(key)
        self.stats.hits += 1
        return plan

    def put(self, key: Hashable, plan: PhysicalPlan) -> None:
        if key in self._plans:
            self._plans.move_to_end(key)
        self._plans[key] = plan
        if len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._plans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlanCache({len(self._plans)}/{self.capacity}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")
