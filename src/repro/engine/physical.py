"""Physical plan IR: pipelined operator nodes over multiplicity streams.

A physical plan is a tree of :class:`PhysicalNode` objects produced by
the lowering pass (:mod:`repro.engine.lower`).  Execution is a pull
model: every node exposes :meth:`PhysicalNode.rows`, a generator of
``(value, multiplicity)`` pairs in which the same value may appear more
than once — downstream consumers and the final materialisation sum the
counts.  Streaming nodes (map, select, scale, dedup, flatten) never
materialise their input; hash nodes materialise exactly the sides the
kernel needs (:mod:`repro.engine.kernels`).

Governance: the :class:`ExecContext` carries the run's
:class:`~repro.guard.ResourceGovernor`.  Each node ticks the governor
once when it starts producing and once every ``_TICK_EVERY`` emitted
rows, and every materialisation point (hash builds, shared
intermediates, the sealed result) enforces the intermediate-size
budget — so step budgets, deadlines, cancellation, and injected faults
apply to engine execution exactly as they do to the tree walker.

Every node records the number of rows it emitted during the last
execution (``actual_rows``) next to the lowering-time estimate
(``estimated``); ``:explain`` in the CLI prints both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple,
)

from repro.core.bag import Bag
from repro.core.database import encoding_size
from repro.core.errors import UnboundVariableError
from repro.engine import kernels
from repro.planner.stats import BagStats

__all__ = [
    "EngineStats", "ExecContext", "PhysicalNode",
    "ScanBag", "ConstSource", "OracleEval", "SharedScan",
    "HashUnion", "HashDifference", "HashIntersect", "HashMaxUnion",
    "HashDedup", "HashJoin", "NestedLoopProduct",
    "StreamingMap", "StreamingSelect", "MultiplicityScale",
    "FlattenBags", "NestBuild", "UnnestExpand", "PowersetExpand",
    "render_plan",
]

#: Governor tick granularity: one governed step per this many rows.
_TICK_EVERY = 128


@dataclass
class EngineStats:
    """Counters describing one or more engine runs."""

    #: kernel name -> number of node executions that used it.
    kernel_counts: Dict[str, int] = field(default_factory=dict)
    #: Total rows emitted across all nodes (before count-merging).
    rows_emitted: int = 0
    #: Number of expressions lowered to physical plans.
    lowerings: int = 0
    #: Plan-cache hits / misses observed by the engine entry point.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Shared intermediates materialised / served from the run memo.
    shared_materialized: int = 0
    shared_reused: int = 0
    #: Subtrees delegated to the tree-walking oracle.
    oracle_fallbacks: int = 0
    #: Parallel exchange counters: input slots partitioned, morsels
    #: dispatched to workers, gather barriers crossed, and the
    #: governed step count of each executed morsel (in merge order).
    partitions_created: int = 0
    morsels_executed: int = 0
    gather_barriers: int = 0
    worker_steps: List[int] = field(default_factory=list)
    #: Resilience counters: morsels resubmitted after a transient
    #: fault, process pools respawned after worker loss, and one
    #: human-readable record per degradation-ladder demotion
    #: (``"process->thread: ..."``) — ``:explain`` prints these so a
    #: degraded answer is never silent.
    morsel_retries: int = 0
    pool_respawns: int = 0
    demotions: List[str] = field(default_factory=list)
    #: Columnar-morsel counters: bytes crossing the process boundary
    #: (codec-encoded shards out plus encoded results back; retries
    #: re-count because they re-ship), and worker-local compiled
    #: segment cache hits/misses (a hit means a morsel reused a
    #: resident compiled segment instead of recompiling).
    bytes_shipped: int = 0
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0
    #: Codegen counters: fused-segment executions and barrier-leaf
    #: fallbacks to the stream kernels (``engine=codegen`` only; the
    #: ``:explain`` codegen footer prints both).
    fused_segments: int = 0
    barrier_fallbacks: int = 0
    #: Execution-feedback counters: per-relation total rows observed
    #: by ScanBag nodes and the number of scans that produced them.
    #: Both merge by pointwise sum (associative, parallel-safe); the
    #: honest per-scan observation is their ratio
    #: (:meth:`observed_mean_cardinalities`) — a catalog absorbs that,
    #: not the raw totals, so re-scanned partitions don't inflate it.
    observed_cardinalities: Dict[str, int] = field(default_factory=dict)
    observed_scans: Dict[str, int] = field(default_factory=dict)

    def record_scan(self, name: str, cardinality: int) -> None:
        self.observed_cardinalities[name] = (
            self.observed_cardinalities.get(name, 0) + cardinality)
        self.observed_scans[name] = (
            self.observed_scans.get(name, 0) + 1)

    def observed_mean_cardinalities(self) -> Dict[str, float]:
        """Per-relation mean observed cardinality per scan — what the
        storage catalog's feedback loop absorbs."""
        return {name: total / max(1, self.observed_scans.get(name, 1))
                for name, total in
                sorted(self.observed_cardinalities.items())}

    def record_kernel(self, name: str) -> None:
        self.kernel_counts[name] = self.kernel_counts.get(name, 0) + 1

    def merge_from(self, other: "EngineStats") -> None:
        """Fold another stats object into this one, in place."""
        for name, count in other.kernel_counts.items():
            self.kernel_counts[name] = (
                self.kernel_counts.get(name, 0) + count)
        self.rows_emitted += other.rows_emitted
        self.lowerings += other.lowerings
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.shared_materialized += other.shared_materialized
        self.shared_reused += other.shared_reused
        self.oracle_fallbacks += other.oracle_fallbacks
        self.partitions_created += other.partitions_created
        self.morsels_executed += other.morsels_executed
        self.gather_barriers += other.gather_barriers
        self.worker_steps.extend(other.worker_steps)
        self.morsel_retries += other.morsel_retries
        self.pool_respawns += other.pool_respawns
        self.demotions.extend(other.demotions)
        self.bytes_shipped += other.bytes_shipped
        self.segment_cache_hits += other.segment_cache_hits
        self.segment_cache_misses += other.segment_cache_misses
        self.fused_segments += other.fused_segments
        self.barrier_fallbacks += other.barrier_fallbacks
        for name, total in other.observed_cardinalities.items():
            self.observed_cardinalities[name] = (
                self.observed_cardinalities.get(name, 0) + total)
        for name, scans in other.observed_scans.items():
            self.observed_scans[name] = (
                self.observed_scans.get(name, 0) + scans)

    def merged_with(self, other: "EngineStats") -> "EngineStats":
        """A new stats object combining both operands.

        The merge is associative (every field is a sum, a pointwise
        dict sum, or list concatenation), so folding per-worker stats
        in any grouping yields the same totals —
        ``tests/test_parallel.py`` pins this down.
        """
        merged = EngineStats(
            kernel_counts=dict(self.kernel_counts),
            rows_emitted=self.rows_emitted,
            lowerings=self.lowerings,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            shared_materialized=self.shared_materialized,
            shared_reused=self.shared_reused,
            oracle_fallbacks=self.oracle_fallbacks,
            partitions_created=self.partitions_created,
            morsels_executed=self.morsels_executed,
            gather_barriers=self.gather_barriers,
            worker_steps=list(self.worker_steps),
            morsel_retries=self.morsel_retries,
            pool_respawns=self.pool_respawns,
            demotions=list(self.demotions),
            bytes_shipped=self.bytes_shipped,
            segment_cache_hits=self.segment_cache_hits,
            segment_cache_misses=self.segment_cache_misses,
            fused_segments=self.fused_segments,
            barrier_fallbacks=self.barrier_fallbacks,
            observed_cardinalities=dict(self.observed_cardinalities),
            observed_scans=dict(self.observed_scans),
        )
        merged.merge_from(other)
        return merged


class ExecContext:
    """Per-run execution state: bindings, governor, memo, stats.

    ``evaluator`` is a tree-walking
    :class:`~repro.core.eval.Evaluator` sharing the run's governor; it
    evaluates lambda bodies that the lowering pass could not compile to
    closures, and whole subtrees the lowering pass does not know (the
    oracle fallback), so extension operators keep working under the
    physical engine.
    """

    __slots__ = ("bindings", "evaluator", "governor", "stats", "memo",
                 "powerset_budget", "parallel", "semiring", "_env",
                 "_tick_interval", "_last_tick_at")

    def __init__(self, bindings: Mapping[str, Any], evaluator,
                 stats: Optional[EngineStats] = None, parallel=None):
        self.bindings = dict(bindings)
        self.evaluator = evaluator
        self.governor = evaluator.governor
        self.stats = stats if stats is not None else EngineStats()
        self.memo: Dict[int, Dict[Any, int]] = {}
        self.powerset_budget = evaluator.powerset_budget
        #: Multiplicity semiring (None = N fast path); shared with the
        #: lambda/oracle evaluator so fallbacks agree with the kernels.
        self.semiring = getattr(evaluator, "semiring", None)
        #: Optional ParallelConfig: set only under ``engine=parallel``;
        #: Exchange nodes fall back to inline execution without it.
        self.parallel = parallel
        self._env = (self.bindings, None)
        self._tick_interval = _TICK_EVERY
        self._last_tick_at: Optional[float] = None

    def lookup(self, name: str) -> Any:
        if name not in self.bindings:
            raise UnboundVariableError(f"unbound variable {name!r}")
        return self.bindings[name]

    def apply_lambda(self, lam, value: Any) -> Any:
        """Evaluate an uncompiled lambda body via the tree walker."""
        evaluator = self.evaluator
        return evaluator.eval(lam.body,
                              evaluator.bind(self._env, lam.param, value))

    def eval_oracle(self, expr) -> Any:
        """Evaluate a whole subtree via the tree walker."""
        self.stats.oracle_fallbacks += 1
        return self.evaluator.eval(expr, self._env)

    @property
    def tick_interval(self) -> int:
        """Rows between governor ticks; adapts downward near deadlines."""
        return self._tick_interval

    def tick(self) -> None:
        governor = self.governor
        if governor is None:
            return
        governor.tick(self.evaluator.stats)
        # Adaptive granularity: a fixed 128-row interval lets one huge
        # morsel overshoot a deadline by a whole inter-tick gap.  When
        # a single gap consumed >10% of the deadline, halve the
        # interval (floor 1) so the overshoot bound shrinks
        # geometrically as the clock runs down.
        timeout = governor.timeout
        if timeout is not None:
            now = governor.clock()
            last = self._last_tick_at
            self._last_tick_at = now
            if (last is not None and now - last > 0.1 * timeout
                    and self._tick_interval > 1):
                self._tick_interval = max(1, self._tick_interval // 2)

    def check_size(self, counts: Dict[Any, int]) -> None:
        """Enforce the size budget on a materialised intermediate."""
        governor = self.governor
        if governor is None or governor.max_size is None:
            return
        size = 1 + sum((count if isinstance(count, int) else 1)
                       * encoding_size(value)
                       for value, count in counts.items())
        governor.check_size(size, self.evaluator.stats)

    def collect(self, node: "PhysicalNode") -> Dict[Any, int]:
        """Materialise a child node under governance."""
        if self.governor is None:
            counts = kernels.collect(node.rows(self), sr=self.semiring)
        else:
            counts = kernels.collect(
                node.rows(self), tick=self.tick,
                every=self._tick_interval,
                get_every=lambda: self._tick_interval,
                sr=self.semiring)
        self.check_size(counts)
        return counts


class PhysicalNode:
    """Base class of physical operators.

    Subclasses implement ``_rows(ctx)``; the public :meth:`rows`
    wrapper does the bookkeeping every node shares — kernel counters,
    governor ticks, and the emitted-row counts that ``:explain``
    reports as *actual* cardinalities.
    """

    __slots__ = ("estimated", "actual_rows")

    #: Kernel label shown by ``:explain`` (subclasses override).
    kernel = "?"

    def __init__(self, estimated: Optional[BagStats] = None):
        self.estimated = estimated
        self.actual_rows: Optional[int] = None

    def children(self) -> Tuple["PhysicalNode", ...]:
        return ()

    def _rows(self, ctx: ExecContext) -> Iterator[Tuple[Any, int]]:
        raise NotImplementedError

    def rows(self, ctx: ExecContext) -> Iterator[Tuple[Any, int]]:
        ctx.stats.record_kernel(self.kernel)
        ctx.tick()
        emitted = 0
        pending = 0
        governed = ctx.governor is not None
        for pair in self._rows(ctx):
            emitted += 1
            if governed:
                pending += 1
                if pending >= ctx.tick_interval:
                    pending = 0
                    ctx.tick()
            yield pair
        self.actual_rows = emitted
        ctx.stats.rows_emitted += emitted

    def execute(self, ctx: ExecContext) -> Any:
        """Materialise this node's stream into a sealed Bag."""
        counts = ctx.collect(self)
        return Bag.from_counts(counts)

    def label(self) -> str:
        parts = [f"{type(self).__name__}  kernel={self.kernel}"]
        if self.estimated is not None:
            parts.append(f"est card {self.estimated.cardinality:g}")
        if self.actual_rows is not None:
            parts.append(f"actual rows {self.actual_rows}")
        return "  ".join(parts)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------

class ScanBag(PhysicalNode):
    """Scan a database bag binding."""

    __slots__ = ("name",)
    kernel = "scan"

    def __init__(self, name: str, estimated=None):
        super().__init__(estimated)
        self.name = name

    def _rows(self, ctx):
        value = ctx.lookup(self.name)
        if not isinstance(value, Bag):
            raise UnboundVariableError(
                f"binding {self.name!r} is not a bag "
                f"(got {type(value).__name__})")
        # feedback: one observation per scan (O(1), the cardinality
        # is cached on the bag) so catalogs can absorb actuals
        ctx.stats.record_scan(self.name, value.cardinality)
        yield from value.items()

    def label(self):
        return f"ScanBag {self.name}  kernel={self.kernel}" + (
            f"  est card {self.estimated.cardinality:g}"
            if self.estimated is not None else "") + (
            f"  actual rows {self.actual_rows}"
            if self.actual_rows is not None else "")


class ConstSource(PhysicalNode):
    """A literal bag."""

    __slots__ = ("value",)
    kernel = "const"

    def __init__(self, value: Bag, estimated=None):
        super().__init__(estimated)
        self.value = value

    def _rows(self, ctx):
        sr = ctx.semiring
        if sr is not None:
            yield from sr.adapt_bag(self.value).items()
        else:
            yield from self.value.items()


class OracleEval(PhysicalNode):
    """Fallback: delegate an unlowered subtree to the tree walker.

    Keeps the physical engine total over the full expression language
    (IFP, machine encodings, future extension nodes) at interpreter
    speed for exactly that subtree.
    """

    __slots__ = ("expr",)
    kernel = "oracle"

    def __init__(self, expr, estimated=None):
        super().__init__(estimated)
        self.expr = expr

    def _rows(self, ctx):
        result = ctx.eval_oracle(self.expr)
        if not isinstance(result, Bag):
            raise UnboundVariableError(
                f"oracle subtree produced a non-bag "
                f"{type(result).__name__} in bag position")
        yield from result.items()

    def execute(self, ctx: ExecContext) -> Any:
        # At the root, a non-bag result (tuple/atom) is returned as-is.
        ctx.stats.record_kernel(self.kernel)
        return ctx.eval_oracle(self.expr)


class SharedScan(PhysicalNode):
    """A common subexpression: materialised once per run, then served
    from the run memo (the within-run intermediate-sharing half of the
    plan cache)."""

    __slots__ = ("inner",)
    kernel = "shared"

    def __init__(self, inner: PhysicalNode, estimated=None):
        super().__init__(estimated)
        self.inner = inner

    def children(self):
        return (self.inner,)

    def _rows(self, ctx):
        counts = ctx.memo.get(id(self))
        if counts is None:
            counts = ctx.collect(self.inner)
            ctx.memo[id(self)] = counts
            ctx.stats.shared_materialized += 1
        else:
            ctx.stats.shared_reused += 1
        yield from counts.items()


# ----------------------------------------------------------------------
# Union family
# ----------------------------------------------------------------------

class _BinaryNode(PhysicalNode):
    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 estimated=None):
        super().__init__(estimated)
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)


class HashUnion(_BinaryNode):
    """``(+)``: fully pipelined — both streams pass through and the
    consumer sums counts."""

    __slots__ = ()
    kernel = "additive-union"

    def _rows(self, ctx):
        return kernels.k_additive_union(self.left.rows(ctx),
                                        self.right.rows(ctx))


class HashDifference(_BinaryNode):
    """``-`` (monus): right side builds a hash, left side builds too
    (exact counts needed on both)."""

    __slots__ = ()
    kernel = "monus"

    def _rows(self, ctx):
        right = ctx.collect(self.right)
        left = ctx.collect(self.left)
        return kernels.k_monus(left, right, sr=ctx.semiring)


class HashIntersect(_BinaryNode):
    """``n`` (min): the lowering pass puts the estimated-smaller
    operand on the left, which becomes the probe dict."""

    __slots__ = ()
    kernel = "min-intersect"

    def _rows(self, ctx):
        small = ctx.collect(self.left)
        large = ctx.collect(self.right)
        return kernels.k_min_intersect(small, large, sr=ctx.semiring)


class HashMaxUnion(_BinaryNode):
    """``u`` (max): both sides materialised."""

    __slots__ = ()
    kernel = "max-union"

    def _rows(self, ctx):
        left = ctx.collect(self.left)
        right = ctx.collect(self.right)
        return kernels.k_max_union(left, right, sr=ctx.semiring)


# ----------------------------------------------------------------------
# Streaming unary operators
# ----------------------------------------------------------------------

class _UnaryNode(PhysicalNode):
    __slots__ = ("child",)

    def __init__(self, child: PhysicalNode, estimated=None):
        super().__init__(estimated)
        self.child = child

    def children(self):
        return (self.child,)


class HashDedup(_UnaryNode):
    """``eps``: streaming dedup over an O(distinct) seen-set."""

    __slots__ = ()
    kernel = "dedup"

    def _rows(self, ctx):
        return kernels.k_dedup(self.child.rows(ctx), sr=ctx.semiring)


class StreamingMap(_UnaryNode):
    """``MAP``: pipelined; ``fn`` is a compiled closure when the
    lowering pass recognised the lambda shape, otherwise an
    evaluator-backed application."""

    __slots__ = ("lam", "fn", "compiled")
    kernel = "map"

    def __init__(self, child: PhysicalNode, lam,
                 fn: Optional[Callable[[Any], Any]], estimated=None):
        super().__init__(child, estimated)
        self.lam = lam
        self.fn = fn
        self.compiled = fn is not None

    def _rows(self, ctx):
        fn = self.fn
        if fn is None:
            lam = self.lam
            fn = lambda value: ctx.apply_lambda(lam, value)  # noqa: E731
        return kernels.k_map(self.child.rows(ctx), fn)


class StreamingSelect(_UnaryNode):
    """``sigma``: pipelined filter; predicate compiled when possible."""

    __slots__ = ("make_predicate", "compiled")
    kernel = "select"

    def __init__(self, child: PhysicalNode, make_predicate, compiled:
                 bool, estimated=None):
        super().__init__(child, estimated)
        self.make_predicate = make_predicate
        self.compiled = compiled

    def _rows(self, ctx):
        return kernels.k_select(self.child.rows(ctx),
                                self.make_predicate(ctx))


class MultiplicityScale(_UnaryNode):
    """Multiply every count by a constant — the lowering of
    ``e (+) e`` and of products with single-tuple constants."""

    __slots__ = ("factor",)
    kernel = "scale"

    def __init__(self, child: PhysicalNode, factor: int, estimated=None):
        super().__init__(child, estimated)
        self.factor = factor

    def _rows(self, ctx):
        return kernels.k_scale(self.child.rows(ctx), self.factor,
                               sr=ctx.semiring)

    def label(self):
        return super().label() + f"  x{self.factor}"


class FlattenBags(_UnaryNode):
    """``delta``: pipelined flatten, scaling inner by outer counts."""

    __slots__ = ()
    kernel = "flatten"

    def _rows(self, ctx):
        return kernels.k_flatten(self.child.rows(ctx),
                                 sr=ctx.semiring)


class NestBuild(_UnaryNode):
    """``nest_J``: grouping kernel (materialises its input)."""

    __slots__ = ("indices",)
    kernel = "nest-build"

    def __init__(self, child: PhysicalNode, indices: Tuple[int, ...],
                 estimated=None):
        super().__init__(child, estimated)
        self.indices = indices

    def _rows(self, ctx):
        return kernels.k_nest(ctx.collect(self.child), self.indices,
                              sr=ctx.semiring)


class UnnestExpand(_UnaryNode):
    """``unnest_i``: pipelined expansion of a bag-valued attribute."""

    __slots__ = ("index",)
    kernel = "unnest"

    def __init__(self, child: PhysicalNode, index: int, estimated=None):
        super().__init__(child, estimated)
        self.index = index

    def _rows(self, ctx):
        return kernels.k_unnest(self.child.rows(ctx), self.index,
                                sr=ctx.semiring)


class PowersetExpand(_UnaryNode):
    """``P`` / ``P_b``: budget-checked subbag expansion."""

    __slots__ = ("duplicate_aware",)

    def __init__(self, child: PhysicalNode, duplicate_aware: bool,
                 estimated=None):
        super().__init__(child, estimated)
        self.duplicate_aware = duplicate_aware

    @property
    def kernel(self) -> str:  # type: ignore[override]
        return "powerbag" if self.duplicate_aware else "powerset"

    def _rows(self, ctx):
        counts = ctx.collect(self.child)
        if self.duplicate_aware:
            return kernels.k_powerbag(counts, ctx.powerset_budget,
                                      sr=ctx.semiring)
        return kernels.k_powerset(counts, ctx.powerset_budget,
                                  sr=ctx.semiring)


# ----------------------------------------------------------------------
# Products and joins
# ----------------------------------------------------------------------

class NestedLoopProduct(_BinaryNode):
    """``x``: stream the left side against a materialised right side.

    The lowering pass uses this when no equality predicate can be
    fused, or when the estimated inputs are too small for a hash join
    to pay for its table build.
    """

    __slots__ = ()
    kernel = "nested-loop-product"

    def _rows(self, ctx):
        build = ctx.collect(self.right)
        return kernels.k_product(self.left.rows(ctx), build,
                                 sr=ctx.semiring)


class HashJoin(_BinaryNode):
    """Fused ``sigma_{alpha_i = alpha_j}(B x B')`` as an equi-join.

    ``left``/``right`` keep the logical product order; ``build_right``
    says which side the lowering pass chose to hash (the estimated
    smaller one).
    """

    __slots__ = ("left_key", "right_key", "build_right")
    kernel = "hash-join"

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 left_key: Tuple[int, ...], right_key: Tuple[int, ...],
                 build_right: bool, estimated=None):
        super().__init__(left, right, estimated)
        self.left_key = left_key
        self.right_key = right_key
        self.build_right = build_right

    @staticmethod
    def _key_fn(indices: Tuple[int, ...]):
        if len(indices) == 1:
            index = indices[0]
            return lambda tup: tup.attribute(index)
        return lambda tup: tuple(tup.attribute(i) for i in indices)

    def _rows(self, ctx):
        left_key = self._key_fn(self.left_key)
        right_key = self._key_fn(self.right_key)
        if self.build_right:
            build = ctx.collect(self.right)
            return kernels.k_hash_join(self.left.rows(ctx), build,
                                       left_key, right_key,
                                       probe_is_left=True,
                                       sr=ctx.semiring)
        build = ctx.collect(self.left)
        return kernels.k_hash_join(self.right.rows(ctx), build,
                                   right_key, left_key,
                                   probe_is_left=False,
                                   sr=ctx.semiring)

    def label(self):
        keys = (f"L{list(self.left_key)}=R{list(self.right_key)}"
                f"  build={'right' if self.build_right else 'left'}")
        return super().label() + "  " + keys


def render_plan(node: PhysicalNode, indent: int = 0) -> str:
    """Render a physical plan tree as text (used by ``:explain``)."""
    lines = ["  " * indent + node.label()]
    for child in node.children():
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)
