"""``repro.engine`` — the physical execution engine.

The tree walker in :mod:`repro.core.eval` is the semantics oracle:
small, obviously faithful to the paper, and instrumented.  This package
is the *production* path: expressions are compiled by the staged
planner (:func:`repro.planner.compile` — normalize, rewrite, cost-based
lowering, optional parallelize) into physical plans of pipelined
operator kernels over ``(value, multiplicity)`` streams
(:mod:`repro.engine.physical`, :mod:`repro.engine.kernels`), with a
bounded LRU plan cache plus per-run common-subexpression sharing
(:mod:`repro.engine.cache`).  Plan-cache keys include the planner's
pass configuration, so plans compiled at different opt levels (or with
different pass toggles) never collide.

The paper's tractability results license the design: BALG¹ sits inside
LOGSPACE (Thm 4.4) and BALG avoids the powerbag's ``2^n`` blow-up
(Prop 3.2 vs Thm 5.5), so the hash-kernel evaluation here is
polynomial on exactly the fragments the paper calls tractable, and the
powerset kernels keep the same pre-materialisation budget checks the
oracle has.  Bench E20 measures the speedup; the differential fuzz
suite asserts bag-equality against the oracle.

Usage::

    from repro.engine import evaluate
    result = evaluate(expr, database)            # physical engine
    result = evaluate(expr, database, engine="tree")   # the oracle
    result = evaluate(expr, database, opt_level=0)     # naive plans

or through the stable front door, ``repro.core.eval.evaluate(...,
engine="physical")``.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.bag import Bag
from repro.core.database import Instance
from repro.core.errors import (
    GovernedError, RecursionDepthExceeded, ResourceLimitError,
    UnboundVariableError,
)
from repro.core.eval import Evaluator
from repro.core.expr import Expr
from repro.engine.cache import CacheStats, PlanCache, canonical_key
from repro.engine.kernels import Rows, collect
from repro.engine.lower import Lowering, PhysicalPlan, lower
from repro.engine.physical import (
    EngineStats, ExecContext, PhysicalNode, render_plan,
)
from repro.engine.resilience import (
    ResilienceConfig, is_transient_fault, resolve_resilience,
)
from repro.guard.governor import Limits, ResourceGovernor
from repro.planner import PassConfig, PlanContext
from repro.planner import compile as planner_compile

__all__ = [
    "EngineStats", "ExecContext", "PhysicalNode", "PhysicalPlan",
    "PlanCache", "CacheStats", "Lowering", "lower", "canonical_key",
    "Rows", "collect", "render_plan", "ResilienceConfig",
    "evaluate", "plan_for", "explain_physical", "default_cache",
]

#: Process-wide default plan cache (the CLI and SQL layers share it).
_DEFAULT_CACHE = PlanCache(capacity=256)


def default_cache() -> PlanCache:
    """The process-wide plan cache shared by the front ends."""
    return _DEFAULT_CACHE


def _bindings_of(database: Optional[Mapping[str, Any]],
                 named_bags: Mapping[str, Any]) -> dict:
    bindings: dict = {}
    if isinstance(database, Instance):
        bindings.update(database.bags())
    elif database is not None:
        bindings.update(database)
    bindings.update(named_bags)
    return bindings


def _config_for(opt_level: Optional[int],
                config: Optional[PassConfig],
                selectivity: float = 0.5,
                default_level: int = 1,
                semiring=None) -> PassConfig:
    """Resolve the pass configuration for a physical-path call: an
    explicit config wins, then an explicit level; the default is
    opt level 1 (normalize + cost-based lowering) — except under
    ``engine="codegen"``, whose callers pass ``default_level=3`` so
    the codegen stage is on by default.  ``semiring`` (an instance,
    a name, or None for N) is stamped into the config so plan-cache
    keys and the lowering pass see the active multiplicity domain."""
    from dataclasses import replace as _replace

    from repro.core.semiring import resolve_semiring, semiring_name
    name = semiring_name(resolve_semiring(semiring))
    if config is not None:
        if semiring is not None and config.semiring != name:
            config = _replace(config, semiring=name)
        return config
    level = default_level if opt_level is None else opt_level
    return PassConfig.for_level(level, selectivity=selectivity,
                                semiring=name)


def _absorb_feedback(catalog, stats: EngineStats) -> None:
    """Fold a run's observed cardinalities into the catalog (workspace
    objects persist; bare catalogs update in memory)."""
    observed = stats.observed_mean_cardinalities()
    if not observed:
        return
    absorb = getattr(catalog, "absorb_feedback", None)
    if absorb is None:
        absorb = getattr(catalog, "absorb", None)
    if absorb is not None:
        absorb(observed)


def plan_for(expr: Expr, bindings: Mapping[str, Any],
             cache: Optional[PlanCache] = None,
             stats: Optional[EngineStats] = None,
             selectivity: float = 0.5,
             policy=None,
             opt_level: Optional[int] = None,
             config: Optional[PassConfig] = None,
             catalog=None,
             engine: Optional[str] = None,
             semiring=None) -> PhysicalPlan:
    """Fetch or build the physical plan for an expression.

    A thin shim over :func:`repro.planner.compile`: a cache hit skips
    the whole pipeline (asserted by bench E20's stats-counter check);
    a miss compiles with exact statistics drawn from the bindings and
    stores the plan.  ``policy`` (a
    :class:`~repro.engine.parallel.ParallelPolicy`) turns on the
    parallelism pass; parallel plans live under a tagged cache key so
    they never shadow serial plans, and the pass configuration is part
    of every key so opt levels never collide either.
    ``engine="codegen"`` yields a fused
    :class:`~repro.engine.codegen.CodegenPlan` (default opt level 3)
    under its own cache-tag component.
    """
    if engine is None:
        engine = "parallel" if policy is not None else "physical"
    resolved = _config_for(
        opt_level, config, selectivity,
        default_level=3 if engine == "codegen" else 1,
        semiring=semiring)
    ctx = PlanContext.capture(
        bindings, catalog=catalog, engine=engine,
        cache=cache, engine_stats=stats, parallel=policy,
        config=resolved)
    return planner_compile(expr, ctx).physical


def evaluate(expr: Expr,
             database: Optional[Mapping[str, Any]] = None,
             *,
             engine: str = "physical",
             governor: Optional[ResourceGovernor] = None,
             limits: Optional[Limits] = None,
             powerset_budget: Optional[int] = None,
             cache: Optional[PlanCache] = _DEFAULT_CACHE,
             stats: Optional[EngineStats] = None,
             workers: Optional[int] = None,
             parallel_backend: str = "thread",
             parallel_threshold: Optional[float] = None,
             min_morsel_rows: Optional[int] = None,
             opt_level: Optional[int] = None,
             config: Optional[PassConfig] = None,
             resilience=None,
             catalog=None,
             feedback: bool = False,
             semiring=None,
             **named_bags: Bag) -> Any:
    """Evaluate an expression with the physical engine.

    ``catalog`` (a :class:`~repro.storage.Workspace` or
    :class:`~repro.storage.Catalog`) makes compilation data-driven:
    statistics for cataloged relations come from persisted ANALYZE
    results instead of scanning the bound bags, and the catalog's
    histogram selectivities replace the flat default.  ``feedback=True``
    additionally folds the run's observed per-relation cardinalities
    back into the catalog (opt-in, bounded, epoch-bumping — see
    :meth:`repro.storage.Catalog.absorb`).

    ``engine="tree"`` falls through to the oracle evaluator, so callers
    can switch per query.  ``engine="parallel"`` runs the same kernels
    morsel-parallel on ``workers`` threads (or processes with
    ``parallel_backend="process"``); ``parallel_threshold`` overrides
    the minimum estimated cardinality below which the lowering pass
    refuses to insert exchanges (0 forces them everywhere), and
    ``min_morsel_rows`` overrides the adaptive morsel-granularity
    floor (1 forces the full ``workers x morsel_factor`` split even
    on tiny inputs — what the differential harness does).
    ``engine="codegen"`` compiles the lowered plan one step further —
    every pipeline segment fuses into a columnar Python closure
    (:mod:`repro.engine.codegen`); powerset/flatten/nest subtrees fall
    back to the stream kernels as barrier leaves.  ``opt_level``
    (0/1/2/3) or a full
    :class:`~repro.planner.PassConfig` picks the planner passes —
    level 0 disables every rewrite and lowers naively, level 2 adds
    the full algebraic rewrite fixpoint to the default, level 3 adds
    the codegen stage (the ``engine="codegen"`` default).
    ``cache=None`` disables plan caching; the default is the
    process-wide cache.  Governed limits apply to the whole run:
    compilation ticks the shared governor per rewrite pass, every
    kernel ticks it per row batch, every materialisation honours the
    size budget, and powerset expansion pre-checks its budget.

    ``resilience`` (``True`` or a :class:`~repro.engine.resilience.
    ResilienceConfig`; parallel engine only) opts into fault-tolerant
    execution: per-morsel retry, process-pool respawn, and the
    process → thread → serial degradation ladder, with every demotion
    recorded in the run's :class:`EngineStats`.  With
    ``ResilienceConfig(replan=True)`` a run whose ladder is exhausted
    is recompiled once at opt level 1 and executed serially — the
    final rung.  The default (``None``) keeps the fail-fast contract.
    """
    if engine == "tree":
        from repro.core.eval import evaluate as tree_evaluate
        return tree_evaluate(expr, database,
                             powerset_budget=powerset_budget,
                             governor=governor, limits=limits,
                             opt_level=opt_level, config=config,
                             semiring=semiring,
                             **named_bags)
    if engine not in ("physical", "parallel", "codegen"):
        raise ValueError(f"unknown engine {engine!r} "
                         "(choices: 'physical', 'parallel', "
                         "'codegen', 'tree')")
    policy = None
    parallel_config = None
    resilience_config = resolve_resilience(resilience)
    if engine == "parallel":
        from repro.engine.parallel import ParallelConfig, ParallelPolicy
        if parallel_threshold is not None:
            policy = ParallelPolicy(threshold=parallel_threshold)
        else:
            policy = ParallelPolicy()
        extra = ({} if min_morsel_rows is None
                 else {"min_morsel_rows": min_morsel_rows})
        parallel_config = ParallelConfig(
            workers=workers if workers is not None else 2,
            backend=parallel_backend,
            resilience=resilience_config, **extra)
    from repro.core.semiring import resolve_semiring
    sr = resolve_semiring(semiring)
    if sr is None and config is not None:
        sr = resolve_semiring(config.semiring)
    bindings = _bindings_of(database, named_bags)
    referenced = expr.free_vars()
    missing = referenced - set(bindings)
    if missing:
        raise UnboundVariableError(
            f"expression mentions unbound bag(s): {sorted(missing)}")
    if sr is not None:
        # adapt only the bindings the expression references — a stale
        # binding annotated under another semiring must not poison
        # queries that never mention it
        bindings = {name: (sr.adapt_bag(value, name)
                           if isinstance(value, Bag)
                           and name in referenced else value)
                    for name, value in bindings.items()}
    evaluator = Evaluator(powerset_budget=powerset_budget,
                          governor=governor, limits=limits,
                          track_stats=False, semiring=sr)
    if evaluator.governor is not None:
        evaluator.governor.ensure_started()
    resolved_config = _config_for(
        opt_level, config,
        default_level=3 if engine == "codegen" else 1,
        semiring=sr)
    ctx = PlanContext.capture(
        bindings, catalog=catalog, engine=engine,
        governor=evaluator.governor,
        cache=cache, engine_stats=stats, parallel=policy,
        config=resolved_config)
    exec_ctx = ExecContext(bindings, evaluator, stats=stats,
                           parallel=parallel_config)
    try:
        plan = planner_compile(expr, ctx).physical
        try:
            result = plan.execute(exec_ctx)
            if feedback and catalog is not None:
                _absorb_feedback(catalog, exec_ctx.stats)
            return result
        except Exception as error:
            if not (engine == "parallel"
                    and resilience_config is not None
                    and resilience_config.replan
                    and is_transient_fault(error)):
                raise
            # the final ladder rung: the parallel run died even after
            # retries/respawns/demotions — recompile serially at a
            # lower opt level (a fresh PassConfig means a fresh
            # cache key; no collision with the parallel plan) and
            # record the demotion so the degraded answer is visible
            exec_ctx.stats.demotions.append(
                "parallel->replan: serial opt-1 after "
                f"{type(error).__name__}")
            replan_config = PassConfig.for_level(
                min(1, resolved_config.opt_level),
                selectivity=resolved_config.selectivity,
                semiring=resolved_config.semiring)
            serial_ctx = PlanContext.for_bindings(
                bindings, engine="physical",
                governor=evaluator.governor, cache=cache,
                engine_stats=stats, config=replan_config)
            serial_plan = planner_compile(expr, serial_ctx).physical
            return serial_plan.execute(
                ExecContext(bindings, evaluator,
                            stats=exec_ctx.stats))
    except RecursionError as exc:
        raise RecursionDepthExceeded(
            "expression or value nesting exceeded the Python "
            "recursion limit", stats=evaluator.stats) from exc
    except GovernedError as error:
        if error.stats is None:
            error.stats = evaluator.stats
        raise
    except ResourceLimitError as error:
        if getattr(error, "stats", None) is None:
            error.stats = evaluator.stats
        raise


def explain_physical(expr: Expr,
                     database: Optional[Mapping[str, Any]] = None,
                     *, execute: bool = True,
                     cache: Optional[PlanCache] = None,
                     governor: Optional[ResourceGovernor] = None,
                     limits: Optional[Limits] = None,
                     engine: str = "physical",
                     workers: Optional[int] = None,
                     parallel_backend: str = "thread",
                     parallel_threshold: Optional[float] = None,
                     opt_level: Optional[int] = None,
                     config: Optional[PassConfig] = None,
                     resilience=None,
                     catalog=None,
                     feedback: bool = False,
                     semiring=None,
                     **named_bags: Bag) -> str:
    """Render the physical plan, optionally with actual cardinalities.

    With ``execute=True`` (and all free variables bound) the plan runs
    once so every node reports ``actual rows`` next to its estimate —
    the CLI's ``:explain`` uses exactly this.  Under
    ``engine="parallel"`` the plan shows the Gather/Exchange/Partition
    structure and a footer reports the exchange counters (partitions,
    morsels, gather barriers, per-worker steps) plus the plan-cache
    totals for the cache that served the plan.
    """
    from repro.core.semiring import resolve_semiring
    sr = resolve_semiring(semiring)
    if sr is None and config is not None:
        sr = resolve_semiring(config.semiring)
    semiring_requested = (semiring is not None or sr is not None)
    bindings = _bindings_of(database, named_bags)
    if sr is not None:
        referenced = expr.free_vars()
        bindings = {name: (sr.adapt_bag(value, name)
                           if isinstance(value, Bag)
                           and name in referenced else value)
                    for name, value in bindings.items()}
    stats = EngineStats()
    policy = None
    parallel_config = None
    resilience_config = resolve_resilience(resilience)
    if engine == "parallel":
        from repro.engine.parallel import ParallelConfig, ParallelPolicy
        policy = (ParallelPolicy(threshold=parallel_threshold)
                  if parallel_threshold is not None else ParallelPolicy())
        parallel_config = ParallelConfig(
            workers=workers if workers is not None else 2,
            backend=parallel_backend,
            resilience=resilience_config)
    plan = plan_for(expr, bindings, cache=cache, stats=stats,
                    policy=policy, opt_level=opt_level, config=config,
                    catalog=catalog,
                    engine="codegen" if engine == "codegen" else None,
                    semiring=sr)
    executed = False
    if execute and not (expr.free_vars() - set(bindings)):
        evaluator = Evaluator(governor=governor, limits=limits,
                              track_stats=False, semiring=sr)
        if evaluator.governor is not None:
            evaluator.governor.ensure_started()
        plan.execute(ExecContext(bindings, evaluator, stats=stats,
                                 parallel=parallel_config))
        executed = True
    # snapshot compile-time estimates before feedback rewrites them
    estimates = {}
    lookup = getattr(catalog, "planner_stats", None)
    if lookup is not None:
        for name in stats.observed_cardinalities:
            entry = lookup(name)
            if entry is not None:
                estimates[name] = entry.bag_stats.cardinality
    if feedback and executed and catalog is not None:
        _absorb_feedback(catalog, stats)
    rendered = plan.render()
    if feedback and executed:
        feedback_lines = ["-- feedback --"]
        observed = stats.observed_mean_cardinalities()
        for name in sorted(observed):
            estimated = (f"{estimates[name]:g}"
                         if name in estimates else "?")
            feedback_lines.append(
                f"{name}: estimated {estimated}, observed "
                f"{observed[name]:g} "
                f"(scans {stats.observed_scans.get(name, 0)})")
        if len(feedback_lines) == 1:
            feedback_lines.append("no base-relation scans observed")
        rendered = "\n".join([rendered] + feedback_lines)
    if semiring_requested:
        from repro.core.semiring import NAT
        active = NAT if sr is None else sr
        specialization = "fused-int" if sr is None else "generic"
        rendered = "\n".join([
            rendered, "-- semiring --",
            f"domain               {active.describe()}",
            f"specialization       {specialization}"])
    if engine == "codegen":
        lines = [rendered, "-- codegen --",
                 f"fused segments       {stats.fused_segments}",
                 f"barrier fallbacks    {stats.barrier_fallbacks}"]
        if cache is not None:
            lines.append(
                f"plan cache           hits={cache.stats.hits} "
                f"misses={cache.stats.misses} "
                f"evictions={cache.stats.evictions}")
        return "\n".join(lines)
    if engine != "parallel":
        return rendered
    lines = [rendered, "-- exchange --",
             f"partitions created   {stats.partitions_created}",
             f"morsels executed     {stats.morsels_executed}",
             f"gather barriers      {stats.gather_barriers}",
             f"per-worker steps     {stats.worker_steps}",
             f"bytes shipped        {stats.bytes_shipped}",
             f"segment cache        hits={stats.segment_cache_hits} "
             f"misses={stats.segment_cache_misses}"]
    if resilience_config is not None:
        demotions = ("; ".join(stats.demotions) if stats.demotions
                     else "none")
        lines += ["-- resilience --",
                  f"morsel retries       {stats.morsel_retries}",
                  f"pool respawns        {stats.pool_respawns}",
                  f"demotions            {demotions}"]
    if cache is not None:
        lines.append(f"plan cache           hits={cache.stats.hits} "
                     f"misses={cache.stats.misses} "
                     f"evictions={cache.stats.evictions}")
    return "\n".join(lines)
