"""Columnar bag representation + count-vector kernels.

The stream kernels (:mod:`repro.engine.kernels`) pull one
``(value, count)`` pair at a time through a chain of Python
generators; every row pays interpreter dispatch for every operator it
crosses.  This module is the columnar half of the codegen runtime
(:mod:`repro.engine.codegen`): a bag is two parallel arrays — a value
array and a multiplicity-count array — and each kernel is one
C-speed bulk operation (a dict comprehension, ``dict.fromkeys``, a
list comprehension) over whole columns.  Hash-style operators (monus,
min-intersect, max-union, join/product build sides) use plain
``value -> count`` dicts, the dictionary form of the same columns.

Semantics match :mod:`repro.core.ops` exactly — the differential
harness's ``engine-codegen`` backend and the mutation tests in
``tests/test_columnar.py`` pin this (a mutant that forgets the monus
zero-clamp, the join multiplicity product, or the dedup collapse of
the count column is caught within a handful of generated cases).

Governance: the quadratic kernels (:func:`c_product`,
:func:`c_hash_join`) accept a ``tick`` callable and invoke it once
per ``TICK_CHUNK`` output rows, so step budgets, deadlines, and
cancellation reach inside a single fused kernel.  The linear kernels
are governed by their caller per kernel invocation (the emitted
segment ticks proportionally to each result's size).
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError

__all__ = [
    "ColumnarBag", "to_columnar", "from_columnar", "columnar_counts",
    "sum_counts", "TICK_CHUNK",
    "c_monus", "c_min_intersect", "c_max_union", "c_add_union",
    "c_dedup", "c_scale", "c_scale_dict", "c_map", "c_select",
    "c_product", "c_hash_join", "c_sym_diff_dedup",
]

#: Output rows between governor ticks inside a quadratic kernel.
TICK_CHUNK = 1024


class ColumnarBag:
    """A bag as two parallel columns: values and multiplicity counts.

    ``distinct=True`` asserts the value column has no repeats (scans
    and dict-kernel outputs); ``False`` means repeated values must be
    summed on materialisation (map images, union concatenations).
    """

    __slots__ = ("values", "counts", "distinct")

    def __init__(self, values: Sequence[Any], counts: Sequence[int],
                 distinct: bool = False):
        if len(values) != len(counts):
            raise ValueError(
                f"column length mismatch: {len(values)} values vs "
                f"{len(counts)} counts")
        self.values = list(values)
        self.counts = list(counts)
        self.distinct = distinct

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (f"ColumnarBag({len(self.values)} rows, "
                f"distinct={self.distinct})")


def to_columnar(bag: Bag) -> ColumnarBag:
    """Decompose a sealed bag into parallel value/count columns."""
    if not isinstance(bag, Bag):
        raise BagTypeError(
            f"to_columnar expects a Bag, got {type(bag).__name__}")
    values: List[Any] = []
    counts: List[int] = []
    for value, count in bag.items():
        values.append(value)
        counts.append(count)
    return ColumnarBag(values, counts, distinct=True)


def from_columnar(col: ColumnarBag) -> Bag:
    """Seal columns back into a bag (inverse of :func:`to_columnar`)."""
    return Bag.from_counts(columnar_counts(col))


def columnar_counts(col: ColumnarBag, sr=None) -> Dict[Any, int]:
    """The dictionary form of a columnar bag."""
    if col.distinct:
        return dict(zip(col.values, col.counts))
    return sum_counts(col.values, col.counts, sr)


def sum_counts(values: Iterable[Any],
               counts: Iterable[int], sr=None) -> Dict[Any, int]:
    """Materialise possibly-repeating columns, summing counts."""
    out: Dict[Any, int] = {}
    get = out.get
    if sr is None:
        for value, count in zip(values, counts):
            out[value] = get(value, 0) + count
    else:
        add = sr.add
        for value, count in zip(values, counts):
            existing = get(value)
            out[value] = count if existing is None else add(existing,
                                                            count)
    return out


# ----------------------------------------------------------------------
# Dict kernels (hash sides: both columns already materialised)
# ----------------------------------------------------------------------

def c_monus(left: Dict[Any, int],
            right: Dict[Any, int], sr=None) -> Dict[Any, int]:
    """``B - B'``: monus on multiplicities, ``max(0, p - q)`` with the
    zeroes dropped."""
    get = right.get
    if sr is None:
        return {value: remaining for value, count in left.items()
                if (remaining := count - get(value, 0)) > 0}
    monus, is_zero, zero = sr.monus, sr.is_zero, sr.zero
    return {value: remaining for value, count in left.items()
            if not is_zero(remaining := monus(count,
                                              get(value, zero)))}


def c_min_intersect(small: Dict[Any, int],
                    large: Dict[Any, int], sr=None) -> Dict[Any, int]:
    """``B n B'``: min of multiplicities; iterate the smaller dict."""
    get = large.get
    if sr is None:
        return {value: count if count < other else other
                for value, count in small.items()
                if (other := get(value, 0)) > 0}
    meet = sr.min_
    return {value: meet(count, other)
            for value, count in small.items()
            if (other := get(value)) is not None}


def c_max_union(left: Dict[Any, int],
                right: Dict[Any, int], sr=None) -> Dict[Any, int]:
    """``B u B'``: max of multiplicities."""
    get = left.get
    if sr is None:
        out = {value: count if count > (other := get(value, 0)) else
               other for value, count in right.items()}
        for value, count in left.items():
            if value not in out:
                out[value] = count
        return out
    join = sr.max_
    out = {value: (count if (other := get(value)) is None
                   else join(count, other))
           for value, count in right.items()}
    for value, count in left.items():
        if value not in out:
            out[value] = count
    return out


def c_add_union(left: Dict[Any, int],
                right: Dict[Any, int], sr=None) -> Dict[Any, int]:
    """``B (+) B'`` in dictionary form: pointwise count sum."""
    out = dict(left)
    get = out.get
    if sr is None:
        for value, count in right.items():
            out[value] = get(value, 0) + count
        return out
    add = sr.add
    for value, count in right.items():
        existing = get(value)
        out[value] = count if existing is None else add(existing, count)
    return out


def c_sym_diff_dedup(left: Dict[Any, int],
                     right: Dict[Any, int], sr=None) -> Dict[Any, int]:
    """``eps((B - B') (+) (B' - B))`` in one pass: the values whose
    multiplicities differ between the two bags, each with count 1
    (the semiring's ``one``).

    An element survives either monus exactly when its counts differ,
    so the whole dedup'd symmetric difference is one candidate sweep
    over the C-level key-set union — the compiler emits this wherever
    the four-operator pattern appears in a segment (the e20/e26
    headline chain), replacing two monus passes, a concatenation, and
    a dedup."""
    get_r = right.get
    if sr is None:
        out = {value: 1 for value, count in left.items()
               if get_r(value, 0) != count}
        # values only the right side has differ by definition; the set
        # difference and the fromkeys update both run at C level
        out.update(dict.fromkeys(right.keys() - left.keys(), 1))
        return out
    # the generic fusion is sound only in naturally ordered semirings
    # where a (monus) b = 0 and b (monus) a = 0 together imply a = b;
    # that is exactly "counts equal" for the shipped instances
    one, zero = sr.one, sr.zero
    out = {value: one for value, count in left.items()
           if get_r(value, zero) != count}
    out.update(dict.fromkeys(right.keys() - left.keys(), one))
    return out


# ----------------------------------------------------------------------
# Column kernels
# ----------------------------------------------------------------------

def c_dedup(values: Iterable[Any], sr=None) -> Dict[Any, int]:
    """``eps(B)``: duplicate elimination straight off the value
    column — every surviving count is 1 (the semiring's ``one``),
    whatever the count column said (the count array collapses, not
    just the repeats)."""
    return dict.fromkeys(values, 1 if sr is None else sr.one)


def c_scale(counts: Sequence[int], factor: int,
            sr=None) -> List[int]:
    """Multiply the whole count column by a constant."""
    if sr is None:
        return [count * factor for count in counts]
    scale = sr.scale
    return [scale(count, factor) for count in counts]


def c_scale_dict(counts: Dict[Any, int],
                 factor: int, sr=None) -> Dict[Any, int]:
    """Dictionary form of :func:`c_scale`."""
    if sr is None:
        return {value: count * factor
                for value, count in counts.items()}
    scale = sr.scale
    return {value: scale(count, factor)
            for value, count in counts.items()}


def c_map(values: Sequence[Any],
          fn: Callable[[Any], Any]) -> List[Any]:
    """``MAP_phi(B)``: transform the value column; the count column
    rides along unchanged (colliding images sum on materialisation)."""
    return [fn(value) for value in values]


def c_select(values: Sequence[Any], counts: Sequence[int],
             predicate: Callable[[Any], bool]
             ) -> Tuple[List[Any], List[int]]:
    """``sigma(B)``: filter both columns in one pass."""
    out_values: List[Any] = []
    out_counts: List[int] = []
    add_value = out_values.append
    add_count = out_counts.append
    for value, count in zip(values, counts):
        if predicate(value):
            add_value(value)
            add_count(count)
    return out_values, out_counts


# ----------------------------------------------------------------------
# Product / join kernels (quadratic: tick inside)
# ----------------------------------------------------------------------

def _require_tup(value: Any, operation: str) -> None:
    if not isinstance(value, Tup):
        raise BagTypeError(
            f"{operation} requires bags of tuples, found element of "
            f"type {type(value).__name__}")


def c_product(probe_values: Sequence[Any], probe_counts: Sequence[int],
              build: Dict[Any, int],
              tick: Optional[Callable[[], None]] = None,
              sr=None) -> Tuple[List[Any], List[int]]:
    """``B x B'`` against a materialised build dict: tuples
    concatenate, counts multiply."""
    for value in build:
        _require_tup(value, "cartesian product")
    build_items = list(build.items())
    out_values: List[Any] = []
    out_counts: List[int] = []
    pending = 0
    mul = None if sr is None else sr.mul
    for left, lcount in zip(probe_values, probe_counts):
        _require_tup(left, "cartesian product")
        out_values.extend(left.concat(right) for right, _ in build_items)
        if mul is None:
            out_counts.extend(lcount * rcount
                              for _, rcount in build_items)
        else:
            out_counts.extend(mul(lcount, rcount)
                              for _, rcount in build_items)
        if tick is not None:
            pending += len(build_items)
            if pending >= TICK_CHUNK:
                pending = 0
                tick()
    return out_values, out_counts


def c_hash_join(probe_values: Sequence[Any],
                probe_counts: Sequence[int],
                build: Dict[Any, int],
                probe_key: Callable[[Tup], Any],
                build_key: Callable[[Tup], Any],
                probe_is_left: bool,
                tick: Optional[Callable[[], None]] = None,
                sr=None) -> Tuple[List[Any], List[int]]:
    """Equi-join: hash the build dict on its key attributes, stream
    the probe columns; counts multiply and concatenation order follows
    ``probe_is_left`` (the logical product order, not the build
    choice)."""
    table: Dict[Any, list] = {}
    for value, count in build.items():
        _require_tup(value, "hash join")
        table.setdefault(build_key(value), []).append((value, count))
    out_values: List[Any] = []
    out_counts: List[int] = []
    add_value = out_values.append
    add_count = out_counts.append
    get = table.get
    pending = 0
    mul = None if sr is None else sr.mul
    for value, count in zip(probe_values, probe_counts):
        _require_tup(value, "hash join")
        matches = get(probe_key(value))
        if not matches:
            continue
        if probe_is_left:
            for other, other_count in matches:
                add_value(value.concat(other))
                add_count(count * other_count if mul is None
                          else mul(count, other_count))
        else:
            for other, other_count in matches:
                add_value(other.concat(value))
                add_count(count * other_count if mul is None
                          else mul(count, other_count))
        if tick is not None:
            pending += len(matches)
            if pending >= TICK_CHUNK:
                pending = 0
                tick()
    return out_values, out_counts
