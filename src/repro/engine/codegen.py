"""Plan-to-closure codegen: fuse physical pipelines into Python closures.

The stream engine executes a lowered plan by pulling rows through one
generator per operator; every row pays Python-level dispatch at every
node.  This module compiles the same
:class:`~repro.engine.lower.PhysicalPlan` into a
:class:`CodegenPlan`: each maximal *fusable* region of the plan — the
select/map/scale/union chains plus the hash-style binary kernels —
becomes one emitted Python function (a *fused segment*) whose body is
a straight line of columnar bulk kernels
(:mod:`repro.engine.columnar`).  No per-tuple interpreter dispatch
remains inside a segment; the raco pipeline compiler is the exemplar
shape (one emitted unit per pipeline).

Segment boundaries:

* :class:`~repro.engine.physical.SharedScan` nodes that the plan
  references **more than once** — the inner plan compiles into its
  own fused segment, materialised once per run via the shared
  ``ctx.memo`` (the same memo the stream engine uses, so a
  subexpression shared across a barrier is still computed once).
  Lowering's CSE wraps every syntactically repeated subtree, which in
  an exponentially-shared logical expression marks far more nodes
  than the physical DAG actually re-reads; a ``SharedScan`` whose
  compiled plan references it exactly once is *transparent* here and
  fuses straight through into the consuming segment;
* everything the columnar runtime does not fuse — powerset/powerbag,
  flatten, nest, unnest, oracle subtrees, and any operator this
  module does not know — stays a **barrier leaf**: the original
  stream node executes via ``ctx.collect`` (full governance and
  powerset budgets included) and feeds the enclosing segment as a
  materialised dict.  Every such execution counts into
  ``EngineStats.barrier_fallbacks``; every segment execution counts
  into ``EngineStats.fused_segments`` — ``:explain`` prints both.

Emitted code calls the columnar kernels through the module object
(``_col.c_monus(...)``), so kernel monkeypatching — the mutation
tests' probe — takes effect without recompiling this module.

The planner inserts this as the ``codegen`` stage (after ``lower``),
active at opt level 3 under ``engine="codegen"``; the stage
contributes its own plan-cache tag component, so fused plans never
collide with stream plans compiled from the same expression.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.bag import Bag
from repro.core.errors import UnboundVariableError
from repro.engine import columnar
from repro.engine.lower import PhysicalPlan
from repro.engine.physical import (
    ConstSource, HashDedup, HashDifference, HashIntersect, HashJoin,
    HashMaxUnion, HashUnion, MultiplicityScale, NestedLoopProduct,
    PhysicalNode, ScanBag, SharedScan, StreamingMap, StreamingSelect,
)

__all__ = ["CodegenPlan", "FusedSegment", "compile_codegen"]

#: Node classes the emitter fuses; everything else is a barrier leaf.
_FUSABLE = (ScanBag, ConstSource, HashUnion, HashDifference,
            HashIntersect, HashMaxUnion, HashDedup, StreamingMap,
            StreamingSelect, MultiplicityScale, NestedLoopProduct,
            HashJoin)

#: Nodes whose natural output currency is a ``value -> count`` dict
#: (the rest produce parallel columns).
_DICT_NATIVE = (ScanBag, ConstSource, HashDifference, HashIntersect,
                HashMaxUnion, HashDedup)


def _fusable(node: PhysicalNode) -> bool:
    return isinstance(node, _FUSABLE) and not isinstance(node,
                                                        SharedScan)


def _shared_refs(root: PhysicalNode) -> Dict[int, int]:
    """Count how many times the plan references each SharedScan.

    The walk memoises by node identity, so the exponentially-shared
    logical shape costs one visit per distinct physical node.  A
    SharedScan referenced exactly once gains nothing from the run-time
    memo and is fused through transparently."""
    refs: Dict[int, int] = {}
    seen: set = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, SharedScan):
            refs[id(node)] = refs.get(id(node), 0) + 1
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children())
    return refs


# ----------------------------------------------------------------------
# Runtime helpers shared by every emitted segment
# ----------------------------------------------------------------------

def _enter(ctx) -> None:
    """Segment prologue: count the execution and tick the governor."""
    ctx.stats.fused_segments += 1
    ctx.tick()


def _record(ctx, kernel: str, rows: int, counts=None) -> None:
    """Per-kernel epilogue: stats, proportional governor ticks, and
    the intermediate-size budget on materialised dicts."""
    stats = ctx.stats
    stats.record_kernel(kernel)
    stats.rows_emitted += rows
    if ctx.governor is not None:
        for _ in range(rows // ctx.tick_interval + 1):
            ctx.tick()
    if counts is not None:
        ctx.check_size(counts)


def _scan(ctx, name: str) -> Dict[Any, int]:
    """Base-relation scan straight into dictionary form.

    Returns the bag's internal counts dict *without copying*: every
    columnar kernel builds a fresh output dict and never mutates an
    input, so handing out the view is safe and saves an O(n) copy per
    scan."""
    value = ctx.lookup(name)
    if not isinstance(value, Bag):
        raise UnboundVariableError(
            f"binding {name!r} is not a bag "
            f"(got {type(value).__name__})")
    ctx.stats.record_scan(name, value.cardinality)
    return value._counts


def _tickof(ctx) -> Optional[Callable[[], None]]:
    """The tick callable quadratic kernels chunk against."""
    return None if ctx.governor is None else ctx.tick


def _mklam(ctx, lam) -> Callable[[Any], Any]:
    """Evaluator-backed application for uncompiled lambdas."""
    return lambda value: ctx.apply_lambda(lam, value)


_RUNTIME = {
    "_col": columnar,
    "_enter": _enter,
    "_record": _record,
    "_scan": _scan,
    "_tickof": _tickof,
    "_mklam": _mklam,
}


# ----------------------------------------------------------------------
# The compiled artefacts
# ----------------------------------------------------------------------

class FusedSegment:
    """One emitted closure: a barrier-free pipeline region."""

    __slots__ = ("index", "role", "fn", "source", "kernels", "inputs")

    def __init__(self, index: int, role: str,
                 fn: Callable[[Any], Dict[Any, int]], source: str,
                 kernels: Tuple[str, ...], inputs: Tuple[str, ...]):
        self.index = index
        self.role = role
        self.fn = fn
        self.source = source
        self.kernels = kernels
        self.inputs = inputs

    def describe(self) -> str:
        parts = [f"segment {self.index} ({self.role}): "
                 f"kernels=[{', '.join(self.kernels)}]"]
        if self.inputs:
            parts.append(f"inputs=[{', '.join(self.inputs)}]")
        return "  ".join(parts)


class CodegenPlan:
    """A stream plan compiled into fused columnar closures.

    Drop-in for :class:`~repro.engine.lower.PhysicalPlan` wherever the
    engine executes, caches, or renders a plan.  The plan is
    data-free — closures read bindings through the per-run
    ``ExecContext`` — so a warm plan-cache entry serves any database
    of the same shape, exactly like a stream plan.
    """

    __slots__ = ("physical", "root_segment", "segments", "barriers")

    def __init__(self, physical: PhysicalPlan,
                 root_segment: Optional[FusedSegment],
                 segments: List[FusedSegment],
                 barriers: List[PhysicalNode]):
        self.physical = physical
        self.root_segment = root_segment
        self.segments = segments
        self.barriers = barriers

    # -- PhysicalPlan surface ------------------------------------------

    @property
    def expr(self):
        return self.physical.expr

    @property
    def statistics_used(self) -> bool:
        return self.physical.statistics_used

    @property
    def root(self) -> PhysicalNode:
        return self.physical.root

    def execute(self, ctx) -> Any:
        if self.root_segment is None:
            # the whole plan is one barrier (powerset/oracle/... at the
            # root): stream execution, including the oracle's non-bag
            # root results
            ctx.stats.barrier_fallbacks += 1
            return self.physical.execute(ctx)
        counts = self.root_segment.fn(ctx)
        ctx.check_size(counts)
        return Bag.from_counts(counts)

    def render(self) -> str:
        lines = [f"codegen: {len(self.segments)} fused segment(s), "
                 f"{len(self.barriers)} barrier leaf(s)"]
        for segment in self.segments:
            lines.append("  " + segment.describe())
        for node in self.barriers:
            lines.append(f"  barrier: {type(node).__name__}  "
                         f"kernel={node.kernel}")
        lines.append("-- lowered plan --")
        lines.append(self.physical.render())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"CodegenPlan({len(self.segments)} segments, "
                f"{len(self.barriers)} barriers)")


# ----------------------------------------------------------------------
# The segment emitter
# ----------------------------------------------------------------------

class _SegmentBuilder:
    """Accumulates one segment's emitted lines and its environment."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.env: Dict[str, Any] = {}
        self.counter = 0
        self.kernels: List[str] = []
        self.inputs: List[str] = []
        #: vars holding fresh kernel outputs this segment owns; scan
        #: views, consts, and memoised shared inputs are borrowed and
        #: must never be mutated in place
        self.owned: set = set()

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def bind(self, prefix: str, obj: Any) -> str:
        name = f"_{prefix}{len(self.env)}"
        self.env[name] = obj
        return name

    def line(self, text: str) -> None:
        self.lines.append(text)

    def own(self, var: str) -> str:
        self.owned.add(var)
        return var

    def record(self, kernel: str, rows_expr: str,
               counts_var: Optional[str] = None) -> None:
        self.kernels.append(kernel)
        if counts_var is not None:
            self.line(f"_record(ctx, {kernel!r}, {rows_expr}, "
                      f"{counts_var})")
        else:
            self.line(f"_record(ctx, {kernel!r}, {rows_expr})")


class _Compiler:
    """Compiles one PhysicalPlan into fused segments + barrier leaves.

    ``semiring`` specialises the emitted code: with ``None`` (the N
    default) every kernel call is emitted exactly as before — the
    fused int fast path pays nothing for the generalisation — while a
    non-N semiring appends a ``_sr`` argument to each kernel call and
    binds the instance (plus its ``one``) into the segment namespace.
    """

    def __init__(self, refs: Optional[Dict[int, int]] = None,
                 semiring=None) -> None:
        self.segments: List[FusedSegment] = []
        self.barriers: List[PhysicalNode] = []
        self._shared_thunks: Dict[int, Callable] = {}
        self._refs = refs if refs is not None else {}
        self.semiring = semiring
        #: appended verbatim to every columnar kernel call; empty for
        #: N keeps the emitted source byte-identical to earlier PRs
        self._srx = "" if semiring is None else ", _sr"

    def _resolve(self, node: PhysicalNode) -> PhysicalNode:
        """Fuse through SharedScans the plan reads only once."""
        while (isinstance(node, SharedScan)
               and self._refs.get(id(node), 0) <= 1):
            node = node.inner
        return node

    # -- segments ------------------------------------------------------

    def compile_segment(self, node: PhysicalNode,
                        role: str) -> FusedSegment:
        builder = _SegmentBuilder()
        result = self._emit_dict(builder, node)
        body = ["def _segment(ctx):", "    _enter(ctx)"]
        body += ["    " + line for line in builder.lines]
        body.append(f"    return {result}")
        source = "\n".join(body) + "\n"
        index = len(self.segments)
        namespace = dict(_RUNTIME)
        namespace.update(builder.env)
        if self.semiring is not None:
            namespace["_sr"] = self.semiring
            namespace["_one"] = self.semiring.one
        exec(compile(source, f"<codegen:segment{index}>", "exec"),
             namespace)
        segment = FusedSegment(index, role, namespace["_segment"],
                               source, tuple(builder.kernels),
                               tuple(builder.inputs))
        self.segments.append(segment)
        return segment

    # -- boundaries ----------------------------------------------------

    def _input_dict(self, builder: _SegmentBuilder,
                    node: PhysicalNode) -> str:
        """A segment input: a shared segment or a barrier leaf."""
        if isinstance(node, SharedScan):
            thunk = self._shared_thunks.get(id(node))
            if thunk is None:
                thunk = self._make_shared_thunk(node)
                self._shared_thunks[id(node)] = thunk
            label = f"shared:{type(node.inner).__name__}"
        else:
            thunk = _make_barrier_thunk(node)
            self.barriers.append(node)
            label = f"barrier:{node.kernel}"
        builder.inputs.append(label)
        name = builder.bind("in", thunk)
        var = builder.fresh("d")
        builder.line(f"{var} = {name}(ctx)")
        return var

    def _make_shared_thunk(self, node: SharedScan) -> Callable:
        if _fusable(node.inner):
            inner = self.compile_segment(node.inner, "shared")
            run = inner.fn
        else:
            # a shared barrier (e.g. a CSE'd powerset): stream it once
            self.barriers.append(node.inner)
            run = _make_barrier_thunk(node.inner)

        def thunk(ctx, node=node, run=run):
            counts = ctx.memo.get(id(node))
            if counts is None:
                counts = run(ctx)
                ctx.memo[id(node)] = counts
                ctx.stats.shared_materialized += 1
            else:
                ctx.stats.shared_reused += 1
            return counts

        return thunk

    # -- recursive emission --------------------------------------------

    def _emit_dict(self, builder: _SegmentBuilder,
                   node: PhysicalNode) -> str:
        """Emit ``node`` and return the variable holding its counts
        dict."""
        node = self._resolve(node)
        if not _fusable(node):
            return self._input_dict(builder, node)

        if isinstance(node, ScanBag):
            var = builder.fresh("d")
            builder.line(f"{var} = _scan(ctx, {node.name!r})")
            builder.record("scan", f"len({var})")
            return var
        if isinstance(node, ConstSource):
            value = node.value
            if self.semiring is not None:
                value = self.semiring.adapt_bag(value)
            const = builder.bind("k", dict(value.items()))
            var = builder.fresh("d")
            builder.line(f"{var} = {const}")
            builder.record("const", f"len({var})")
            return var
        if isinstance(node, HashDifference):
            left = self._emit_dict(builder, node.left)
            right = self._emit_dict(builder, node.right)
            var = builder.fresh("d")
            builder.line(f"{var} = _col.c_monus({left}, {right}"
                         f"{self._srx})")
            builder.record("monus", f"len({var})", var)
            return var
        if isinstance(node, HashIntersect):
            small = self._emit_dict(builder, node.left)
            large = self._emit_dict(builder, node.right)
            var = builder.fresh("d")
            builder.line(
                f"{var} = _col.c_min_intersect({small}, {large}"
                f"{self._srx})")
            builder.record("min-intersect", f"len({var})", var)
            return var
        if isinstance(node, HashMaxUnion):
            left = self._emit_dict(builder, node.left)
            right = self._emit_dict(builder, node.right)
            var = builder.fresh("d")
            builder.line(f"{var} = _col.c_max_union({left}, {right}"
                         f"{self._srx})")
            builder.record("max-union", f"len({var})", var)
            return var
        if isinstance(node, HashDedup):
            pair = self._match_sym_diff(node.child)
            if pair is not None:
                # eps((A - B) (+) (B - A)): one candidate sweep over
                # the C-level key-set union instead of two monus
                # passes, a concatenation, and a dedup
                left = self._emit_dict(builder, pair[0])
                right = self._emit_dict(builder, pair[1])
                var = builder.own(builder.fresh("d"))
                builder.line(
                    f"{var} = _col.c_sym_diff_dedup({left}, {right}"
                    f"{self._srx})")
                builder.record("sym-diff-dedup", f"len({var})", var)
                return var
            merged = self._emit_dedup_union(builder, node.child)
            if merged is not None:
                return merged
            values = self._emit_values(builder, node.child)
            var = builder.own(builder.fresh("d"))
            builder.line(f"{var} = _col.c_dedup({values}{self._srx})")
            builder.record("dedup", f"len({var})", var)
            return var
        if isinstance(node, HashUnion):
            left = self._emit_dict(builder, node.left)
            right = self._emit_dict(builder, node.right)
            var = builder.fresh("d")
            builder.line(f"{var} = _col.c_add_union({left}, {right}"
                         f"{self._srx})")
            builder.record("additive-union", f"len({var})", var)
            return var
        if isinstance(node, MultiplicityScale):
            factor, inner = self._fold_scales(node)
            if self._prefers_dict(inner):
                child = self._emit_dict(builder, inner)
                var = builder.fresh("d")
                builder.line(f"{var} = _col.c_scale_dict({child}, "
                             f"{factor}{self._srx})")
                builder.record("scale", f"len({var})", var)
                return var
        # columns-native nodes (and scale over a columns child):
        # emit columns, then materialise
        values, counts, distinct = self._emit_cols(builder, node)
        var = builder.fresh("d")
        if distinct:
            builder.line(f"{var} = dict(zip({values}, {counts}))")
        else:
            builder.line(
                f"{var} = _col.sum_counts({values}, {counts}"
                f"{self._srx})")
        builder.line(f"ctx.check_size({var})")
        return var

    def _emit_cols(self, builder: _SegmentBuilder, node: PhysicalNode
                   ) -> Tuple[str, str, bool]:
        """Emit ``node`` in column form; returns
        ``(values_var, counts_var, distinct)``."""
        node = self._resolve(node)
        if isinstance(node, HashUnion):
            lv, lc, _ = self._emit_cols(builder, node.left)
            rv, rc, _ = self._emit_cols(builder, node.right)
            values = builder.fresh("v")
            counts = builder.fresh("c")
            builder.line(f"{values} = {lv} + {rv}")
            builder.line(f"{counts} = {lc} + {rc}")
            builder.record("additive-union", f"len({values})")
            return values, counts, False
        if isinstance(node, MultiplicityScale):
            factor, inner = self._fold_scales(node)
            values, counts, distinct = self._emit_cols(builder, inner)
            scaled = builder.fresh("c")
            builder.line(
                f"{scaled} = _col.c_scale({counts}, {factor}"
                f"{self._srx})")
            builder.record("scale", f"len({scaled})")
            return values, scaled, distinct
        if isinstance(node, StreamingMap):
            values, counts, _ = self._emit_cols(builder, node.child)
            if node.fn is not None:
                fn = builder.bind("fn", node.fn)
            else:
                lam = builder.bind("lam", node.lam)
                fn = builder.fresh("f")
                builder.line(f"{fn} = _mklam(ctx, {lam})")
            mapped = builder.fresh("v")
            builder.line(f"{mapped} = _col.c_map({values}, {fn})")
            builder.record("map", f"len({mapped})")
            return mapped, counts, False
        if isinstance(node, StreamingSelect):
            values, counts, distinct = self._emit_cols(builder,
                                                       node.child)
            make = builder.bind("mk", node.make_predicate)
            pred = builder.fresh("p")
            builder.line(f"{pred} = {make}(ctx)")
            out_v = builder.fresh("v")
            out_c = builder.fresh("c")
            builder.line(f"{out_v}, {out_c} = _col.c_select({values}, "
                         f"{counts}, {pred})")
            builder.record("select", f"len({out_v})")
            return out_v, out_c, distinct
        if isinstance(node, NestedLoopProduct):
            pv, pc, _ = self._emit_cols(builder, node.left)
            build = self._emit_dict(builder, node.right)
            out_v = builder.fresh("v")
            out_c = builder.fresh("c")
            builder.line(f"{out_v}, {out_c} = _col.c_product({pv}, "
                         f"{pc}, {build}, _tickof(ctx){self._srx})")
            builder.record("nested-loop-product", f"len({out_v})")
            return out_v, out_c, False
        if isinstance(node, HashJoin):
            if node.build_right:
                probe, build_node = node.left, node.right
                probe_key, build_key = node.left_key, node.right_key
                probe_is_left = True
            else:
                probe, build_node = node.right, node.left
                probe_key, build_key = node.right_key, node.left_key
                probe_is_left = False
            pv, pc, _ = self._emit_cols(builder, probe)
            build = self._emit_dict(builder, build_node)
            pk = builder.bind("pk", HashJoin._key_fn(probe_key))
            bk = builder.bind("bk", HashJoin._key_fn(build_key))
            out_v = builder.fresh("v")
            out_c = builder.fresh("c")
            builder.line(
                f"{out_v}, {out_c} = _col.c_hash_join({pv}, {pc}, "
                f"{build}, {pk}, {bk}, {probe_is_left}, _tickof(ctx)"
                f"{self._srx})")
            builder.record("hash-join", f"len({out_v})")
            return out_v, out_c, False
        # dict-native node (scan, const, monus, dedup, ...) or input:
        # decompose the dict into columns
        counts_var = self._emit_dict(builder, node)
        values = builder.fresh("v")
        counts = builder.fresh("c")
        builder.line(f"{values} = list({counts_var})")
        builder.line(f"{counts} = list({counts_var}.values())")
        return values, counts, True

    def _emit_values(self, builder: _SegmentBuilder,
                     node: PhysicalNode) -> str:
        """The value column (or dict, iterated as keys) of a node —
        all a dedup consumer needs."""
        node = self._resolve(node)
        if self._prefers_dict(node):
            return self._emit_dict(builder, node)
        if isinstance(node, MultiplicityScale):
            return self._emit_values(builder, node.child)
        if isinstance(node, HashUnion):
            # dedup(union): only the values matter, so skip the count
            # columns entirely (the sym-diff hot path)
            left = self._emit_values(builder, node.left)
            right = self._emit_values(builder, node.right)
            values = builder.fresh("v")
            builder.line(f"{values} = list({left})")
            builder.line(f"{values}.extend({right})")
            builder.record("additive-union", f"len({values})")
            return values
        values, _, _ = self._emit_cols(builder, node)
        return values

    def _emit_dedup_union(self, builder: _SegmentBuilder,
                          child: PhysicalNode) -> Optional[str]:
        """``eps(L (+) R)`` where one side is itself a dedup output:
        that side is already distinct with every count 1, so the
        result is a C-level dict merge — and when the base dict is a
        segment-owned kernel output (consumed exactly once inside the
        segment tree), the merge updates it in place, which turns an
        accumulate-and-dedup cascade into one growing dict."""
        child = self._resolve(child)
        if not isinstance(child, HashUnion):
            return None
        base, other = child.left, child.right
        if not self._all_ones(base):
            base, other = other, base
        if not self._all_ones(base):
            return None
        base_var = self._emit_dict(builder, base)
        values = self._emit_values(builder, other)
        if base_var in builder.owned:
            var = base_var
        else:
            var = builder.own(builder.fresh("d"))
            builder.line(f"{var} = dict({base_var})")
        one = "1" if self.semiring is None else "_one"
        builder.line(f"{var}.update(dict.fromkeys({values}, {one}))")
        builder.record("dedup-union", f"len({var})", var)
        return var

    def _all_ones(self, node: PhysicalNode) -> bool:
        """Whether every multiplicity in ``node``'s output is 1.

        Looks through SharedScan wrappers for the *check* only — a
        memoised input still arrives as a borrowed var, so the caller
        copies it before merging."""
        node = self._resolve(node)
        while isinstance(node, SharedScan):
            node = node.inner
        return isinstance(node, HashDedup)

    def _fold_scales(self, node: PhysicalNode
                     ) -> Tuple[int, PhysicalNode]:
        """Compose a chain of multiplicity scales into one factor —
        ``scale(scale(B, j), k) = scale(B, j*k)`` — so a union-doubling
        cascade costs one count-column pass instead of one per level."""
        factor = 1
        while isinstance(node, MultiplicityScale):
            factor *= node.factor
            node = self._resolve(node.child)
        return factor, node

    def _match_sym_diff(self, child: PhysicalNode
                        ) -> Optional[Tuple[PhysicalNode,
                                            PhysicalNode]]:
        """Match ``(A - B) (+) (B - A)`` under a dedup; returns
        ``(A, B)`` when both sides read the same two sources."""
        child = self._resolve(child)
        if not isinstance(child, HashUnion):
            return None
        left = self._resolve(child.left)
        right = self._resolve(child.right)
        if not (isinstance(left, HashDifference)
                and isinstance(right, HashDifference)):
            return None
        if (self._same_source(left.left, right.right)
                and self._same_source(left.right, right.left)):
            return left.left, left.right
        return None

    def _same_source(self, left: PhysicalNode,
                     right: PhysicalNode) -> bool:
        """Whether two subplans provably read the same bag: the same
        (CSE-shared) node object, or scans of the same binding."""
        left = self._resolve(left)
        right = self._resolve(right)
        if left is right:
            return True
        return (isinstance(left, ScanBag) and isinstance(right, ScanBag)
                and left.name == right.name)

    def _prefers_dict(self, node: PhysicalNode) -> bool:
        """Whether a node's cheapest output currency is a counts
        dict."""
        node = self._resolve(node)
        if not _fusable(node):
            return True  # segment inputs arrive as dicts
        if isinstance(node, _DICT_NATIVE):
            return True
        if isinstance(node, (MultiplicityScale, StreamingSelect)):
            return self._prefers_dict(node.child)
        return False


def _make_barrier_thunk(node: PhysicalNode) -> Callable:
    def thunk(ctx, node=node):
        ctx.stats.barrier_fallbacks += 1
        return ctx.collect(node)
    return thunk


def compile_codegen(plan: PhysicalPlan,
                    semiring=None) -> CodegenPlan:
    """Compile a lowered stream plan into fused columnar closures.

    ``semiring=None`` (N) emits byte-identical source to earlier
    revisions; a non-N instance specialises every kernel call with a
    ``_sr`` argument (cache keys include the semiring, so the two
    specialisations never collide in the plan cache).
    """
    compiler = _Compiler(_shared_refs(plan.root), semiring=semiring)
    root = compiler._resolve(plan.root)
    root_segment = None
    if _fusable(root):
        root_segment = compiler.compile_segment(root, "root")
    return CodegenPlan(plan, root_segment, compiler.segments,
                       compiler.barriers)
