"""Fault tolerance for the morsel-driven parallel executor.

PR 4's exchange is strictly fail-fast: one worker failure cancels the
shared token and the whole query dies.  That is the right contract for
*governed* failures — a step budget is deterministic, retrying it is
wasted work — but the wrong one for infrastructure failures: a worker
process being OOM-killed says nothing about the query.  This module is
the policy layer that tells those apart and decides what the exchange
does next:

1. **Per-morsel retry** — a morsel that died from a transient fault
   (:class:`~repro.guard.WorkerCrash`, a broken pool) is resubmitted
   on a new worker with seeded backoff/jitter.  Idempotence is
   structural: a segment program is a pure function of its immutable
   input shards (:func:`~repro.engine.parallel.partition.
   execute_program` never mutates a slot), so re-running it cannot
   double-count.
2. **Worker-loss recovery** — under the process backend a dead child
   condemns the whole ``ProcessPoolExecutor``; the exchange respawns
   the pool once and reschedules only the unfinished shards.
3. **The degradation ladder** — when retries and respawns are
   exhausted the exchange *demotes* instead of dying:
   process → thread → serial inline execution (which cannot suffer
   worker loss).  Optionally (:attr:`ResilienceConfig.replan`) the
   engine entry point adds a final rung: recompile at a lower opt
   level via :class:`~repro.planner.PassConfig` and run serially.
   Every demotion is recorded in
   :class:`~repro.engine.physical.EngineStats` and surfaced by
   ``:explain`` — degraded answers are visible, never silent.

The whole layer is opt-in: with ``resilience=None`` (the default) the
exchange keeps its original fail-fast code path, byte for byte.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Optional

from repro.guard.faults import ChaosPlan, WorkerCrash
from repro.guard.retry import RetryPolicy

__all__ = ["ResilienceConfig", "LADDER", "next_rung",
           "is_transient_fault", "resolve_resilience",
           "DEFAULT_RESILIENCE"]

#: The degradation ladder, most- to least-parallel.  A backend demotes
#: to the rung after its own; ``serial`` is the floor (inline
#: execution under the parent governor cannot lose a worker).
LADDER = ("process", "thread", "serial")


def next_rung(mode: str) -> Optional[str]:
    """The rung below ``mode``, or ``None`` at the floor."""
    position = LADDER.index(mode)
    if position + 1 >= len(LADDER):
        return None
    return LADDER[position + 1]


def is_transient_fault(error: BaseException) -> bool:
    """Is this a retryable infrastructure failure (as opposed to a
    governed verdict or a genuine bug)?  Worker crashes, broken pools,
    and OS-level failures to spawn/feed a worker qualify; everything
    else keeps the fail-fast contract."""
    return isinstance(error, (WorkerCrash, BrokenExecutor, OSError))


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance policy for one parallel run.

    ``retry`` drives per-morsel retry: ``attempts`` is the total
    tries per morsel, ``backoff``/``multiplier``/``jitter`` shape the
    delay between them (jitter drawn from an RNG seeded with
    ``seed``, so runs replay).  ``respawn_pool`` allows one process
    pool respawn after worker loss; ``max_demotions`` caps ladder
    descent (2 covers process → thread → serial).  ``replan`` adds
    the engine-level final rung — recompile at opt level 1 and run
    serially when even the ladder failed.  ``chaos`` attaches a
    :class:`~repro.guard.ChaosPlan` for fault-injection runs.
    """

    retry: RetryPolicy = RetryPolicy(attempts=3, backoff=0.0,
                                     jitter=0.5)
    seed: int = 0
    respawn_pool: bool = True
    max_demotions: int = 2
    replan: bool = False
    chaos: Optional[ChaosPlan] = None

    def __post_init__(self) -> None:
        if self.max_demotions < 0:
            raise ValueError("max_demotions must be >= 0")


#: The policy ``resilience=True`` resolves to.
DEFAULT_RESILIENCE = ResilienceConfig()


def resolve_resilience(resilience) -> Optional[ResilienceConfig]:
    """Normalise the ``evaluate(..., resilience=...)`` argument:
    ``None``/``False`` → off, ``True`` → :data:`DEFAULT_RESILIENCE`,
    a config → itself."""
    if resilience is None or resilience is False:
        return None
    if resilience is True:
        return DEFAULT_RESILIENCE
    if isinstance(resilience, ResilienceConfig):
        return resilience
    raise TypeError("resilience must be None, a bool, or a "
                    f"ResilienceConfig, got {type(resilience).__name__}")
