"""Complex-object structures for the GV90 games and the CALC1 calculus.

A *structure* (Section 5) consists of a finite set of atomic constants
and named relations whose tuples hold complex objects — in the Fig. 1
experiments, graph nodes are *sets of atoms* and the edge relation
holds pairs of such sets.

Sets are represented as duplicate-free :class:`~repro.core.bag.Bag`
values, so the whole value model (hashing, canonical order, typing) is
shared with the algebra.  The module provides:

* :class:`CoStructure` — atoms + named relations over complex objects;
* :func:`dom` — the active domain ``dom(T, A)`` of objects of type T
  constructible from the structure's atoms (the quantification range
  of CALC1 and the move set of the game);
* the logical predicates (equality, membership, containment) that both
  the calculus and the game's partial-isomorphism check interpret.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import BagTypeError, ResourceLimitError
from repro.core.types import (
    AtomType, BagType, TupleType, Type, U,
)

__all__ = ["CoStructure", "dom", "dom_size", "set_of", "atoms_of",
           "objects_atoms", "SET_OF_ATOMS"]

#: The node type of the Fig. 1 graphs: sets of atoms.
SET_OF_ATOMS = BagType(U)


def set_of(*elements: Any) -> Bag:
    """Build a set (duplicate-free bag) from elements."""
    return Bag.from_counts({element: 1 for element in set(elements)})


def atoms_of(value: Any) -> FrozenSet[Any]:
    """Atoms occurring in a complex object."""
    from repro.core.database import active_domain
    return active_domain(value)


def objects_atoms(objects) -> FrozenSet[Any]:
    """Union of the atoms of several objects."""
    atoms: set = set()
    for obj in objects:
        atoms |= atoms_of(obj)
    return frozenset(atoms)


@dataclass(frozen=True)
class CoStructure:
    """A finite structure with complex-object relations.

    ``relations`` maps a name to a frozenset of Python tuples of
    complex objects (e.g. the edge relation of a graph whose nodes are
    sets of atoms).
    """

    atoms: FrozenSet[Any]
    relations: Mapping[str, FrozenSet[Tuple[Any, ...]]]

    @classmethod
    def build(cls, atoms, relations) -> "CoStructure":
        frozen = {name: frozenset(tuple(t) for t in tuples)
                  for name, tuples in relations.items()}
        return cls(atoms=frozenset(atoms), relations=frozen)

    def relation(self, name: str) -> FrozenSet[Tuple[Any, ...]]:
        if name not in self.relations:
            raise BagTypeError(f"structure has no relation {name!r}")
        return self.relations[name]

    def all_objects(self) -> FrozenSet[Any]:
        """Objects occurring in the relations (tuple components)."""
        found: set = set(self.atoms)
        for tuples in self.relations.values():
            for entry in tuples:
                found.update(entry)
        return frozenset(found)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(f"{name}({len(tuples)})"
                         for name, tuples in self.relations.items())
        return f"CoStructure(|A|={len(self.atoms)}, {rels})"


def dom_size(object_type: Type, n_atoms: int) -> int:
    """Cardinality of ``dom(T, A)`` for ``|A| = n_atoms`` — computed
    without materialisation, to guard searches against blow-ups."""
    if isinstance(object_type, AtomType):
        return n_atoms
    if isinstance(object_type, TupleType):
        size = 1
        for attr in object_type.attributes:
            size *= dom_size(attr, n_atoms)
        return size
    if isinstance(object_type, BagType):
        return 2 ** dom_size(object_type.element, n_atoms)
    raise BagTypeError(f"dom of unsupported type {object_type!r}")


def dom(object_type: Type, atoms, budget: int = 1 << 20) -> List[Any]:
    """Materialise the active domain ``dom(T, A)``: all objects of type
    ``T`` built from the given atoms.

    Bag types denote *sets* here (CALC1 quantifies over sets of
    tuples of atoms), so ``dom({{T}}, A)`` is the powerset of
    ``dom(T, A)``.  ``budget`` bounds the output size.
    """
    atoms = sorted(set(atoms), key=canonical_key)
    total = dom_size(object_type, len(atoms))
    if total > budget:
        raise ResourceLimitError(
            f"dom({object_type!r}) over {len(atoms)} atoms holds {total} "
            f"objects, budget is {budget}")
    return list(_dom_iter(object_type, atoms))


def _dom_iter(object_type: Type, atoms: List[Any]) -> Iterator[Any]:
    if isinstance(object_type, AtomType):
        yield from atoms
        return
    if isinstance(object_type, TupleType):
        pools = [list(_dom_iter(attr, atoms))
                 for attr in object_type.attributes]
        for combo in itertools.product(*pools):
            yield Tup(*combo)
        return
    if isinstance(object_type, BagType):
        elements = list(_dom_iter(object_type.element, atoms))
        for r in range(len(elements) + 1):
            for subset in itertools.combinations(elements, r):
                yield Bag.from_counts({item: 1 for item in subset})
        return
    raise BagTypeError(f"dom of unsupported type {object_type!r}")
