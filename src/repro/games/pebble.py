"""The GV90 game for complex-object structures (Theorem 5.3).

The game with ``k`` moves with respect to a type set ``T`` is played on
two structures ``A`` and ``A'``.  Each round the *spoiler* picks an
object of some type in ``T`` from the completion of either structure;
the *duplicator* answers with an object of the same type in the other
structure.  The duplicator wins a play when the chosen pairs induce a
partial isomorphism of the completed structures; the duplicator *wins
the game* when it has a winning strategy against every spoiler play.

By [GV90] (Theorem 5.3 in the paper), the duplicator wins the k-move
game iff no CALC1 sentence with k variables (equivalently, no RALG^2
expression translated to quantifier depth k) distinguishes the two
structures.  This module decides the game exactly by minimax search
with memoisation; move ordering (try the *same* object in the opposite
structure first) makes the Fig. 1 instances tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.types import Type, type_of
from repro.games.structures import CoStructure, dom

__all__ = ["partial_isomorphism", "GameResult", "duplicator_wins",
           "winning_spoiler_line"]


def partial_isomorphism(left: CoStructure, right: CoStructure,
                        pairs: Sequence[Tuple[Any, Any]]) -> bool:
    """Do the chosen pairs induce a partial isomorphism?

    Requirements (the substructure-isomorphism of [GV90]):

    * the pairing is a well-defined bijection on the chosen objects,
      preserving types;
    * the logical predicates — equality, membership, containment —
      agree between corresponding objects (tuple components are closed
      over, extending the map by ``F(a.i) = f(a).i``);
    * every nonlogical relation agrees on every tuple of chosen
      objects.
    """
    closure = _close_under_components(pairs)
    if closure is None:
        return False
    mapping: Dict[Any, Any] = {}
    reverse: Dict[Any, Any] = {}
    for source, target in closure:
        if type_of(source) != type_of(target):
            return False
        if source in mapping and mapping[source] != target:
            return False
        if target in reverse and reverse[target] != source:
            return False
        mapping[source] = target
        reverse[target] = source

    chosen = list(mapping.items())
    for source_a, target_a in chosen:
        for source_b, target_b in chosen:
            if not _logical_predicates_agree(source_a, source_b,
                                             target_a, target_b):
                return False

    for name in set(left.relations) | set(right.relations):
        left_tuples = left.relations.get(name, frozenset())
        right_tuples = right.relations.get(name, frozenset())
        arities = {len(t) for t in left_tuples} | {
            len(t) for t in right_tuples}
        for arity in arities:
            if not _relation_agrees(left_tuples, right_tuples, mapping,
                                    arity):
                return False
    return True


def _close_under_components(
        pairs: Sequence[Tuple[Any, Any]]
) -> Optional[List[Tuple[Any, Any]]]:
    """Extend the pairing with tuple components (F(a.i) = f(a).i).
    Returns None when arities clash."""
    closure: List[Tuple[Any, Any]] = []
    queue = list(pairs)
    while queue:
        source, target = queue.pop()
        closure.append((source, target))
        if isinstance(source, Tup) or isinstance(target, Tup):
            if (not isinstance(source, Tup)
                    or not isinstance(target, Tup)
                    or source.arity != target.arity):
                return None
            queue.extend(zip(source.items(), target.items()))
    return closure


def _logical_predicates_agree(source_a: Any, source_b: Any,
                              target_a: Any, target_b: Any) -> bool:
    """Equality, membership, and containment must transfer."""
    if (source_a == source_b) != (target_a == target_b):
        return False
    # membership: o in S  (S a set of the right element type)
    if isinstance(source_b, Bag) and isinstance(target_b, Bag):
        if (source_a in source_b) != (target_a in target_b):
            return False
        if isinstance(source_a, Bag) and isinstance(target_a, Bag):
            if (source_a.is_subbag_of(source_b)
                    != target_a.is_subbag_of(target_b)):
                return False
    return True


def _relation_agrees(left_tuples: FrozenSet, right_tuples: FrozenSet,
                     mapping: Dict[Any, Any], arity: int) -> bool:
    chosen = list(mapping)
    if not chosen:
        return True
    return _relation_agrees_rec(left_tuples, right_tuples, mapping,
                                arity, ())


def _relation_agrees_rec(left_tuples, right_tuples, mapping, arity,
                         prefix) -> bool:
    if len(prefix) == arity:
        left_entry = tuple(obj for obj, _ in prefix)
        right_entry = tuple(img for _, img in prefix)
        return ((left_entry in left_tuples)
                == (right_entry in right_tuples))
    for obj, img in mapping.items():
        if not _relation_agrees_rec(left_tuples, right_tuples, mapping,
                                    arity, prefix + ((obj, img),)):
            return False
    return True


@dataclass
class GameResult:
    """Outcome of solving one game instance."""

    duplicator_wins: bool
    moves: int
    positions_explored: int


def duplicator_wins(left: CoStructure, right: CoStructure,
                    types: Sequence[Type], k: int,
                    dom_budget: int = 1 << 16,
                    governor=None) -> GameResult:
    """Decide the k-move game w.r.t. the type set ``types`` exactly.

    Minimax: the spoiler needs one move with no good duplicator reply;
    the duplicator needs one reply per spoiler move.  Positions are
    memoised up to reordering of the chosen pairs.  The search space
    is exponential in ``k`` (Theorem 5.3 territory), so an optional
    :class:`~repro.guard.ResourceGovernor` is ticked once per explored
    position — step budgets, deadlines, and cancellation all apply.
    """
    left_domains = {t: dom(t, left.atoms, budget=dom_budget)
                    for t in types}
    right_domains = {t: dom(t, right.atoms, budget=dom_budget)
                     for t in types}
    memo: Dict[Tuple, bool] = {}
    counter = {"positions": 0}

    def dup_wins(pairs: Tuple[Tuple[Any, Any], ...],
                 moves_left: int) -> bool:
        if not partial_isomorphism(left, right, pairs):
            return False
        if moves_left == 0:
            return True
        key = (moves_left,
               tuple(sorted(((canonical_key(a), canonical_key(b))
                             for a, b in pairs))))
        if key in memo:
            return memo[key]
        if governor is not None:
            governor.tick()
        counter["positions"] += 1
        verdict = True
        for object_type in types:
            for spoiler_side in ("left", "right"):
                picks = (left_domains if spoiler_side == "left"
                         else right_domains)[object_type]
                replies = (right_domains if spoiler_side == "left"
                           else left_domains)[object_type]
                for pick in picks:
                    if not _has_reply(pairs, moves_left, pick, replies,
                                      spoiler_side, dup_wins):
                        verdict = False
                        break
                if not verdict:
                    break
            if not verdict:
                break
        memo[key] = verdict
        return verdict

    result = dup_wins((), k)
    return GameResult(duplicator_wins=result, moves=k,
                      positions_explored=counter["positions"])


def _has_reply(pairs, moves_left, pick, replies, spoiler_side,
               dup_wins) -> bool:
    """Does the duplicator have a winning reply to ``pick``?

    Tries the *identical* object first — on the Fig. 1 graphs the two
    structures share their node universe, so mirroring is usually
    right — then the rest in canonical order.
    """
    ordered = sorted(replies, key=lambda r: (r != pick,
                                             canonical_key(r)))
    for reply in ordered:
        new_pair = ((pick, reply) if spoiler_side == "left"
                    else (reply, pick))
        if dup_wins(pairs + (new_pair,), moves_left - 1):
            return True
    return False


def winning_spoiler_line(left: CoStructure, right: CoStructure,
                         types: Sequence[Type], k: int,
                         dom_budget: int = 1 << 16,
                         governor=None) -> Optional[list]:
    """When the spoiler wins the k-move game, exhibit one winning line:
    a list of ``(side, object)`` picks after which *every* duplicator
    reply loses.  Returns ``None`` when the duplicator wins.

    This is the constructive counterpart of :func:`duplicator_wins`,
    useful for explaining *why* two structures are distinguishable —
    the exhibited objects pinpoint the difference (e.g. the two
    endpoints of the edge present in only one structure).
    """
    left_domains = {t: dom(t, left.atoms, budget=dom_budget)
                    for t in types}
    right_domains = {t: dom(t, right.atoms, budget=dom_budget)
                     for t in types}

    def dup_wins(pairs, moves_left) -> bool:
        if governor is not None:
            governor.tick()
        if not partial_isomorphism(left, right, pairs):
            return False
        if moves_left == 0:
            return True
        for object_type in types:
            for side in ("left", "right"):
                picks = (left_domains if side == "left"
                         else right_domains)[object_type]
                replies = (right_domains if side == "left"
                           else left_domains)[object_type]
                for pick in picks:
                    if not any(dup_wins(
                            pairs + (((pick, reply) if side == "left"
                                      else (reply, pick)),),
                            moves_left - 1) for reply in replies):
                        return False
        return True

    def spoiler_line(pairs, moves_left):
        """Return the winning picks from this position, or None."""
        if not partial_isomorphism(left, right, pairs):
            return []          # already won, no more picks needed
        if moves_left == 0:
            return None
        for object_type in types:
            for side in ("left", "right"):
                picks = (left_domains if side == "left"
                         else right_domains)[object_type]
                replies = (right_domains if side == "left"
                           else left_domains)[object_type]
                for pick in picks:
                    # a winning pick defeats every duplicator reply
                    if all(not dup_wins(
                            pairs + (((pick, reply) if side == "left"
                                      else (reply, pick)),),
                            moves_left - 1) for reply in replies):
                        return [(side, pick)]
        return None

    line = spoiler_line((), k)
    return line
