"""GV90 pebble games and the Figure 1 star-graph families (Section 5)."""

from repro.games.pebble import (
    GameResult, duplicator_wins, partial_isomorphism,
    winning_spoiler_line,
)
from repro.games.star_graphs import (
    StarGraphPair, build_star_graphs, center_node, edge_bag,
    in_out_families, satisfies_property_one,
)
from repro.games.structures import CoStructure, SET_OF_ATOMS, dom, dom_size, set_of

__all__ = [
    "GameResult", "duplicator_wins", "partial_isomorphism",
    "winning_spoiler_line",
    "StarGraphPair", "build_star_graphs", "center_node", "edge_bag",
    "in_out_families", "satisfies_property_one",
    "CoStructure", "SET_OF_ATOMS", "dom", "dom_size", "set_of",
]
