"""The Figure 1 star graphs and the In_n / Out_n families (Lemma 5.4).

Lemma 5.4 separates BALG^2 from RALG^2 on graphs whose nodes are *sets
of atomic constants*.  The construction:

* the domain is ``{1..n}`` (n even);
* the central node ``alpha`` is the full set ``{1..n}``;
* the other ``2^(n/2)`` nodes are n/2-subsets of the domain, split
  into two families ``In_n`` and ``Out_n`` of equal size satisfying
  the *probabilistic property (1)*: every atom belongs to exactly half
  of the sets of each family;
* ``G`` has an edge from every ``In`` node to ``alpha`` and from
  ``alpha`` to every ``Out`` node (so alpha's in- and out-degrees are
  equal); ``G'`` inverts one outgoing edge (so the in-degree wins).

The recursive definition of the families (basis n=4, adding atoms n+1
and n+2 crosswise) is implemented verbatim, together with the property
(1) checker and both the game-structure and bag-algebra views of the
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import BagTypeError
from repro.games.structures import CoStructure, set_of

__all__ = [
    "in_out_families", "satisfies_property_one", "StarGraphPair",
    "build_star_graphs", "center_node", "edge_bag",
]


def in_out_families(n: int) -> Tuple[List[Bag], List[Bag]]:
    """The recursive ``In_n`` / ``Out_n`` construction of Lemma 5.4.

    Basis (n=4): ``In = {{1,2},{3,4}}``, ``Out = {{1,3},{2,4}}``.
    Induction (n -> n+2)::

        In_{n+2}  = {S u {n+1} | S in In_n } u {S u {n+2} | S in Out_n}
        Out_{n+2} = {S u {n+1} | S in Out_n} u {S u {n+2} | S in In_n }

    Every member has cardinality n/2 and the two families are disjoint.
    """
    if n < 4 or n % 2 != 0:
        raise BagTypeError("the construction needs an even n >= 4")
    ins = [set_of(1, 2), set_of(3, 4)]
    outs = [set_of(1, 3), set_of(2, 4)]
    size = 4
    while size < n:
        grown_ins = ([_with(s, size + 1) for s in ins]
                     + [_with(s, size + 2) for s in outs])
        grown_outs = ([_with(s, size + 1) for s in outs]
                      + [_with(s, size + 2) for s in ins])
        ins, outs = grown_ins, grown_outs
        size += 2
    return ins, outs


def _with(subset: Bag, atom: int) -> Bag:
    counts = dict(subset.counts())
    counts[atom] = 1
    return Bag.from_counts(counts)


def satisfies_property_one(family: List[Bag], n: int) -> bool:
    """Property (1): ``P(i in S | S in family) = 1/2`` for every atom
    ``i`` of the domain ``{1..n}``."""
    if not family:
        return False
    half = len(family) / 2
    for atom in range(1, n + 1):
        containing = sum(1 for subset in family if atom in subset)
        if containing != half:
            return False
    return True


@dataclass(frozen=True)
class StarGraphPair:
    """The pair (G, G') of Lemma 5.4 plus its metadata."""

    n: int
    balanced: CoStructure        # G: in-degree(alpha) = out-degree
    unbalanced: CoStructure      # G': in-degree(alpha) > out-degree
    center: Bag
    in_nodes: Tuple[Bag, ...]
    out_nodes: Tuple[Bag, ...]


def center_node(n: int) -> Bag:
    """The central node alpha = {1..n}."""
    return set_of(*range(1, n + 1))


def build_star_graphs(n: int) -> StarGraphPair:
    """Build G and G' for domain size n (even, >= 4)."""
    ins, outs = in_out_families(n)
    alpha = center_node(n)
    atoms = frozenset(range(1, n + 1))

    balanced_edges = ({(node, alpha) for node in ins}
                      | {(alpha, node) for node in outs})
    # Invert one edge deterministically: the canonically-least Out node.
    flipped = min(outs, key=canonical_key)
    unbalanced_edges = (set(balanced_edges)
                        - {(alpha, flipped)}) | {(flipped, alpha)}

    return StarGraphPair(
        n=n,
        balanced=CoStructure.build(atoms, {"E": balanced_edges}),
        unbalanced=CoStructure.build(atoms, {"E": unbalanced_edges}),
        center=alpha,
        in_nodes=tuple(ins),
        out_nodes=tuple(outs),
    )


def edge_bag(structure: CoStructure, relation: str = "E") -> Bag:
    """The edge relation as a bag of 2-tuples of node sets — the
    BALG^2 input on which the in-degree query of Theorem 5.2 runs."""
    return Bag.from_counts(
        {Tup(src, dst): 1 for src, dst in structure.relation(relation)})
