"""Operational semantics of every BALG operator (Section 3).

Each operator is a pure function from immutable values to immutable
values.  The functions check the polymorphic typing restrictions stated
in the paper (e.g. union applies only to bags of the same type,
Cartesian product only to bags of tuples) and raise
:class:`~repro.core.errors.BagTypeError` otherwise.

Operator inventory (paper notation -> function):

===================  =======================  =============================
Basic                ``B (+) B'``             :func:`additive_union`
                     ``B - B'``               :func:`subtraction`
                     ``B u B'`` (maximal)     :func:`max_union`
                     ``B n B'``               :func:`intersection`
Constructive         ``tau(o1..ok)``          :func:`tupling`
                     ``beta(o)``              :func:`bagging`
                     ``B x B'``               :func:`cartesian`
                     ``P(B)``                 :func:`powerset`
Destructive          ``alpha_i(o)``           :func:`attribute`
                     ``delta(B)``             :func:`bag_destroy`
Filters              ``MAP_phi(B)``           :func:`map_bag`
                     ``sigma_{phi=phi'}(B)``  :func:`select`
                     ``eps(B)``               :func:`dedup`
Section 5 variant    ``P_b(B)`` (powerbag)    :func:`powerbag`
===================  =======================  =============================

The powerset of a bag with counts ``{e_i: c_i}`` has exactly
``prod(c_i + 1)`` distinct subbags, each with multiplicity one; the
powerbag gives subbag ``{e_i: j_i}`` multiplicity ``prod C(c_i, j_i)``,
summing to ``2^|B|`` (Definition 5.1).  Both are materialised lazily via
generators so callers can impose budgets before the exponential blow-up.
"""

from __future__ import annotations

import itertools
from math import comb, prod
from typing import Any, Callable, Dict, Iterator, Optional

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError, BudgetExceeded
from repro.core.semiring import Semiring
from repro.core.types import type_of, unify

__all__ = [
    "additive_union", "subtraction", "max_union", "intersection",
    "tupling", "bagging", "cartesian", "powerset", "powerbag",
    "attribute", "bag_destroy", "map_bag", "select", "dedup",
    "project", "member", "contains_subbag", "subbags",
    "powerset_cardinality", "powerbag_total", "powerbag_multiplicity",
]


# ----------------------------------------------------------------------
# Typing helpers
# ----------------------------------------------------------------------

def _require_bag(value: Any, operation: str) -> Bag:
    if not isinstance(value, Bag):
        raise BagTypeError(
            f"{operation} expects a bag, got {type(value).__name__}")
    return value


def _require_same_type(left: Bag, right: Bag, operation: str) -> None:
    """Union-family operators apply only to bags of the same type."""
    try:
        unify(type_of(left), type_of(right))
    except BagTypeError as exc:
        raise BagTypeError(
            f"{operation} requires bags of the same type: "
            f"{type_of(left)!r} vs {type_of(right)!r}") from exc


def _require_integer_counts(sr: Optional[Semiring],
                            operation: str) -> None:
    """Powerset-family operators enumerate subbags by integer
    multiplicity, which only makes sense for integer-count semirings
    (N, Bool)."""
    if sr is not None and not sr.integer_counts:
        raise BagTypeError(
            f"{operation} is not defined over the {sr.name} semiring "
            "(non-integer multiplicities)")


# ----------------------------------------------------------------------
# Basic bag operations
# ----------------------------------------------------------------------

def additive_union(left: Bag, right: Bag,
                   sr: Optional[Semiring] = None) -> Bag:
    """``B (+) B'``: multiplicities add (n = p + q)."""
    _require_bag(left, "additive union")
    _require_bag(right, "additive union")
    _require_same_type(left, right, "additive union")
    counts: Dict[Any, int]
    if sr is None:
        counts = dict(left.counts())
        for element, count in right.items():
            counts[element] = counts.get(element, 0) + count
    else:
        coerce, add = sr.coerce, sr.add
        counts = {element: coerce(count)
                  for element, count in left.items()}
        for element, count in right.items():
            count = coerce(count)
            existing = counts.get(element)
            counts[element] = (count if existing is None
                               else add(existing, count))
    return Bag.from_counts(counts)


def subtraction(left: Bag, right: Bag,
                sr: Optional[Semiring] = None) -> Bag:
    """``B - B'``: proper bag difference (n = max(0, p - q)); in a
    general semiring the monus ``p ∸ q``."""
    _require_bag(left, "subtraction")
    _require_bag(right, "subtraction")
    _require_same_type(left, right, "subtraction")
    counts: Dict[Any, int] = {}
    if sr is None:
        for element, count in left.items():
            remaining = count - right.multiplicity(element)
            if remaining > 0:
                counts[element] = remaining
    else:
        coerce, monus, is_zero = sr.coerce, sr.monus, sr.is_zero
        for element, count in left.items():
            remaining = monus(coerce(count),
                              coerce(right.multiplicity(element)))
            if not is_zero(remaining):
                counts[element] = remaining
    return Bag.from_counts(counts)


def max_union(left: Bag, right: Bag,
              sr: Optional[Semiring] = None) -> Bag:
    """``B u B'`` (maximal union): n = max(p, q) — the natural-order
    join in a general semiring."""
    _require_bag(left, "maximal union")
    _require_bag(right, "maximal union")
    _require_same_type(left, right, "maximal union")
    counts: Dict[Any, int]
    if sr is None:
        counts = dict(left.counts())
        for element, count in right.items():
            counts[element] = max(counts.get(element, 0), count)
    else:
        coerce, join = sr.coerce, sr.max_
        counts = {element: coerce(count)
                  for element, count in left.items()}
        for element, count in right.items():
            count = coerce(count)
            existing = counts.get(element)
            counts[element] = (count if existing is None
                               else join(existing, count))
    return Bag.from_counts(counts)


def intersection(left: Bag, right: Bag,
                 sr: Optional[Semiring] = None) -> Bag:
    """``B n B'``: n = min(p, q) — the natural-order meet in a general
    semiring."""
    _require_bag(left, "intersection")
    _require_bag(right, "intersection")
    _require_same_type(left, right, "intersection")
    counts: Dict[Any, int] = {}
    if sr is None:
        for element, count in left.items():
            other = right.multiplicity(element)
            if other > 0:
                counts[element] = min(count, other)
    else:
        coerce, meet = sr.coerce, sr.min_
        for element, count in left.items():
            if element in right:
                counts[element] = meet(
                    coerce(count), coerce(right.multiplicity(element)))
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# Constructive operations
# ----------------------------------------------------------------------

def tupling(*objects: Any) -> Tup:
    """``tau(o1, ..., ok)``: build a k-ary tuple."""
    return Tup(*objects)


def bagging(obj: Any) -> Bag:
    """``beta(o)``: the singleton bag ``[[o]]`` (o 1-belongs)."""
    return Bag.of(obj)


def cartesian(left: Bag, right: Bag,
              sr: Optional[Semiring] = None) -> Bag:
    """``B x B'``: bags of tuples; multiplicities multiply (n = p*q)
    and the tuples are concatenated (arity k + k')."""
    _require_bag(left, "cartesian product")
    _require_bag(right, "cartesian product")
    for bag, side in ((left, "left"), (right, "right")):
        for element in bag.distinct():
            if not isinstance(element, Tup):
                raise BagTypeError(
                    f"cartesian product requires bags of tuples; "
                    f"{side} operand contains {type(element).__name__}")
    counts: Dict[Any, int] = {}
    if sr is None:
        for ltuple, lcount in left.items():
            for rtuple, rcount in right.items():
                counts[ltuple.concat(rtuple)] = lcount * rcount
    else:
        coerce, mul = sr.coerce, sr.mul
        for ltuple, lcount in left.items():
            lcount = coerce(lcount)
            for rtuple, rcount in right.items():
                counts[ltuple.concat(rtuple)] = mul(
                    lcount, coerce(rcount))
    return Bag.from_counts(counts)


def subbags(bag: Bag) -> Iterator[Bag]:
    """Enumerate the distinct subbags of ``bag`` lazily.

    A subbag picks ``j_i`` copies of each distinct element ``e_i`` with
    ``0 <= j_i <= c_i``; there are ``prod(c_i + 1)`` of them.
    """
    elements = list(bag.items())
    ranges = [range(count + 1) for _, count in elements]
    for choice in itertools.product(*ranges):
        counts = {element: picked
                  for (element, _), picked in zip(elements, choice)
                  if picked > 0}
        yield Bag.from_counts(counts)


def powerset_cardinality(bag: Bag) -> int:
    """``|P(B)| = prod(c_i + 1)`` without materialising anything.

    For the single-constant bag of Section 1 this is ``n + 1``, the
    number the paper contrasts with the powerbag's ``2^n``.
    """
    return prod(count + 1 for _, count in bag.items())


def powerset(bag: Bag, budget: Optional[int] = None,
             sr: Optional[Semiring] = None) -> Bag:
    """``P(B)``: the bag of all subbags of B, each with multiplicity 1.

    ``budget`` caps the number of subbags materialised;
    :class:`~repro.core.errors.BudgetExceeded` (a
    :class:`ResourceLimitError`) is raised when the true cardinality
    exceeds it (checked *before* materialisation).
    """
    _require_bag(bag, "powerset")
    _require_integer_counts(sr, "powerset")
    cardinality = powerset_cardinality(bag)
    if budget is not None and cardinality > budget:
        raise BudgetExceeded(
            f"powerset would contain {cardinality} subbags, "
            f"budget is {budget}", budget="powerset", limit=budget,
            observed=cardinality)
    return Bag.from_counts({subbag: 1 for subbag in subbags(bag)})


def powerbag_total(bag: Bag) -> int:
    """``|P_b(B)| = 2^|B|`` counting duplicates (Definition 5.1)."""
    return 2 ** bag.cardinality


def powerbag_multiplicity(bag: Bag, subbag: Bag) -> int:
    """Multiplicity of ``subbag`` inside ``P_b(bag)``:
    ``prod C(c_i, j_i)`` over distinct elements.

    Follows from Definition 5.1: tagging the ``c_i`` occurrences of
    ``e_i`` apart, a subbag retaining ``j_i`` of them arises from
    ``C(c_i, j_i)`` distinct tag choices.
    """
    if not subbag.is_subbag_of(bag):
        return 0
    return prod(comb(count, subbag.multiplicity(element))
                for element, count in bag.items())


def powerbag(bag: Bag, budget: Optional[int] = None,
             sr: Optional[Semiring] = None) -> Bag:
    """``P_b(B)``: the duplicate-aware powerset (Definition 5.1).

    Its output is a *bag* of bags: each subbag occurs once per way of
    choosing which tagged occurrences survive, so the total count is
    ``2^|B|``.  E.g. ``P_b([[a, a]]) = [[ {{}}, {{a}}, {{a}}, {{a,a}} ]]``.
    """
    _require_bag(bag, "powerbag")
    _require_integer_counts(sr, "powerbag")
    total = powerbag_total(bag)
    if budget is not None and total > budget:
        raise BudgetExceeded(
            f"powerbag would contain {total} subbags (with duplicates), "
            f"budget is {budget}", budget="powerbag", limit=budget,
            observed=total)
    counts = {subbag: powerbag_multiplicity(bag, subbag)
              for subbag in subbags(bag)}
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# Destructive operations
# ----------------------------------------------------------------------

def attribute(obj: Tup, i: int) -> Any:
    """``alpha_i(o)``: project the i-th attribute of a tuple (1-based)."""
    if not isinstance(obj, Tup):
        raise BagTypeError(
            f"attribute projection expects a tuple, got "
            f"{type(obj).__name__}")
    try:
        return obj.attribute(i)
    except IndexError as exc:
        raise BagTypeError(str(exc)) from exc


def bag_destroy(bag: Bag, sr: Optional[Semiring] = None) -> Bag:
    """``delta(B)``: remove one level of bag nesting by additive union
    of the member bags, *with* multiplicity: a member bag occurring
    twice contributes twice."""
    _require_bag(bag, "bag-destroy")
    counts: Dict[Any, int] = {}
    if sr is None:
        for inner, outer_count in bag.items():
            if not isinstance(inner, Bag):
                raise BagTypeError(
                    "bag-destroy requires a bag of bags, found element "
                    f"of type {type(inner).__name__}")
            for element, inner_count in inner.items():
                counts[element] = (counts.get(element, 0)
                                   + inner_count * outer_count)
    else:
        coerce, add, mul = sr.coerce, sr.add, sr.mul
        for inner, outer_count in bag.items():
            if not isinstance(inner, Bag):
                raise BagTypeError(
                    "bag-destroy requires a bag of bags, found element "
                    f"of type {type(inner).__name__}")
            outer = coerce(outer_count)
            for element, inner_count in inner.items():
                contribution = mul(coerce(inner_count), outer)
                existing = counts.get(element)
                counts[element] = (contribution if existing is None
                                   else add(existing, contribution))
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------

def map_bag(func: Callable[[Any], Any], bag: Bag,
            sr: Optional[Semiring] = None) -> Bag:
    """``MAP_phi(B)``: apply ``func`` to every member, *adding* the
    multiplicities of members that collide (Section 3's restructuring).

    E.g. ``MAP_beta([[a, a, b]]) = [[ {{a}}, {{a}}, {{b}} ]]`` — the
    image {{a}} occurs twice because two members mapped to it.
    """
    _require_bag(bag, "MAP")
    counts: Dict[Any, int] = {}
    if sr is None:
        for element, count in bag.items():
            image = func(element)
            counts[image] = counts.get(image, 0) + count
    else:
        coerce, add = sr.coerce, sr.add
        for element, count in bag.items():
            image = func(element)
            count = coerce(count)
            existing = counts.get(image)
            counts[image] = (count if existing is None
                             else add(existing, count))
    return Bag.from_counts(counts)


def select(predicate: Callable[[Any], bool], bag: Bag,
           sr: Optional[Semiring] = None) -> Bag:
    """``sigma_{phi=phi'}(B)``: keep the members satisfying the
    predicate, multiplicities unchanged.

    The paper's selections compare two lambda expressions for equality;
    at this operational level any boolean predicate is accepted — the
    AST layer (:mod:`repro.core.expr`) restricts selections to
    equality tests between algebra lambdas.  ``sr`` is accepted for
    signature uniformity; selection performs no count arithmetic.
    """
    _require_bag(bag, "selection")
    counts = {element: count for element, count in bag.items()
              if predicate(element)}
    return Bag.from_counts(counts)


def dedup(bag: Bag, sr: Optional[Semiring] = None) -> Bag:
    """``eps(B)``: duplicate elimination; every present element ends up
    1-belonging (annotated with ``one``) in the result."""
    _require_bag(bag, "duplicate elimination")
    one = 1 if sr is None else sr.one
    return Bag.from_counts({element: one for element in bag.distinct()})


# ----------------------------------------------------------------------
# Derived predicates (expressible in the algebra; provided natively for
# convenience, cf. "membership and containment tests can be expressed")
# ----------------------------------------------------------------------

def project(bag: Bag, *indices: int) -> Bag:
    """``pi_{i1,...,in}(B)``: the MAP that keeps attributes i1..in
    (1-based), the paper's abbreviation for
    ``MAP_{lambda x.[alpha_i1(x), ...]}``."""
    return map_bag(
        lambda member: Tup(*(attribute(member, i) for i in indices)), bag)


def member(obj: Any, bag: Bag) -> bool:
    """Membership test: does ``obj`` p-belong to ``bag`` for some p>0?"""
    _require_bag(bag, "membership test")
    return obj in bag


def contains_subbag(left: Bag, right: Bag) -> bool:
    """Containment test: is ``right`` a subbag of ``left``?"""
    return right.is_subbag_of(left)
