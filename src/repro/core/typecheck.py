"""Static type inference for algebra expressions.

Every subexpression of a BALG expression has a type; the fragments
``BALG^k`` of the paper are defined by bounding the *bag nesting* of all
those types (Section 3: "We denote the algebra when restricted to bag
nesting of depth k, BALG^k").  The checker therefore records the type of
every node it visits so that :mod:`repro.core.fragments` can compute the
nesting of a whole expression.

The checker reuses the same node hooks as the evaluator: each node
implements ``_infer(checker, tenv)``; the checker supplies environment
plumbing and the annotation log.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.database import Schema
from repro.core.errors import BagTypeError, UnboundVariableError
from repro.core.expr import Expr
from repro.core.types import BagType, Type

__all__ = ["TypeChecker", "infer_type", "annotate_types"]


#: Type-environment frames mirror the evaluator's: (base_mapping, chain).
_TFrame = Optional[Tuple[str, Type, object]]


class TypeChecker:
    """Infers the type of an expression under a schema.

    After :meth:`check` runs, :attr:`annotations` holds one
    ``(node, type)`` pair per visited node occurrence, in visit order.
    """

    def __init__(self):
        self.annotations: List[Tuple[Expr, Type]] = []

    # -- environment -----------------------------------------------------

    def bind(self, tenv, name: str, declared: Type):
        base, frame = tenv
        return (base, (name, declared, frame))

    def lookup(self, name: str, tenv) -> Type:
        base, frame = tenv
        while frame is not None:
            frame_name, declared, frame = frame
            if frame_name == name:
                return declared
        if name in base:
            return base[name]
        raise UnboundVariableError(
            f"variable {name!r} is bound neither by a lambda nor by the "
            "schema")

    # -- inference --------------------------------------------------------

    def infer(self, expr: Expr, tenv) -> Type:
        inferred = expr._infer(self, tenv)
        self.annotations.append((expr, inferred))
        return inferred

    def check(self, expr: Expr,
              schema: Optional[Mapping[str, Type] | Schema] = None,
              **named_types: Type) -> Type:
        """Infer the type of ``expr`` under ``schema``.

        ``schema`` may be a :class:`~repro.core.database.Schema`, a
        plain ``name -> Type`` mapping, or omitted when the expression
        is closed; keyword arguments add individual bindings.
        """
        base: Dict[str, Type] = {}
        if isinstance(schema, Schema):
            base.update(dict(schema.items()))
        elif schema is not None:
            base.update(schema)
        base.update(named_types)
        for name, declared in base.items():
            if not isinstance(declared, Type):
                raise BagTypeError(
                    f"schema entry {name!r} must be a Type, got "
                    f"{declared!r}")
        return self.infer(expr, (base, None))

    # -- derived measurements ----------------------------------------------

    def max_bag_nesting(self) -> int:
        """Maximal bag nesting over every annotated subexpression type
        (the measure defining BALG^k membership)."""
        if not self.annotations:
            return 0
        return max(annotated.bag_nesting()
                   for _, annotated in self.annotations)


def infer_type(expr: Expr,
               schema: Optional[Mapping[str, Type] | Schema] = None,
               **named_types: Type) -> Type:
    """Infer the result type of an expression (one-shot convenience)."""
    return TypeChecker().check(expr, schema, **named_types)


def annotate_types(expr: Expr,
                   schema: Optional[Mapping[str, Type] | Schema] = None,
                   **named_types: Type) -> List[Tuple[Expr, Type]]:
    """Return the full (node, type) annotation log for an expression."""
    checker = TypeChecker()
    checker.check(expr, schema, **named_types)
    return checker.annotations
