"""Core of the reproduction: nested bag values, the BALG algebra
(Section 3), its type system (Section 2), fragments (Sections 4-6), and
the paper's derived operators."""

from repro.core.bag import Bag, Tup, EMPTY_BAG, canonical_key, is_atom
from repro.core.database import (
    Instance, Schema, active_domain, apply_renaming, are_isomorphic,
    encoding_size,
)
from repro.core.encoding import (
    decode_standard, encoded_size, recognition_instance,
    standard_encoding,
)
from repro.core.eval import EvalStats, Evaluator, evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Bagging, Cartesian, Const,
    Dedup, EMPTY, Expr, Intersection, Lam, Map, MaxUnion, Powerbag,
    Powerset, Select, Subtraction, Tupling, Var, const, var,
)
from repro.core.fragments import (
    FragmentReport, assert_in_balg, fragment_report, in_balg,
    max_bag_nesting, operators_used, power_nesting,
)
from repro.core.nest import Nest, Unnest, nest_bag, unnest_bag
from repro.core.typecheck import TypeChecker, annotate_types, infer_type
from repro.core.types import (
    AtomType, BagType, TupleType, Type, U, UNKNOWN, flat_bag_type,
    flat_tuple_type, parse_type, type_of, unify,
)

__all__ = [
    # values
    "Bag", "Tup", "EMPTY_BAG", "canonical_key", "is_atom",
    # types
    "AtomType", "BagType", "TupleType", "Type", "U", "UNKNOWN",
    "flat_bag_type", "flat_tuple_type", "parse_type", "type_of", "unify",
    # expressions
    "AdditiveUnion", "Attribute", "BagDestroy", "Bagging", "Cartesian",
    "Const", "Dedup", "EMPTY", "Expr", "Intersection", "Lam", "Map",
    "MaxUnion", "Powerbag", "Powerset", "Select", "Subtraction",
    "Tupling", "Var", "const", "var",
    # nesting extension
    "Nest", "Unnest", "nest_bag", "unnest_bag",
    # evaluation
    "EvalStats", "Evaluator", "evaluate",
    # typing / fragments
    "TypeChecker", "annotate_types", "infer_type",
    "FragmentReport", "assert_in_balg", "fragment_report", "in_balg",
    "max_bag_nesting", "operators_used", "power_nesting",
    # standard encoding / recognition problem
    "decode_standard", "encoded_size", "recognition_instance",
    "standard_encoding",
    # databases
    "Instance", "Schema", "active_domain", "apply_renaming",
    "are_isomorphic", "encoding_size",
]
