"""Immutable nested-bag values: atoms, tuples, and bags.

This module implements the *data definition language* of Section 3 of
Grumbach & Milo: every complex object is built from atomic constants
with the tuple constructor ``Tup`` and the bag constructor ``Bag``.

Design notes
------------
* Values are immutable and hashable.  Hashability is what lets a bag
  contain other bags (nested bags are the whole point of the paper) while
  multiplicities are tracked in an ordinary dictionary.
* A ``Bag`` stores ``element -> count`` with strictly positive integer
  counts.  An element *n-belongs* to the bag when its count is exactly
  ``n`` (Section 2 terminology).
* Atoms are arbitrary hashable Python scalars (strings, integers,
  frozen dataclasses, ...).  ``Tup`` and ``Bag`` instances are never
  atoms.
* Construction enforces homogeneity: all elements of a bag must have
  the same type (same arity for tuples, recursively compatible element
  types for nested bags).  This mirrors the paper's requirement that a
  bag is a homogeneous collection.

The algebra operators themselves (additive union, powerset, ...) live
in :mod:`repro.core.ops`; this module only provides the value model and
container conveniences.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

from repro.core.errors import HeterogeneousBagError, ValueConstructionError
from repro.core.semiring import SemiringValue

__all__ = ["Tup", "Bag", "is_atom", "canonical_key", "EMPTY_BAG"]


def is_atom(value: Any) -> bool:
    """Return True when ``value`` is an atomic constant.

    Atoms are everything that is neither a :class:`Tup` nor a
    :class:`Bag`.  The paper assumes a single atomic type ``U`` with an
    infinite domain of constants; we realise that domain as the set of
    hashable Python scalars.
    """
    return not isinstance(value, (Tup, Bag))


class Tup:
    """An immutable k-ary tuple of complex objects.

    The paper writes ``[o1, ..., ok]`` for tuples; attribute projection
    uses 1-based indices (``alpha_i``).  ``Tup`` exposes both the Pythonic
    0-based ``tup[i]`` and the paper's 1-based :meth:`attribute`.
    """

    __slots__ = ("_items", "_hash", "_shape")

    def __init__(self, *items: Any):
        for item in items:
            _check_value(item)
        self._items: Tuple[Any, ...] = tuple(items)
        self._hash = None  # computed once on first __hash__, then cached
        self._shape = None  # structural fingerprint, cached on demand

    @property
    def arity(self) -> int:
        """Number of attributes of this tuple."""
        return len(self._items)

    def attribute(self, i: int) -> Any:
        """Return the i-th attribute, 1-based (the paper's alpha_i)."""
        if not 1 <= i <= len(self._items):
            raise IndexError(
                f"attribute index {i} out of range for arity {self.arity}")
        return self._items[i - 1]

    def items(self) -> Tuple[Any, ...]:
        """Return the underlying attribute tuple (0-based)."""
        return self._items

    def concat(self, other: "Tup") -> "Tup":
        """Concatenate two tuples (used by the Cartesian product).

        Both operands are already-validated tuples, so the result skips
        the per-item value check — the join and product kernels build
        one concatenation per output row and this is their hot path."""
        if not isinstance(other, Tup):
            raise ValueConstructionError(
                f"cannot concatenate Tup with {type(other).__name__}")
        out = Tup.__new__(Tup)
        items = self._items + other._items
        out._items = items
        out._hash = None
        if self._shape is not None and other._shape is not None:
            out._shape = _concat_shape(self._shape, other._shape)
        else:
            out._shape = None
        return out

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Tup) and self._items == other._items

    def __hash__(self) -> int:
        # computed on first use and slot-cached: join/dedup kernels hash
        # every row at least once, but many rows are built and discarded
        # without ever entering a dict (projections, predicates), and a
        # concat in the join hot path should not pay two child walks
        value = self._hash
        if value is None:
            value = hash(("Tup", self._items))
            self._hash = value
        return value

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self._items)
        return f"[{inner}]"


class Bag:
    """An immutable bag (multiset) of homogeneous complex objects.

    A bag maps each distinct element to a strictly positive multiplicity.
    ``Bag`` instances are hashable, so bags can nest arbitrarily deep.

    Constructors
    ------------
    ``Bag(iterable)``
        Count duplicates from an iterable, e.g. ``Bag(['a', 'a', 'b'])``.
    ``Bag.from_counts(mapping)``
        Build directly from an ``element -> count`` mapping.
    ``Bag.of(*elements)``
        Variadic convenience: ``Bag.of('a', 'a', 'b')``.

    The empty bag is polymorphic (it belongs to every bag type), matching
    the paper's ``[[ ]]``.
    """

    __slots__ = ("_counts", "_hash", "_cardinality", "_shape")

    def __init__(self, elements: Iterable[Any] = ()):
        counts: Dict[Any, int] = {}
        for element in elements:
            _check_value(element)
            counts[element] = counts.get(element, 0) + 1
        self._shape = _check_homogeneous(counts.keys())
        self._counts = counts
        self._cardinality = sum(counts.values())
        self._hash = None

    @classmethod
    def from_counts(cls, counts: Mapping[Any, int]) -> "Bag":
        """Build a bag from an ``element -> multiplicity`` mapping.

        Multiplicities are non-negative ints (zero counts dropped,
        negative counts an error) or :class:`SemiringValue` annotations
        from a non-integer semiring (zero annotations dropped).
        """
        bag = cls.__new__(cls)
        clean: Dict[Any, int] = {}
        for element, count in counts.items():
            if isinstance(count, int):
                if count < 0:
                    raise ValueConstructionError(
                        f"multiplicity must be non-negative, got {count}")
                if count == 0:
                    continue
            elif isinstance(count, SemiringValue):
                if count.is_zero():
                    continue
            else:
                raise ValueConstructionError(
                    "multiplicity must be an int or a semiring "
                    f"annotation, got {count!r}")
            _check_value(element)
            clean[element] = count
        bag._shape = _check_homogeneous(clean.keys())
        bag._counts = clean
        try:
            bag._cardinality = sum(clean.values())
        except TypeError:
            # annotated bags: each non-integer annotation weighs one
            bag._cardinality = sum(
                count if isinstance(count, int) else 1
                for count in clean.values())
        bag._hash = None
        return bag

    @classmethod
    def of(cls, *elements: Any) -> "Bag":
        """Variadic constructor: ``Bag.of('a', 'a', 'b')``."""
        return cls(elements)

    @classmethod
    def single(cls, element: Any, count: int = 1) -> "Bag":
        """The bag ``B^element_count`` of Section 2: ``count`` copies of
        ``element`` and nothing else."""
        return cls.from_counts({element: count})

    # ------------------------------------------------------------------
    # Multiset interface
    # ------------------------------------------------------------------

    def multiplicity(self, element: Any) -> int:
        """Number of occurrences of ``element`` (0 when absent)."""
        return self._counts.get(element, 0)

    def n_belongs(self, element: Any, n: int) -> bool:
        """The paper's *n-belongs*: exactly ``n`` occurrences."""
        return self.multiplicity(element) == n

    def counts(self) -> Mapping[Any, int]:
        """Read-only view of the ``element -> count`` mapping."""
        return dict(self._counts)

    def support(self) -> frozenset:
        """The set of distinct elements (the bag with duplicates removed,
        as a Python frozenset)."""
        return frozenset(self._counts)

    @property
    def cardinality(self) -> int:
        """Total number of elements *counting duplicates* (the paper's
        notion of bag size, matching the standard encoding)."""
        return self._cardinality

    @property
    def distinct_count(self) -> int:
        """Number of distinct elements."""
        return len(self._counts)

    def is_empty(self) -> bool:
        return not self._counts

    def is_set(self) -> bool:
        """True when every element occurs exactly once (the bag is a
        relation in the classical sense)."""
        return all(count == 1 for count in self._counts.values())

    def is_subbag_of(self, other: "Bag") -> bool:
        """The paper's subbag relation: ``self <= other`` iff every
        element n-belonging to ``self`` p-belongs to ``other`` for some
        p >= n."""
        if not isinstance(other, Bag):
            raise ValueConstructionError(
                f"subbag comparison against {type(other).__name__}")
        return all(other.multiplicity(element) >= count
                   for element, count in self._counts.items())

    def items(self) -> Iterator[Tuple[Any, int]]:
        """Iterate over ``(element, count)`` pairs."""
        return iter(self._counts.items())

    def elements(self) -> Iterator[Any]:
        """Iterate over elements *with* duplicates (each element is
        yielded ``count`` times), matching the standard encoding."""
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def distinct(self) -> Iterator[Any]:
        """Iterate over distinct elements (no duplicates)."""
        return iter(self._counts)

    def an_element(self) -> Any:
        """Return an arbitrary element; error on the empty bag."""
        if not self._counts:
            raise ValueConstructionError("the empty bag has no elements")
        return next(iter(self._counts))

    # ------------------------------------------------------------------
    # Protocol methods
    # ------------------------------------------------------------------

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def __len__(self) -> int:
        return self._cardinality

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Bag) and self._counts == other._counts

    def __le__(self, other: "Bag") -> bool:
        return self.is_subbag_of(other)

    def __hash__(self) -> int:
        # computed on first use: most bags (query results above all)
        # are never used as dictionary keys, and the frozenset walk is
        # O(n) — only nested bags pay it
        value = self._hash
        if value is None:
            value = hash(("Bag", frozenset(self._counts.items())))
            self._hash = value
        return value

    def __repr__(self) -> str:
        if not self._counts:
            return "{{}}"
        parts = []
        for element in sorted(self._counts, key=canonical_key):
            count = self._counts[element]
            if count == 1:
                parts.append(repr(element))
            else:
                parts.append(f"{element!r}*{count}")
        return "{{" + ", ".join(parts) + "}}"


def canonical_key(value: Any) -> Tuple:
    """A total-order key over complex objects, used for deterministic
    display and for the lexicographic enumeration of Section 5.

    Atoms sort before tuples, which sort before bags; within a kind the
    order is lexicographic.  Atoms order naturally within one Python
    type (so integers compare numerically) and by type name across
    types, which yields the linear order on the domain that Section 4's
    order-enriched results assume.
    """
    if isinstance(value, Tup):
        return (1, tuple(canonical_key(item) for item in value.items()))
    if isinstance(value, Bag):
        ordered = sorted(value.counts().items(),
                         key=lambda pair: canonical_key(pair[0]))
        return (2, tuple((canonical_key(element), count)
                         for element, count in ordered))
    if isinstance(value, (bool, int, float, str, bytes)):
        return (0, (type(value).__name__, value))
    return (0, (type(value).__name__, repr(value)))


# ----------------------------------------------------------------------
# Construction-time checks
# ----------------------------------------------------------------------

def _check_value(value: Any) -> None:
    """Reject unhashable or mutable-container elements early."""
    if isinstance(value, (Tup, Bag)):
        return
    if isinstance(value, (list, dict, set)):
        raise ValueConstructionError(
            f"{type(value).__name__} is not a valid complex object; "
            "use Tup for tuples and Bag for collections")
    try:
        hash(value)
    except TypeError as exc:
        raise ValueConstructionError(
            f"bag elements must be hashable, got {value!r}") from exc


#: Interned fingerprints: every atom shares one shape object, and flat
#: tuples of atoms (by far the most common values) share one per
#: arity — so the homogeneity merge usually short-circuits on
#: identity instead of walking structures.
_ATOM_SHAPE = ("atom",)
_FLAT_TUP_SHAPES: Dict[int, tuple] = {}
_CONCAT_SHAPE_CACHE: Dict[tuple, tuple] = {}


def _flat_tup_shape(arity: int) -> tuple:
    shape = _FLAT_TUP_SHAPES.get(arity)
    if shape is None:
        shape = ("tuple", (_ATOM_SHAPE,) * arity)
        _FLAT_TUP_SHAPES[arity] = shape
    return shape


def _concat_shape(left: tuple, right: tuple) -> tuple:
    """The shape of a tuple concatenation, interned per side-pair so
    every row of a join output carries the *same* shape object."""
    key = (left, right)
    shape = _CONCAT_SHAPE_CACHE.get(key)
    if shape is None:
        items = left[1] + right[1]
        if all(item is _ATOM_SHAPE for item in items):
            shape = _flat_tup_shape(len(items))
        else:
            shape = ("tuple", items)
        if len(_CONCAT_SHAPE_CACHE) < 4096:
            _CONCAT_SHAPE_CACHE[key] = shape
    return shape


def _shape_of(value: Any):
    """A lightweight structural fingerprint used for the homogeneity
    check (full typing lives in :mod:`repro.core.types`).

    The empty bag is compatible with every bag shape, which the
    fingerprint encodes with ``("bag", None)``.  Tuples cache their
    fingerprint; bags store theirs at construction time (the
    homogeneity check derives it anyway), so repeated validation of
    the same values costs an attribute read, not a structure walk.
    """
    if isinstance(value, Tup):
        shape = value._shape
        if shape is None:
            items = tuple(_shape_of(item) for item in value.items())
            if all(item is _ATOM_SHAPE for item in items):
                shape = _flat_tup_shape(len(items))
            else:
                shape = ("tuple", items)
            value._shape = shape
        return shape
    if isinstance(value, Bag):
        return ("bag", value._shape)
    return _ATOM_SHAPE


def _merge_shapes(left, right):
    """Unify two shape fingerprints; None when incompatible."""
    if left is right:
        return left
    if left is None:
        return right
    if right is None:
        return left
    if left[0] != right[0]:
        return None
    if left[0] == "atom":
        return left
    if left[0] == "bag":
        merged = _merge_shapes(left[1], right[1])
        if merged is None and not (left[1] is None or right[1] is None):
            return None
        return ("bag", merged)
    # tuple: arities and attribute shapes must merge pointwise
    if len(left[1]) != len(right[1]):
        return None
    merged_items = []
    for litem, ritem in zip(left[1], right[1]):
        merged = _merge_shapes(litem, ritem)
        if merged is None:
            return None
        merged_items.append(merged)
    return ("tuple", tuple(merged_items))


def _check_homogeneous(elements: Iterable[Any]):
    """Ensure all elements share a common shape (homogeneous bag).

    Returns the merged shape (``None`` for an empty collection) — the
    bag constructors store it so nested validation never re-walks."""
    shape = None
    for element in elements:
        candidate = _shape_of(element)
        if shape is None:
            shape = candidate
            continue
        if shape is candidate:
            continue
        merged = _merge_shapes(shape, candidate)
        if merged is None:
            raise HeterogeneousBagError(
                "bags must be homogeneous: cannot mix elements of shapes "
                f"{shape} and {candidate}")
        shape = merged
    return shape


#: The polymorphic empty bag ``[[ ]]``.
EMPTY_BAG = Bag()
