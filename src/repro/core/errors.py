"""Exception hierarchy for the bag-algebra reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching Python built-ins.
The hierarchy mirrors the phases of query processing:

* construction of values               -> :class:`ValueConstructionError`
* static typing / fragment checking    -> :class:`BagTypeError` and friends
* evaluation                           -> :class:`EvaluationError`
* resource governance                  -> :class:`GovernedError` family
* parsing of the surface syntax / SQL  -> :class:`ParseError`

The governed family (:class:`BudgetExceeded`, :class:`DeadlineExceeded`,
:class:`Cancelled`, :class:`RecursionDepthExceeded`,
:class:`IfpDivergenceError`) is raised by the
:mod:`repro.guard` resource governor.  Each instance carries the
partial :class:`~repro.core.eval.EvalStats` gathered up to the failure
(``.stats``) plus structured details (``.details``), so callers can
degrade gracefully — report what was measured — instead of losing the
whole process to an OOM or an unbounded loop.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValueConstructionError(ReproError):
    """A bag, tuple, or atom could not be constructed.

    Raised, for instance, when a bag is built with non-positive
    multiplicities or from a non-hashable element.
    """


class HeterogeneousBagError(ValueConstructionError):
    """A bag was built from elements of incompatible types.

    Bags in the paper are *homogeneous* collections (Section 2); mixing
    a tuple with an atom, or tuples of different arity, is a type error
    at construction time.
    """


class BagTypeError(ReproError):
    """Static type error in an algebra expression.

    Covers arity mismatches in Cartesian products, union of bags of
    different types, projection out of range, applying bag-destroy to an
    unnested bag, and similar Section 3 typing restrictions.
    """


class FragmentViolationError(BagTypeError):
    """An expression leaves the algebra fragment it was checked against.

    Examples: a ``BALG^1`` query whose intermediate type has nested
    bags, or a ``BALG_{-P}`` query that uses the powerset.
    """


class UnboundVariableError(BagTypeError):
    """An expression refers to a variable absent from the environment
    (or from the schema, during type inference)."""


class EvaluationError(ReproError):
    """Runtime failure while evaluating an algebra expression."""


class ResourceLimitError(EvaluationError):
    """Evaluation exceeded a configured resource budget.

    The powerset and powerbag operators can blow up exponentially
    (Propositions 3.2 and Theorem 5.5); evaluators accept explicit
    budgets and abort with this error instead of exhausting memory.
    """


class GovernedError(EvaluationError):
    """Base class for failures raised by the resource governor.

    ``stats`` holds the partial :class:`~repro.core.eval.EvalStats`
    gathered before the limit fired (``None`` when the guarded
    computation is not evaluator-driven, e.g. the pebble-game search).
    Keyword details (the limit that fired, the observed value, whether
    the failure was fault-injected, ...) are kept in ``details`` and
    also exposed as attributes.
    """

    def __init__(self, message: str, stats=None, **details):
        super().__init__(message)
        self.stats = stats
        self.details = dict(details)
        for key, value in details.items():
            setattr(self, key, value)


class BudgetExceeded(GovernedError, ResourceLimitError):
    """A step, size, powerset, or iteration budget was exhausted.

    ``details["budget"]`` names the budget that fired (``"steps"``,
    ``"size"``, ``"powerset"``, ``"powerbag"``, ``"iterations"``);
    ``details["limit"]`` is the configured bound and
    ``details["observed"]`` what the computation asked for.  Also a
    :class:`ResourceLimitError`, so pre-governor callers keep working.
    """


class DeadlineExceeded(GovernedError):
    """The wall-clock deadline passed before evaluation finished."""


class Cancelled(GovernedError):
    """A cooperative cancellation token was triggered mid-evaluation."""


class RecursionDepthExceeded(GovernedError):
    """Value or expression nesting exceeded the recursion-depth limit.

    Raised either proactively (the governor's ``max_depth``) or when a
    Python :class:`RecursionError` from a deeply nested value is
    converted at the evaluator boundary.
    """


class IfpDivergenceError(BudgetExceeded):
    """An inflationary fixpoint failed to converge within its budget.

    Carries ``iterations`` (completed before giving up) and the
    ``last_cardinality`` / ``last_distinct`` of the final iterate, so a
    diverging Turing-complete program (Theorem 6.6) degrades into a
    structured, inspectable failure.
    """


class ParseError(ReproError):
    """The surface syntax or mini-SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None,
                 text: str | None = None):
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None:
            return base
        return f"{base} (at offset {self.position})"
