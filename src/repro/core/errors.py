"""Exception hierarchy for the bag-algebra reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching Python built-ins.
The hierarchy mirrors the phases of query processing:

* construction of values               -> :class:`ValueConstructionError`
* static typing / fragment checking    -> :class:`BagTypeError` and friends
* evaluation                           -> :class:`EvaluationError`
* parsing of the surface syntax / SQL  -> :class:`ParseError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValueConstructionError(ReproError):
    """A bag, tuple, or atom could not be constructed.

    Raised, for instance, when a bag is built with non-positive
    multiplicities or from a non-hashable element.
    """


class HeterogeneousBagError(ValueConstructionError):
    """A bag was built from elements of incompatible types.

    Bags in the paper are *homogeneous* collections (Section 2); mixing
    a tuple with an atom, or tuples of different arity, is a type error
    at construction time.
    """


class BagTypeError(ReproError):
    """Static type error in an algebra expression.

    Covers arity mismatches in Cartesian products, union of bags of
    different types, projection out of range, applying bag-destroy to an
    unnested bag, and similar Section 3 typing restrictions.
    """


class FragmentViolationError(BagTypeError):
    """An expression leaves the algebra fragment it was checked against.

    Examples: a ``BALG^1`` query whose intermediate type has nested
    bags, or a ``BALG_{-P}`` query that uses the powerset.
    """


class UnboundVariableError(BagTypeError):
    """An expression refers to a variable absent from the environment
    (or from the schema, during type inference)."""


class EvaluationError(ReproError):
    """Runtime failure while evaluating an algebra expression."""


class ResourceLimitError(EvaluationError):
    """Evaluation exceeded a configured resource budget.

    The powerset and powerbag operators can blow up exponentially
    (Propositions 3.2 and Theorem 5.5); evaluators accept explicit
    budgets and abort with this error instead of exhausting memory.
    """


class ParseError(ReproError):
    """The surface syntax or mini-SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None,
                 text: str | None = None):
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None:
            return base
        return f"{base} (at offset {self.position})"
