"""Semiring-generalized multiplicity arithmetic.

The paper's bag algebra annotates every element with a multiplicity
drawn from the natural numbers.  Following "Codd's Theorem for
Databases over Semirings" (arXiv 2501.16543), the algebra makes sense
over any *naturally ordered* commutative semiring: the count column
becomes an annotation from a domain ``K`` with ``(+, *, 0, 1)`` plus a
truncated difference (monus) and lattice meet/join for the
intersection/maximal-union operators.

This module is the single arithmetic seam.  Every execution layer
(tree walker, stream kernels, columnar kernels, generated closures,
the parallel shard codec, and the planner's cache tags) consumes a
:class:`Semiring` instance instead of hard-coding ``int`` arithmetic.

Conventions
-----------
* ``sr=None`` means the natural-number semiring everywhere.  The hot
  paths branch once on ``sr is None`` and then run the original int
  code unchanged — the N fast path is bit-identical to the
  pre-refactor engine (pinned by bench_e27).
* :class:`NatSemiring` and :class:`BoolSemiring` annotate with plain
  Python ints (``{0, 1}`` for Bool), so their bags remain valid count
  dicts and the parallel codec keeps its varint fast mode.
* :class:`TropicalSemiring` and :class:`ProvenancePolynomial` annotate
  with frozen wrapper values (:class:`Trop`, :class:`Prov`) that
  subclass the :class:`SemiringValue` marker, which
  :mod:`repro.core.bag` accepts as multiplicities.
* Input adaptation happens once at the *sources* (variable bindings at
  engine entry, constants at bind time): :meth:`Semiring.adapt_bag`
  maps int counts through the canonical homomorphism ``from_int`` —
  deep-dedup for Bool, fresh provenance variables for Prov.  Operators
  over adapted inputs stay adapted; stray int counts (inner bags of
  nested inputs) are normalised with :meth:`Semiring.coerce`.

Registry
--------
Semirings are addressed by name (``nat``, ``bool``, ``tropical``,
``provenance`` plus aliases) through :func:`resolve_semiring`, which
normalises the default N instance back to ``None`` so the fast path
stays a single identity check.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "Semiring", "SemiringValue", "Trop", "Prov",
    "NatSemiring", "BoolSemiring", "TropicalSemiring",
    "ProvenancePolynomial",
    "NAT", "BOOL", "TROPICAL", "PROVENANCE",
    "SEMIRINGS", "resolve_semiring", "semiring_name", "known_semirings",
]


# ----------------------------------------------------------------------
# Annotation value wrappers
# ----------------------------------------------------------------------

class SemiringValue:
    """Marker base class for non-integer multiplicity annotations.

    :mod:`repro.core.bag` accepts instances as bag multiplicities
    (dropping the ones whose :meth:`is_zero` holds), so annotated bags
    flow through the same containers as ordinary count dicts.
    """

    __slots__ = ()

    def is_zero(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class Trop(SemiringValue):
    """A min-plus (tropical) annotation: a cost in ``R ∪ {+inf}``.

    ``+inf`` is the additive zero (absent), ``0.0`` the multiplicative
    one.
    """

    __slots__ = ("cost",)

    def __init__(self, cost: float):
        self.cost = float(cost)

    def is_zero(self) -> bool:
        return self.cost == math.inf

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Trop) and self.cost == other.cost

    def __hash__(self) -> int:
        return hash(("Trop", self.cost))

    def __repr__(self) -> str:
        return f"Trop({self.cost!r})"

    def __reduce__(self):
        return (Trop, (self.cost,))


class Prov(SemiringValue):
    """A provenance polynomial in ``N[X]``: monomials over variable
    atoms with natural-number coefficients.

    Stored canonically as a sorted tuple of ``(monomial, coefficient)``
    pairs, where a monomial is a sorted tuple of variable names (with
    repetition for powers), so equality and hashing are structural.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Any = ()):
        if isinstance(terms, dict):
            items = terms.items()
        else:
            items = tuple(terms)
        clean: Dict[Tuple[str, ...], int] = {}
        for monomial, coefficient in items:
            if coefficient:
                key = tuple(sorted(monomial))
                clean[key] = clean.get(key, 0) + coefficient
        self.terms = tuple(sorted(
            (monomial, coefficient)
            for monomial, coefficient in clean.items() if coefficient))

    @classmethod
    def variable(cls, name: str, coefficient: int = 1) -> "Prov":
        return cls({(name,): coefficient})

    @classmethod
    def const(cls, value: int) -> "Prov":
        return cls({(): value}) if value else cls(())

    def is_zero(self) -> bool:
        return not self.terms

    def coefficients(self) -> Dict[Tuple[str, ...], int]:
        return dict(self.terms)

    def monomial_count(self) -> int:
        return len(self.terms)

    def degree(self) -> int:
        return max((len(m) for m, _ in self.terms), default=0)

    def variables(self) -> Tuple[str, ...]:
        seen = set()
        for monomial, _ in self.terms:
            seen.update(monomial)
        return tuple(sorted(seen))

    def eval_at_ones(self) -> int:
        """Evaluate the polynomial with every variable set to 1 — the
        homomorphism back to N that recovers bag multiplicities."""
        return sum(coefficient for _, coefficient in self.terms)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Prov) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(("Prov", self.terms))

    def __repr__(self) -> str:
        if not self.terms:
            return "Prov(0)"
        parts = []
        for monomial, coefficient in self.terms:
            body = "*".join(monomial) if monomial else "1"
            parts.append(body if coefficient == 1 and monomial
                         else f"{coefficient}*{body}" if monomial
                         else str(coefficient))
        return "Prov(" + " + ".join(parts) + ")"

    def __reduce__(self):
        return (Prov, (self.terms,))


# ----------------------------------------------------------------------
# The interface
# ----------------------------------------------------------------------

class Semiring:
    """Multiplicity arithmetic over an annotation domain ``K``.

    Subclasses fix the constants and operations; the base class
    provides the derived helpers (:meth:`coerce`, :meth:`scale`,
    :meth:`adapt_bag`) and the codec hooks used by the parallel shard
    format.

    Flags
    -----
    ``idempotent_add``
        ``a + a == a`` (Bool, Tropical) — lets the planner collapse
        self-unions to the operand instead of a scale-by-2.
    ``integer_counts``
        Annotations are plain ints (N, Bool) — required by powerset /
        powerbag, and keeps the codec varint fast mode.
    ``naturally_ordered``
        ``a <= b  iff  exists c: a + c = b`` is a partial order; all
        shipped instances are naturally ordered.
    ``cancellative``
        ``a + c == b + c  implies  a == b`` (N, provenance) — gates the
        metamorphic union-monus law ``(e (+) e) - e = e``.
    ``unsound_laws``
        Names of metamorphic laws that the instance's monus does not
        satisfy even though it is naturally ordered.
    """

    name = "abstract"
    description = ""
    idempotent_add = False
    integer_counts = False
    naturally_ordered = True
    cancellative = False
    unsound_laws: frozenset = frozenset()
    #: The concrete annotation type of this domain; anything that is
    #: neither an int (still awaiting the ``from_int`` homomorphism)
    #: nor an instance of this type is an annotation minted by a
    #: *different* semiring and must be rejected, not reinterpreted.
    value_type: type = int
    zero: Any = None
    one: Any = None

    # -- core arithmetic ------------------------------------------------

    def add(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def mul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def monus(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def min_(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def max_(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def is_zero(self, a: Any) -> bool:
        raise NotImplementedError

    def leq(self, a: Any, b: Any) -> bool:
        """The natural order: ``a <= b`` iff some ``c`` has ``a+c=b``."""
        raise NotImplementedError

    def from_int(self, n: int) -> Any:
        """The canonical homomorphism ``N -> K``."""
        raise NotImplementedError

    # -- derived helpers ------------------------------------------------

    def coerce(self, count: Any) -> Any:
        """Normalise a multiplicity that may still be a plain int (an
        inner count of a nested input bag, a constant bound before
        adaptation).

        Annotations already in this domain pass through unchanged;
        values from a *different* semiring (a binding produced under
        another ``:semiring`` setting, say) raise a governed
        :class:`~repro.core.errors.BagTypeError` instead of being
        silently reinterpreted or crashing deep inside the arithmetic.
        """
        if isinstance(count, int):
            return self.from_int(count)
        if isinstance(count, self.value_type):
            return count
        from repro.core.errors import BagTypeError
        raise BagTypeError(
            f"multiplicity {count!r} is a {type(count).__name__} "
            f"annotation from another semiring and cannot be used "
            f"under {self.name}; re-evaluate the binding under the "
            f"current semiring")

    def scale(self, value: Any, factor: int) -> Any:
        """Multiply an annotation by an integer factor (the lowered
        ``MultiplicityScale`` operator)."""
        return self.mul(self.coerce(value), self.from_int(factor))

    def adapt_value(self, value: Any) -> Any:
        """Adapt a complex object from the N world (identity unless the
        instance rewrites nested structure, e.g. Bool's deep dedup)."""
        return value

    def adapt_bag(self, bag: Any, label: str = "const") -> Any:
        """Adapt an input bag's int counts into this semiring.

        ``label`` names the source relation; provenance uses it to mint
        per-tuple variables.
        """
        from repro.core.bag import Bag
        if not isinstance(bag, Bag):
            return bag
        counts = {self.adapt_value(value): self.coerce(count)
                  for value, count in bag.items()}
        return Bag.from_counts(counts)

    # -- codec hooks ----------------------------------------------------

    def encode_count(self, count: Any) -> bytes:
        """Serialise one annotation for the parallel shard codec's
        generic (CM02) count column."""
        import pickle
        return pickle.dumps(count, protocol=pickle.HIGHEST_PROTOCOL)

    def decode_count(self, blob: bytes) -> Any:
        import pickle
        return pickle.loads(blob)

    # -- introspection --------------------------------------------------

    def describe(self) -> str:
        return f"{self.name} ({self.description})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------

class NatSemiring(Semiring):
    """The default: natural-number multiplicities (the paper's bags).

    Exists for introspection and the registry; execution layers
    normalise it to ``sr=None`` and run the original int code.
    """

    name = "nat"
    description = "natural-number multiplicities (bag semantics)"
    integer_counts = True
    cancellative = True
    zero = 0
    one = 1

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return a * b

    def monus(self, a, b):
        remaining = a - b
        return remaining if remaining > 0 else 0

    def min_(self, a, b):
        return a if a <= b else b

    def max_(self, a, b):
        return a if a >= b else b

    def is_zero(self, a):
        return a == 0

    def leq(self, a, b):
        return a <= b

    def from_int(self, n):
        return n


class BoolSemiring(Semiring):
    """Set semantics: annotations in ``{0, 1}`` with or/and.

    Kept as plain ints so Bool-annotated bags are ordinary bags with
    all counts 1 — δ (dedup of the N result) lands in the same value
    space, which is what makes the tri-equivalence check a plain bag
    equality.
    """

    name = "bool"
    description = "boolean presence (set semantics)"
    idempotent_add = True
    integer_counts = True
    unsound_laws = frozenset({"union-monus"})
    zero = 0
    one = 1

    def add(self, a, b):
        return 1 if (a or b) else 0

    def mul(self, a, b):
        return 1 if (a and b) else 0

    def monus(self, a, b):
        return 1 if (a and not b) else 0

    def min_(self, a, b):
        return self.mul(a, b)

    def max_(self, a, b):
        return self.add(a, b)

    def is_zero(self, a):
        return not a

    def leq(self, a, b):
        return (not a) or bool(b)

    def from_int(self, n):
        return 1 if n else 0

    def adapt_value(self, value):
        return _deep_dedup(value)

    def adapt_bag(self, bag, label="const"):
        from repro.core.bag import Bag
        if isinstance(bag, Bag):
            for _, count in bag.items():
                self.coerce(count)  # reject foreign-domain annotations
        return _deep_dedup(bag)


class TropicalSemiring(Semiring):
    """Min-plus costs: add = min, mul = numeric +.

    The natural order is the *reverse* numeric order (smaller cost is
    natural-order larger), so ``min_``/``max_`` — the intersection and
    maximal-union annotations — are the numeric max and min
    respectively.  The monus is the residual ``a - b = zero`` when
    ``a <= b`` naturally, else ``a``; being idempotent the instance
    fails the cancellative union-monus law and the meet-via-monus
    identity, which the metamorphic gates encode.
    """

    name = "tropical"
    description = "min-plus costs (shortest-path style)"
    idempotent_add = True
    unsound_laws = frozenset({"union-monus", "inter-via-monus"})
    value_type = Trop
    zero = Trop(math.inf)
    one = Trop(0.0)

    def add(self, a, b):
        return a if a.cost <= b.cost else b

    def mul(self, a, b):
        return Trop(a.cost + b.cost)

    def monus(self, a, b):
        return self.zero if self.leq(a, b) else a

    def min_(self, a, b):
        return a if a.cost >= b.cost else b

    def max_(self, a, b):
        return a if a.cost <= b.cost else b

    def is_zero(self, a):
        return a.cost == math.inf

    def leq(self, a, b):
        return b.cost <= a.cost

    def from_int(self, n):
        return self.one if n else self.zero


class ProvenancePolynomial(Semiring):
    """Why-provenance: polynomials ``N[X]`` over variable atoms.

    :meth:`adapt_bag` mints one fresh variable per distinct source
    tuple (``R.0``, ``R.1``, ...), mapping multiplicity ``n`` to the
    polynomial ``n * x`` — evaluating every variable at 1 recovers the
    N multiplicities on the monus-free fragment.
    """

    name = "provenance"
    description = "why-provenance polynomials N[X]"
    cancellative = True
    value_type = Prov
    zero = Prov(())
    one = Prov({(): 1})

    def add(self, a, b):
        merged = dict(a.terms)
        for monomial, coefficient in b.terms:
            merged[monomial] = merged.get(monomial, 0) + coefficient
        return Prov(merged)

    def mul(self, a, b):
        product: Dict[Tuple[str, ...], int] = {}
        for mono_a, coeff_a in a.terms:
            for mono_b, coeff_b in b.terms:
                key = tuple(sorted(mono_a + mono_b))
                product[key] = product.get(key, 0) + coeff_a * coeff_b
        return Prov(product)

    def monus(self, a, b):
        other = dict(b.terms)
        remaining = {monomial: max(0, coefficient
                                   - other.get(monomial, 0))
                     for monomial, coefficient in a.terms}
        return Prov(remaining)

    def min_(self, a, b):
        other = dict(b.terms)
        return Prov({monomial: min(coefficient, other.get(monomial, 0))
                     for monomial, coefficient in a.terms})

    def max_(self, a, b):
        merged = dict(a.terms)
        for monomial, coefficient in b.terms:
            merged[monomial] = max(merged.get(monomial, 0), coefficient)
        return Prov(merged)

    def is_zero(self, a):
        return not a.terms

    def leq(self, a, b):
        other = dict(b.terms)
        return all(coefficient <= other.get(monomial, 0)
                   for monomial, coefficient in a.terms)

    def from_int(self, n):
        return Prov.const(n)

    def adapt_bag(self, bag, label="const"):
        from repro.core.bag import Bag, canonical_key
        if not isinstance(bag, Bag):
            return bag
        counts = {}
        ordered = sorted(bag.distinct(), key=canonical_key)
        for index, value in enumerate(ordered):
            multiplicity = bag.multiplicity(value)
            if isinstance(multiplicity, Prov):
                # already annotated (a result bag re-entering as a
                # binding, e.g. from the REPL environment) — adapting
                # is idempotent, never re-labels
                counts[value] = multiplicity
            elif isinstance(multiplicity, int):
                counts[value] = Prov(
                    {(f"{label}.{index}",): multiplicity})
            else:
                self.coerce(multiplicity)  # raises BagTypeError
        return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# Deep dedup (set-semantics input adaptation)
# ----------------------------------------------------------------------

def _deep_dedup(value: Any) -> Any:
    """Recursively collapse every bag to its support with count 1."""
    from repro.core.bag import Bag, Tup
    if isinstance(value, Bag):
        return Bag.from_counts(
            {_deep_dedup(element): 1 for element in value.distinct()})
    if isinstance(value, Tup):
        return Tup(*(_deep_dedup(item) for item in value.items()))
    return value


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

NAT = NatSemiring()
BOOL = BoolSemiring()
TROPICAL = TropicalSemiring()
PROVENANCE = ProvenancePolynomial()

#: Canonical name -> instance (aliases included).
SEMIRINGS: Dict[str, Semiring] = {
    "nat": NAT, "n": NAT, "bag": NAT,
    "bool": BOOL, "boolean": BOOL, "set": BOOL,
    "tropical": TROPICAL, "trop": TROPICAL, "minplus": TROPICAL,
    "provenance": PROVENANCE, "prov": PROVENANCE, "why": PROVENANCE,
}


def known_semirings() -> Tuple[str, ...]:
    """The canonical (non-alias) names, for help text."""
    return ("nat", "bool", "tropical", "provenance")


def resolve_semiring(
        spec: Union[str, Semiring, None]) -> Optional[Semiring]:
    """Resolve a name or instance; the N default normalises to None.

    Every execution layer treats ``None`` as "plain int counts, run
    the original fast path", so NatSemiring never pays the generic
    dispatch.
    """
    if spec is None:
        return None
    if isinstance(spec, Semiring):
        return None if isinstance(spec, NatSemiring) else spec
    name = str(spec).strip().lower()
    instance = SEMIRINGS.get(name)
    if instance is None:
        raise ValueError(
            f"unknown semiring {spec!r}; known: "
            + ", ".join(known_semirings()))
    return None if isinstance(instance, NatSemiring) else instance


def semiring_name(sr: Optional[Semiring]) -> str:
    """Canonical name of a resolved semiring (None -> 'nat')."""
    return "nat" if sr is None else sr.name
