"""Instrumented evaluator for bag-algebra expressions.

The evaluator is deliberately small: every AST node knows how to compute
itself (``Expr._evaluate``), and the :class:`Evaluator` supplies

* the environment discipline (lexically scoped lambda bindings on top
  of the database bindings),
* an optional :class:`~repro.guard.ResourceGovernor` enforcing step
  budgets, intermediate-size budgets, wall-clock deadlines, recursion
  depth limits, and cooperative cancellation on **every node** — the
  powerset budget of earlier versions is one slice of it
  (Propositions 3.2 / Theorem 5.5 territory), and
* **instrumentation**: per-operator execution counts, peak intermediate
  standard-encoding size, and peak multiplicity.  These measurements are
  what turn the complexity theorems of the paper (Thm 4.4 LOGSPACE,
  Thm 5.1 PSPACE, Thm 6.2 hierarchy) into experiments.

Governed failures raise the structured
:class:`~repro.core.errors.GovernedError` family with the partial
:class:`EvalStats` attached, so a blow-up degrades into an inspectable
error instead of taking the process down.

The environment is a linked chain of frames so that binding a lambda
parameter is O(1) even inside a MAP over a large bag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.bag import Bag
from repro.core.database import Instance, encoding_size
from repro.core.errors import (
    GovernedError, RecursionDepthExceeded, ResourceLimitError,
    UnboundVariableError,
)
from repro.core.expr import Expr
from repro.guard.governor import CancellationToken, Limits, ResourceGovernor

__all__ = ["EvalStats", "Evaluator", "evaluate"]


@dataclass
class EvalStats:
    """Measurements gathered during one or more evaluations."""

    #: node-class-name -> number of times that operator executed.
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: Largest standard-encoding size of any intermediate bag result.
    peak_encoding_size: int = 0
    #: Largest multiplicity of any element of any intermediate bag.
    peak_multiplicity: int = 0
    #: Largest number of *distinct* elements of any intermediate bag.
    peak_distinct: int = 0
    #: Total number of node evaluations.
    nodes_evaluated: int = 0

    def record(self, node: Expr, result: Any) -> None:
        name = type(node).__name__
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        self.nodes_evaluated += 1
        if isinstance(result, Bag):
            self.peak_encoding_size = max(self.peak_encoding_size,
                                          encoding_size(result))
            self.peak_distinct = max(self.peak_distinct,
                                     result.distinct_count)
            if not result.is_empty():
                int_counts = [count for _, count in result.items()
                              if isinstance(count, int)]
                if int_counts:
                    self.peak_multiplicity = max(self.peak_multiplicity,
                                                 max(int_counts))

    def merged_with(self, other: "EvalStats") -> "EvalStats":
        """Combine two measurement records (used by benchmark sweeps)."""
        merged = EvalStats()
        merged.op_counts = dict(self.op_counts)
        for name, count in other.op_counts.items():
            merged.op_counts[name] = merged.op_counts.get(name, 0) + count
        merged.peak_encoding_size = max(self.peak_encoding_size,
                                        other.peak_encoding_size)
        merged.peak_multiplicity = max(self.peak_multiplicity,
                                       other.peak_multiplicity)
        merged.peak_distinct = max(self.peak_distinct, other.peak_distinct)
        merged.nodes_evaluated = (self.nodes_evaluated
                                  + other.nodes_evaluated)
        return merged


#: Environment frames: None (empty) or (name, value, parent_frame).
_Frame = Optional[Tuple[str, Any, Any]]


class Evaluator:
    """Evaluates expressions against a database instance.

    Parameters
    ----------
    powerset_budget:
        Maximal number of subbags a single powerset/powerbag result may
        contain; ``None`` means unlimited.  Exceeding the budget raises
        :class:`~repro.core.errors.BudgetExceeded` before anything
        is materialised.
    track_stats:
        Disable to shave the instrumentation overhead off timing runs.
    governor:
        A pre-built :class:`~repro.guard.ResourceGovernor` to share
        with other layers (IFP, SQL, game search); alternatively pass
        ``limits`` or the individual keyword limits below and a
        private governor is built.  Without any of these the evaluator
        runs ungoverned, with zero per-node overhead.
    limits / max_steps / max_size / timeout / max_depth /
    max_iterations / cancellation / faults / clock:
        Shorthand for ``governor=ResourceGovernor(...)``.
    """

    def __init__(self, powerset_budget: Optional[int] = None,
                 track_stats: bool = True, *,
                 governor: Optional[ResourceGovernor] = None,
                 limits: Optional[Limits] = None,
                 max_steps: Optional[int] = None,
                 max_size: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_depth: Optional[int] = None,
                 max_iterations: Optional[int] = None,
                 cancellation: Optional[CancellationToken] = None,
                 faults=None, clock=None, semiring=None):
        from repro.core.semiring import resolve_semiring
        self.semiring = resolve_semiring(semiring)
        if governor is None:
            wants_governor = (
                faults is not None or cancellation is not None
                or (limits is not None and limits.any_set())
                or any(value is not None for value in (
                    max_steps, max_size, timeout, max_depth,
                    max_iterations)))
            if wants_governor:
                extra = {"clock": clock} if clock is not None else {}
                governor = ResourceGovernor(
                    limits, max_steps=max_steps, max_size=max_size,
                    powerset_budget=powerset_budget, timeout=timeout,
                    max_depth=max_depth, max_iterations=max_iterations,
                    token=cancellation, faults=faults, **extra)
        self.governor = governor
        if powerset_budget is None and governor is not None:
            powerset_budget = governor.powerset_budget
        self.powerset_budget = powerset_budget
        self.track_stats = track_stats
        self.stats = EvalStats()

    # -- environment -----------------------------------------------------

    def bind(self, env, name: str, value: Any):
        """Push a lambda binding on the environment chain."""
        base, frame = env
        return (base, (name, value, frame))

    def lookup(self, name: str, env) -> Any:
        """Resolve a variable: lambda frames first, then the database."""
        base, frame = env
        while frame is not None:
            frame_name, value, frame = frame
            if frame_name == name:
                return value
        if name in base:
            return base[name]
        raise UnboundVariableError(f"unbound variable {name!r}")

    # -- evaluation -------------------------------------------------------

    def eval(self, expr: Expr, env) -> Any:
        """Evaluate a node in an environment (internal entry point)."""
        governor = self.governor
        if governor is None:
            result = expr._evaluate(self, env)
            if self.track_stats:
                self.stats.record(expr, result)
            return result
        governor.tick(self.stats)
        governor.enter(self.stats)
        try:
            result = expr._evaluate(self, env)
        finally:
            governor.exit()
        if governor.max_size is not None and isinstance(result, Bag):
            governor.check_size(encoding_size(result), self.stats)
        if self.track_stats:
            self.stats.record(expr, result)
        return result

    def run(self, expr: Expr, database: Optional[Mapping[str, Bag]] = None,
            **named_bags: Bag) -> Any:
        """Evaluate ``expr`` against database bindings.

        ``database`` may be a plain mapping or an
        :class:`~repro.core.database.Instance`; keyword arguments add or
        override individual bags.
        """
        bindings: Dict[str, Any] = {}
        if isinstance(database, Instance):
            bindings.update(database.bags())
        elif database is not None:
            bindings.update(database)
        bindings.update(named_bags)
        sr = self.semiring
        if sr is not None:
            referenced = expr.free_vars()
            bindings = {name: (sr.adapt_bag(value, name)
                               if isinstance(value, Bag)
                               and name in referenced else value)
                        for name, value in bindings.items()}
        if self.governor is not None:
            self.governor.ensure_started()
        try:
            missing = expr.free_vars() - set(bindings)
            if missing:
                raise UnboundVariableError(
                    f"expression mentions unbound bag(s): "
                    f"{sorted(missing)}")
            return self.eval(expr, (bindings, None))
        except RecursionError as exc:
            raise RecursionDepthExceeded(
                "expression or value nesting exceeded the Python "
                "recursion limit", stats=self.stats) from exc
        except GovernedError as error:
            if error.stats is None:
                error.stats = self.stats
            raise
        except ResourceLimitError as error:
            # pre-governor limits (powerset budget, dom budget) carry
            # the partial measurements too
            if getattr(error, "stats", None) is None:
                error.stats = self.stats
            raise


def evaluate(expr: Expr, database: Optional[Mapping[str, Bag]] = None,
             powerset_budget: Optional[int] = None,
             governor: Optional[ResourceGovernor] = None,
             limits: Optional[Limits] = None,
             engine: str = "tree",
             workers: Optional[int] = None,
             parallel_backend: str = "thread",
             opt_level: Optional[int] = None,
             config=None,
             resilience=None,
             catalog=None,
             feedback: bool = False,
             semiring=None,
             **named_bags: Bag) -> Any:
    """One-shot convenience wrapper around :class:`Evaluator`.

    ``engine`` selects the evaluation strategy: ``"tree"`` (default)
    is this module's instrumented tree walker — the semantics oracle —
    while ``"physical"`` dispatches to the pipelined kernel engine of
    :mod:`repro.engine`, ``"parallel"`` to its morsel-driven
    executor (``workers`` threads, or processes with
    ``parallel_backend="process"``), and ``"codegen"`` to the
    columnar runtime that fuses pipeline segments into generated
    closures.  Same results, bag-equal by the differential fuzz
    suite; governed limits apply either way.

    Every path routes through the staged planner
    (:func:`repro.planner.compile`).  ``opt_level`` (or a full
    :class:`~repro.planner.PassConfig`) picks the passes; the tree
    walker defaults to level 0 — the oracle evaluates the query *as
    written* — while the physical engines default to level 1 and the
    codegen engine to level 3 (the fusion stage).

    >>> from repro.core.expr import var
    >>> from repro.core.bag import Bag
    >>> evaluate(var("B") + var("B"), B=Bag.of("a"))
    {{'a'*2}}
    >>> evaluate(var("B") + var("B"), B=Bag.of("a"), engine="physical")
    {{'a'*2}}
    """
    if engine != "tree":
        from repro import engine as physical_engine
        extra = {}
        if engine == "parallel":
            extra = {"workers": workers,
                     "parallel_backend": parallel_backend,
                     "resilience": resilience}
        return physical_engine.evaluate(
            expr, database, engine=engine, governor=governor,
            limits=limits, powerset_budget=powerset_budget,
            opt_level=opt_level, config=config,
            catalog=catalog, feedback=feedback, semiring=semiring,
            **extra, **named_bags)
    # the oracle path: compile at opt level 0 by default, so the tree
    # walker evaluates exactly the query the caller wrote
    from repro.core.semiring import semiring_name
    from repro.planner import PassConfig, PlanContext
    from repro.planner import compile as planner_compile
    evaluator = Evaluator(powerset_budget=powerset_budget,
                          governor=governor, limits=limits,
                          semiring=semiring)
    if config is None:
        config = PassConfig.for_level(
            0 if opt_level is None else opt_level,
            semiring=semiring_name(evaluator.semiring))
    elif evaluator.semiring is not None:
        from dataclasses import replace as _replace
        if config.semiring != evaluator.semiring.name:
            config = _replace(config,
                              semiring=evaluator.semiring.name)
    try:
        compiled = planner_compile(
            expr, PlanContext(engine="tree",
                              governor=evaluator.governor,
                              config=config))
    except GovernedError as error:
        if error.stats is None:
            error.stats = evaluator.stats
        raise
    return evaluator.run(compiled.logical, database, **named_bags)
