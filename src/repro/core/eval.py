"""Instrumented evaluator for bag-algebra expressions.

The evaluator is deliberately small: every AST node knows how to compute
itself (``Expr._evaluate``), and the :class:`Evaluator` supplies

* the environment discipline (lexically scoped lambda bindings on top
  of the database bindings),
* an optional **powerset budget** that aborts evaluation before an
  exponential blow-up (Propositions 3.2 / Theorem 5.5 territory), and
* **instrumentation**: per-operator execution counts, peak intermediate
  standard-encoding size, and peak multiplicity.  These measurements are
  what turn the complexity theorems of the paper (Thm 4.4 LOGSPACE,
  Thm 5.1 PSPACE, Thm 6.2 hierarchy) into experiments.

The environment is a linked chain of frames so that binding a lambda
parameter is O(1) even inside a MAP over a large bag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.bag import Bag
from repro.core.database import Instance, encoding_size
from repro.core.errors import EvaluationError, UnboundVariableError
from repro.core.expr import Expr

__all__ = ["EvalStats", "Evaluator", "evaluate"]


@dataclass
class EvalStats:
    """Measurements gathered during one or more evaluations."""

    #: node-class-name -> number of times that operator executed.
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: Largest standard-encoding size of any intermediate bag result.
    peak_encoding_size: int = 0
    #: Largest multiplicity of any element of any intermediate bag.
    peak_multiplicity: int = 0
    #: Largest number of *distinct* elements of any intermediate bag.
    peak_distinct: int = 0
    #: Total number of node evaluations.
    nodes_evaluated: int = 0

    def record(self, node: Expr, result: Any) -> None:
        name = type(node).__name__
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        self.nodes_evaluated += 1
        if isinstance(result, Bag):
            self.peak_encoding_size = max(self.peak_encoding_size,
                                          encoding_size(result))
            self.peak_distinct = max(self.peak_distinct,
                                     result.distinct_count)
            if not result.is_empty():
                top = max(count for _, count in result.items())
                self.peak_multiplicity = max(self.peak_multiplicity, top)

    def merged_with(self, other: "EvalStats") -> "EvalStats":
        """Combine two measurement records (used by benchmark sweeps)."""
        merged = EvalStats()
        merged.op_counts = dict(self.op_counts)
        for name, count in other.op_counts.items():
            merged.op_counts[name] = merged.op_counts.get(name, 0) + count
        merged.peak_encoding_size = max(self.peak_encoding_size,
                                        other.peak_encoding_size)
        merged.peak_multiplicity = max(self.peak_multiplicity,
                                       other.peak_multiplicity)
        merged.peak_distinct = max(self.peak_distinct, other.peak_distinct)
        merged.nodes_evaluated = (self.nodes_evaluated
                                  + other.nodes_evaluated)
        return merged


#: Environment frames: None (empty) or (name, value, parent_frame).
_Frame = Optional[Tuple[str, Any, Any]]


class Evaluator:
    """Evaluates expressions against a database instance.

    Parameters
    ----------
    powerset_budget:
        Maximal number of subbags a single powerset/powerbag result may
        contain; ``None`` means unlimited.  Exceeding the budget raises
        :class:`~repro.core.errors.ResourceLimitError` before anything
        is materialised.
    track_stats:
        Disable to shave the instrumentation overhead off timing runs.
    """

    def __init__(self, powerset_budget: Optional[int] = None,
                 track_stats: bool = True):
        self.powerset_budget = powerset_budget
        self.track_stats = track_stats
        self.stats = EvalStats()

    # -- environment -----------------------------------------------------

    def bind(self, env, name: str, value: Any):
        """Push a lambda binding on the environment chain."""
        base, frame = env
        return (base, (name, value, frame))

    def lookup(self, name: str, env) -> Any:
        """Resolve a variable: lambda frames first, then the database."""
        base, frame = env
        while frame is not None:
            frame_name, value, frame = frame
            if frame_name == name:
                return value
        if name in base:
            return base[name]
        raise UnboundVariableError(f"unbound variable {name!r}")

    # -- evaluation -------------------------------------------------------

    def eval(self, expr: Expr, env) -> Any:
        """Evaluate a node in an environment (internal entry point)."""
        result = expr._evaluate(self, env)
        if self.track_stats:
            self.stats.record(expr, result)
        return result

    def run(self, expr: Expr, database: Optional[Mapping[str, Bag]] = None,
            **named_bags: Bag) -> Any:
        """Evaluate ``expr`` against database bindings.

        ``database`` may be a plain mapping or an
        :class:`~repro.core.database.Instance`; keyword arguments add or
        override individual bags.
        """
        bindings: Dict[str, Any] = {}
        if isinstance(database, Instance):
            bindings.update(database.bags())
        elif database is not None:
            bindings.update(database)
        bindings.update(named_bags)
        missing = expr.free_vars() - set(bindings)
        if missing:
            raise UnboundVariableError(
                f"expression mentions unbound bag(s): {sorted(missing)}")
        try:
            return self.eval(expr, (bindings, None))
        except RecursionError as exc:  # pragma: no cover - defensive
            raise EvaluationError(
                "expression nesting too deep for the evaluator") from exc


def evaluate(expr: Expr, database: Optional[Mapping[str, Bag]] = None,
             powerset_budget: Optional[int] = None,
             **named_bags: Bag) -> Any:
    """One-shot convenience wrapper around :class:`Evaluator`.

    >>> from repro.core.expr import var
    >>> from repro.core.bag import Bag
    >>> evaluate(var("B") + var("B"), B=Bag.of("a"))
    {{'a'*2}}
    """
    return Evaluator(powerset_budget=powerset_budget).run(
        expr, database, **named_bags)
