"""Expression AST for the bag algebra BALG (Section 3).

An :class:`Expr` denotes a mapping from database instances (environments
binding bag names to bag values) to complex objects.  Following the
paper, expressions cover both bag-level operators (union, powerset, ...)
and object-level constructs used inside lambda expressions (attribute
projection, tupling, constants).

Lambda notation
---------------
``Lam("x", body)`` is the paper's ``lambda x . e(x)``.  Lambdas appear
in ``MAP`` and in selections ``sigma_{phi = phi'}``; their bodies are
ordinary expressions in which the bound variable occurs free, and they
close over enclosing lambda variables lexically (the parity query of
Section 4 needs exactly that).

Evaluation and typing are *not* implemented here: every node implements
two hooks — ``_evaluate(evaluator, env)`` and ``_infer(checker, tenv)``
— and the drivers live in :mod:`repro.core.eval` and
:mod:`repro.core.typecheck`.  New operators (e.g. the inflationary
fixpoint of Theorem 6.6, defined in :mod:`repro.machines.ifp`) plug in
by subclassing :class:`Expr` and implementing the same hooks.

Python operator sugar on expressions::

    e1 + e2     additive union  (+)
    e1 - e2     subtraction     -
    e1 | e2     maximal union   u
    e1 & e2     intersection    n
    e1 * e2     Cartesian product x
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core import ops
from repro.core.types import (
    BagType, TupleType, Type, U, UNKNOWN, type_of, unify,
)

__all__ = [
    "Expr", "Var", "Const", "Lam",
    "AdditiveUnion", "Subtraction", "MaxUnion", "Intersection",
    "Tupling", "Bagging", "Cartesian", "Powerset", "Powerbag",
    "Attribute", "BagDestroy", "Map", "Select", "Dedup",
    "EMPTY", "const", "var",
]

#: Comparison operators allowed in selections.  The paper's sigma only
#: tests equality; ``ne/le/lt`` support the order-enriched setting of
#: Section 4 (parity of a cardinality is definable *given an order on
#: the domain*).
_SELECT_OPS = ("eq", "ne", "le", "lt")


class Expr:
    """Abstract base class of algebra expressions."""

    __slots__ = ()

    # -- structure -----------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        """Direct subexpressions (lambda bodies included)."""
        raise NotImplementedError

    def lambdas(self) -> Tuple["Lam", ...]:
        """Lambda arguments of this node, if any."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree, descending into
        lambda bodies."""
        yield self
        for child in self.children():
            yield from child.walk()

    def free_vars(self) -> frozenset:
        """Names of free variables (database names and unbound lambda
        parameters)."""
        found = set()
        for child in self.children():
            found |= child.free_vars()
        for lam in self.lambdas():
            found |= lam.body.free_vars() - {lam.param}
        return frozenset(found)

    def size(self) -> int:
        """Number of AST nodes (the induction measure of Prop 4.1)."""
        return 1 + sum(child.size() for child in self.children())

    # -- hooks ----------------------------------------------------------

    def _evaluate(self, evaluator, env) -> Any:
        raise NotImplementedError

    def _infer(self, checker, tenv) -> Type:
        raise NotImplementedError

    # -- sugar ----------------------------------------------------------

    def __add__(self, other: "Expr") -> "AdditiveUnion":
        return AdditiveUnion(self, _as_expr(other))

    def __sub__(self, other: "Expr") -> "Subtraction":
        return Subtraction(self, _as_expr(other))

    def __or__(self, other: "Expr") -> "MaxUnion":
        return MaxUnion(self, _as_expr(other))

    def __and__(self, other: "Expr") -> "Intersection":
        return Intersection(self, _as_expr(other))

    def __mul__(self, other: "Expr") -> "Cartesian":
        return Cartesian(self, _as_expr(other))

    # Structural equality lets the optimizer compare rewrites.
    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        raise NotImplementedError


def _as_expr(value: Any) -> Expr:
    """Lift raw complex objects to Const nodes in operator sugar."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (Bag, Tup)) or value is None:
        return Const(value)
    return Const(value)


class Var(Expr):
    """A variable: a database bag name or a lambda-bound object."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise BagTypeError(f"variable name must be a non-empty str, "
                               f"got {name!r}")
        self.name = name

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def free_vars(self) -> frozenset:
        return frozenset({self.name})

    def _evaluate(self, evaluator, env):
        return evaluator.lookup(self.name, env)

    def _infer(self, checker, tenv):
        return checker.lookup(self.name, tenv)

    def _key(self):
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class Const(Expr):
    """A literal complex object (atom, tuple, or bag)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        if isinstance(value, (list, set, dict)):
            raise BagTypeError(
                "constants must be complex objects (atom/Tup/Bag), got "
                f"{type(value).__name__}")
        self.value = value

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def _evaluate(self, evaluator, env):
        sr = evaluator.semiring
        if sr is not None and isinstance(self.value, Bag):
            return sr.adapt_bag(self.value)
        return self.value

    def _infer(self, checker, tenv):
        return type_of(self.value)

    def _key(self):
        return (self.value,)

    def __repr__(self) -> str:
        return repr(self.value)


class Lam:
    """The paper's lambda notation ``lambda x . e(x)``.

    Not itself an expression: lambdas only occur as arguments of MAP
    and selections.
    """

    __slots__ = ("param", "body")

    def __init__(self, param: str, body: Expr):
        if not isinstance(param, str) or not param:
            raise BagTypeError("lambda parameter must be a non-empty str")
        if not isinstance(body, Expr):
            raise BagTypeError(
                f"lambda body must be an Expr, got {type(body).__name__}")
        self.param = param
        self.body = body

    def apply(self, evaluator, env, argument: Any) -> Any:
        """Evaluate the body with ``param`` bound to ``argument``."""
        return evaluator.eval(self.body, evaluator.bind(env, self.param,
                                                        argument))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Lam) and self.param == other.param
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash(("Lam", self.param, self.body))

    def __repr__(self) -> str:
        return f"λ{self.param}.{self.body!r}"


class _Binary(Expr):
    """Shared plumbing for the four same-type binary bag operators."""

    __slots__ = ("left", "right")
    _op = None            # type: ignore[assignment]
    _symbol = "?"

    def __init__(self, left: Expr, right: Expr):
        self.left = _as_expr(left)
        self.right = _as_expr(right)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, evaluator, env):
        left = evaluator.eval(self.left, env)
        right = evaluator.eval(self.right, env)
        return type(self)._op(left, right, evaluator.semiring)

    def _infer(self, checker, tenv):
        left = checker.infer(self.left, tenv)
        right = checker.infer(self.right, tenv)
        if not isinstance(left, BagType) or not isinstance(right, BagType):
            raise BagTypeError(
                f"{self._symbol} requires bag operands, got "
                f"{left!r} and {right!r}")
        return unify(left, right)

    def _key(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"


class AdditiveUnion(_Binary):
    """``B (+) B'``: additive union."""
    __slots__ = ()
    _op = staticmethod(ops.additive_union)
    _symbol = "(+)"


class Subtraction(_Binary):
    """``B - B'``: bag subtraction (monus on multiplicities)."""
    __slots__ = ()
    _op = staticmethod(ops.subtraction)
    _symbol = "-"


class MaxUnion(_Binary):
    """``B u B'``: maximal union."""
    __slots__ = ()
    _op = staticmethod(ops.max_union)
    _symbol = "u"


class Intersection(_Binary):
    """``B n B'``: bag intersection."""
    __slots__ = ()
    _op = staticmethod(ops.intersection)
    _symbol = "n"


class Tupling(Expr):
    """``tau(o1, ..., ok)``: tuple construction."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Expr):
        self.parts = tuple(_as_expr(part) for part in parts)

    def children(self) -> Tuple[Expr, ...]:
        return self.parts

    def _evaluate(self, evaluator, env):
        return Tup(*(evaluator.eval(part, env) for part in self.parts))

    def _infer(self, checker, tenv):
        return TupleType(tuple(checker.infer(part, tenv)
                               for part in self.parts))

    def _key(self):
        return self.parts

    def __repr__(self) -> str:
        inner = ", ".join(repr(part) for part in self.parts)
        return f"τ({inner})"


class Bagging(Expr):
    """``beta(o)``: singleton bag construction."""

    __slots__ = ("item",)

    def __init__(self, item: Expr):
        self.item = _as_expr(item)

    def children(self) -> Tuple[Expr, ...]:
        return (self.item,)

    def _evaluate(self, evaluator, env):
        item = evaluator.eval(self.item, env)
        sr = evaluator.semiring
        if sr is None:
            return Bag.of(item)
        return Bag.from_counts({item: sr.one})

    def _infer(self, checker, tenv):
        return BagType(checker.infer(self.item, tenv))

    def _key(self):
        return (self.item,)

    def __repr__(self) -> str:
        return f"β({self.item!r})"


class Cartesian(Expr):
    """``B x B'``: Cartesian product of bags of tuples."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = _as_expr(left)
        self.right = _as_expr(right)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, evaluator, env):
        return ops.cartesian(evaluator.eval(self.left, env),
                             evaluator.eval(self.right, env),
                             evaluator.semiring)

    def _infer(self, checker, tenv):
        left = checker.infer(self.left, tenv)
        right = checker.infer(self.right, tenv)
        for side, bag_type in (("left", left), ("right", right)):
            if not isinstance(bag_type, BagType):
                raise BagTypeError(
                    f"cartesian product: {side} operand must be a bag, "
                    f"got {bag_type!r}")
        left_el, right_el = left.element, right.element
        left_attrs = _tuple_attrs(left_el, "left")
        right_attrs = _tuple_attrs(right_el, "right")
        return BagType(TupleType(left_attrs + right_attrs))

    def _key(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} x {self.right!r})"


def _tuple_attrs(element_type: Type, side: str) -> Tuple[Type, ...]:
    """Attribute types of a product operand; empty bags contribute an
    unknown-arity placeholder, which we reject to keep typing decidable."""
    if isinstance(element_type, TupleType):
        return element_type.attributes
    if element_type == UNKNOWN:
        raise BagTypeError(
            f"cartesian product: cannot infer the arity of the {side} "
            "operand (empty-bag literal); annotate it via the schema")
    raise BagTypeError(
        f"cartesian product requires bags of tuples; {side} element "
        f"type is {element_type!r}")


class Powerset(Expr):
    """``P(B)``: the bag of all subbags, one occurrence each."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = _as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return ops.powerset(evaluator.eval(self.operand, env),
                            budget=evaluator.powerset_budget,
                            sr=evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(
                f"powerset requires a bag operand, got {operand!r}")
        return BagType(operand)

    def _key(self):
        return (self.operand,)

    def __repr__(self) -> str:
        return f"P({self.operand!r})"


class Powerbag(Expr):
    """``P_b(B)``: the duplicate-aware powerset of Definition 5.1.

    Not part of BALG proper — the paper excludes it for tractability —
    but provided for the Section 5/6 experiments."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = _as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return ops.powerbag(evaluator.eval(self.operand, env),
                            budget=evaluator.powerset_budget,
                            sr=evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(
                f"powerbag requires a bag operand, got {operand!r}")
        return BagType(operand)

    def _key(self):
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Pb({self.operand!r})"


class Attribute(Expr):
    """``alpha_i(o)``: attribute projection of a tuple, 1-based."""

    __slots__ = ("operand", "index")

    def __init__(self, operand: Expr, index: int):
        if not isinstance(index, int) or index < 1:
            raise BagTypeError(
                f"attribute index must be a positive int, got {index!r}")
        self.operand = _as_expr(operand)
        self.index = index

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return ops.attribute(evaluator.eval(self.operand, env), self.index)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, TupleType):
            raise BagTypeError(
                f"alpha_{self.index} requires a tuple operand, got "
                f"{operand!r}")
        return operand.attribute(self.index)

    def _key(self):
        return (self.operand, self.index)

    def __repr__(self) -> str:
        return f"α{self.index}({self.operand!r})"


class BagDestroy(Expr):
    """``delta(B)``: flatten one level of bag nesting additively."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = _as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return ops.bag_destroy(evaluator.eval(self.operand, env),
                               evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(
                f"bag-destroy requires a bag operand, got {operand!r}")
        inner = operand.element
        if isinstance(inner, BagType):
            return inner
        if inner == UNKNOWN:
            return BagType(UNKNOWN)
        raise BagTypeError(
            f"bag-destroy requires a bag of bags, element type is "
            f"{inner!r}")

    def _key(self):
        return (self.operand,)

    def __repr__(self) -> str:
        return f"δ({self.operand!r})"


class Map(Expr):
    """``MAP_phi(B)``: restructuring; multiplicities of colliding images
    add up."""

    __slots__ = ("lam", "operand")

    def __init__(self, lam: Lam, operand: Expr):
        if not isinstance(lam, Lam):
            raise BagTypeError("MAP requires a Lam argument")
        self.lam = lam
        self.operand = _as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.lam.body)

    def lambdas(self) -> Tuple[Lam, ...]:
        return (self.lam,)

    def free_vars(self) -> frozenset:
        return (self.operand.free_vars()
                | (self.lam.body.free_vars() - {self.lam.param}))

    def _evaluate(self, evaluator, env):
        operand = evaluator.eval(self.operand, env)
        return ops.map_bag(
            lambda element: self.lam.apply(evaluator, env, element),
            operand, evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(f"MAP requires a bag operand, got "
                               f"{operand!r}")
        image = checker.infer(
            self.lam.body,
            checker.bind(tenv, self.lam.param, operand.element))
        return BagType(image)

    def _key(self):
        return (self.lam, self.operand)

    def __repr__(self) -> str:
        return f"MAP[{self.lam!r}]({self.operand!r})"


class Select(Expr):
    """``sigma_{phi op phi'}(B)``: selection.

    ``op`` is ``eq`` in the pure paper algebra; ``ne``, ``le``, ``lt``
    are available for the order-enriched results of Section 4 (the
    comparison uses the canonical order on complex objects, which on
    homogeneous atoms coincides with the natural order).
    """

    __slots__ = ("left", "right", "operand", "op")

    def __init__(self, left: Lam, right: Lam, operand: Expr,
                 op: str = "eq"):
        if not isinstance(left, Lam) or not isinstance(right, Lam):
            raise BagTypeError("selection requires two Lam arguments")
        if op not in _SELECT_OPS:
            raise BagTypeError(
                f"selection comparator must be one of {_SELECT_OPS}, "
                f"got {op!r}")
        self.left = left
        self.right = right
        self.operand = _as_expr(operand)
        self.op = op

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.left.body, self.right.body)

    def lambdas(self) -> Tuple[Lam, ...]:
        return (self.left, self.right)

    def free_vars(self) -> frozenset:
        return (self.operand.free_vars()
                | (self.left.body.free_vars() - {self.left.param})
                | (self.right.body.free_vars() - {self.right.param}))

    def _evaluate(self, evaluator, env):
        operand = evaluator.eval(self.operand, env)

        def predicate(element):
            lhs = self.left.apply(evaluator, env, element)
            rhs = self.right.apply(evaluator, env, element)
            return _compare(self.op, lhs, rhs)

        return ops.select(predicate, operand, evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(
                f"selection requires a bag operand, got {operand!r}")
        lhs = checker.infer(
            self.left.body,
            checker.bind(tenv, self.left.param, operand.element))
        rhs = checker.infer(
            self.right.body,
            checker.bind(tenv, self.right.param, operand.element))
        unify(lhs, rhs)  # both sides of the comparison must agree
        return operand

    def _key(self):
        return (self.left, self.right, self.operand, self.op)

    def __repr__(self) -> str:
        symbol = {"eq": "=", "ne": "!=", "le": "<=", "lt": "<"}[self.op]
        return (f"σ[{self.left!r} {symbol} {self.right!r}]"
                f"({self.operand!r})")


def _compare(op: str, lhs: Any, rhs: Any) -> bool:
    """Comparison semantics for selections."""
    if op == "eq":
        return lhs == rhs
    if op == "ne":
        return lhs != rhs
    from repro.core.bag import canonical_key
    left_key, right_key = canonical_key(lhs), canonical_key(rhs)
    if op == "le":
        return left_key <= right_key
    return left_key < right_key


class Dedup(Expr):
    """``eps(B)``: duplicate elimination."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = _as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return ops.dedup(evaluator.eval(self.operand, env),
                         evaluator.semiring)

    def _infer(self, checker, tenv):
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType):
            raise BagTypeError(
                f"duplicate elimination requires a bag, got {operand!r}")
        return operand

    def _key(self):
        return (self.operand,)

    def __repr__(self) -> str:
        return f"ε({self.operand!r})"


#: The empty-bag literal ``[[ ]]``.
EMPTY = Const(Bag())


def const(value: Any) -> Const:
    """Shorthand constructor for constants."""
    return Const(value)


def var(name: str) -> Var:
    """Shorthand constructor for variables."""
    return Var(name)
