"""Derived operators and the paper's worked queries.

This module is the executable form of the identities of Sections 3-4:

* projection ``pi_{i1..in}`` as a MAP (Section 3);
* duplicate elimination derived from the powerset (Proposition 3.1);
* subtraction derived from the powerset (Section 3, the
  ``BALG_{-minus}`` identity);
* additive union derived from maximal union + product + MAP (the
  tagging identity of Section 3);
* integers as bags, and the aggregate functions ``count``, ``sum``,
  ``average`` (Section 3);
* cardinality comparison and degree comparison (Examples 4.1 / 4.2);
* counting, Hartig, and Rescher quantifiers (Section 4);
* the parity-of-a-relation query in the presence of an order
  (Section 4), and the ``bag-even`` query of Proposition 4.5 as a
  *native* reference implementation (it is provably not expressible in
  BALG^1 — that is the point of the proposition).

Each derived form comes as a function building an :class:`Expr`; tests
verify the identities against the primitive operators on random inputs.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerset, Select,
    Subtraction, Tupling, Var,
)
from repro.core.types import BagType, TupleType, Type, UNKNOWN, U

__all__ = [
    "project_expr", "select_attr_eq_const", "select_attr_eq_attr",
    "derived_dedup", "derived_subtraction", "derived_additive_union",
    "int_as_bag", "bag_as_int", "count_expr", "sum_expr", "average_expr",
    "card_greater_expr", "card_at_least_expr", "hartig_expr",
    "rescher_expr", "in_degree_greater_expr", "parity_even_expr",
    "membership_expr", "is_nonempty", "bag_even_native",
    "MARKER",
]

#: The marker constant the paper calls ``a`` in ``count``; any constant
#: not occurring in the data works.
MARKER = "#"


# ----------------------------------------------------------------------
# Small syntactic helpers
# ----------------------------------------------------------------------

def project_expr(operand: Expr, *indices: int) -> Map:
    """``pi_{i1,...,in}(B)``: the MAP projecting the given 1-based
    attributes (the paper's abbreviation)."""
    if not indices:
        raise BagTypeError("projection needs at least one attribute")
    body = Tupling(*(Attribute(Var("·x"), i) for i in indices))
    return Map(Lam("·x", body), operand)


def select_attr_eq_const(operand: Expr, index: int,
                         constant: Any) -> Select:
    """``sigma_{i=c}(B)``: keep tuples whose i-th attribute equals the
    constant (the shorthand of Example 4.1)."""
    return Select(Lam("·x", Attribute(Var("·x"), index)),
                  Lam("·x", Const(constant)), operand)


def select_attr_eq_attr(operand: Expr, i: int, j: int) -> Select:
    """``sigma_{alpha_i = alpha_j}(B)``: the equality selection used in
    the Section 4 counting table."""
    return Select(Lam("·x", Attribute(Var("·x"), i)),
                  Lam("·x", Attribute(Var("·x"), j)), operand)


def is_nonempty(bag: Bag) -> bool:
    """Boolean reading of a query result (the paper's ``<> empty``)."""
    return not bag.is_empty()


# ----------------------------------------------------------------------
# Proposition 3.1: duplicate elimination is redundant in BALG
# ----------------------------------------------------------------------

def derived_dedup(operand: Expr, element_type: Type) -> Expr:
    """``eps`` expressed without the eps operator (Proposition 3.1).

    * flat-tuple elements:  ``eps(B) = delta(P(B) n MAP_beta(B))`` —
      P(B) holds one occurrence of every subbag, MAP_beta(B) holds the
      singleton ``{{t}}`` once per occurrence of t; intersecting keeps
      exactly one singleton per present tuple and delta unwraps them;
    * bag elements:        ``eps(B) = P(delta(B)) n B`` — every member
      bag is a subbag of the flattening, so it appears once in the
      powerset, and intersection caps its multiplicity at 1;
    * tuples with nested attributes: the recursive formula
      ``eps(B) = B n (eps(pi_1 B) x ... x eps(pi_k B))`` with each
      attribute deduplicated recursively (bag-typed attributes are
      re-wrapped into 1-tuples with tau so the product stays typed).

    Note how the first formula *increases the bag nesting* of the
    intermediate type — Section 4 shows that increase is unavoidable.
    """
    if isinstance(element_type, BagType):
        return Intersection(Powerset(BagDestroy(operand)), operand)
    if not isinstance(element_type, TupleType):
        # Bag of atoms: wrap into 1-tuples, dedup, unwrap.
        wrapped = Map(Lam("·w", Tupling(Var("·w"))), operand)
        flat = derived_dedup(wrapped, TupleType((U,)))
        return Map(Lam("·w", Attribute(Var("·w"), 1)), flat)
    if element_type.bag_nesting() == 0:
        return BagDestroy(
            Intersection(Powerset(operand),
                         Map(Lam("·t", Bagging(Var("·t"))), operand)))
    # Tuple with at least one nested-bag attribute: recursive formula.
    factors = []
    for position, attr_type in enumerate(element_type.attributes, start=1):
        projected = Map(Lam("·t", Attribute(Var("·t"), position)), operand)
        deduped = derived_dedup(projected, attr_type)
        factors.append(Map(Lam("·y", Tupling(Var("·y"))), deduped))
    product = factors[0]
    for factor in factors[1:]:
        product = Cartesian(product, factor)
    return Intersection(operand, product)


# ----------------------------------------------------------------------
# Section 3: subtraction from powerset (the BALG_{-minus} identity)
# ----------------------------------------------------------------------

def derived_subtraction(left: Expr, right: Expr) -> Expr:
    """``B1 - B2`` without the subtraction operator:

    ``delta( sigma_{ x (+) (B1 n B2) = B1 }( P(B1) ) )``

    Exactly one subbag ``x`` of ``B1`` satisfies the selection —
    ``B1 - (B1 n B2)``, which equals ``B1 - B2`` — so the powerset is
    filtered down to a singleton and delta unwraps it.  The nesting of
    the intermediate type is one higher than the input's, which Section
    4 shows is essential.
    """
    test = Lam("·s", AdditiveUnion(Var("·s"), Intersection(left, right)))
    return BagDestroy(Select(test, Lam("·s", left), Powerset(left)))


# ----------------------------------------------------------------------
# Section 3: additive union from maximal union (tagging identity)
# ----------------------------------------------------------------------

def derived_additive_union(left: Expr, right: Expr, arity: int,
                           tag_left: Any = "§L",
                           tag_right: Any = "§R") -> Expr:
    """``B1 (+) B2`` for k-ary bags, without additive union:

    ``pi_{1..k}( (B1 x [[[tagL]]]) u (B2 x [[[tagR]]]) )``

    Distinct tags make the operands disjoint, so maximal union acts as
    disjoint sum, and the tag-dropping projection (a MAP) re-adds the
    multiplicities.  ``tag_left``/``tag_right`` must be constants
    absent from the data.
    """
    if arity < 1:
        raise BagTypeError("additive-union identity needs arity >= 1")
    tagged_left = Cartesian(left, Const(Bag.of(Tup(tag_left))))
    tagged_right = Cartesian(right, Const(Bag.of(Tup(tag_right))))
    return project_expr(MaxUnion(tagged_left, tagged_right),
                        *range(1, arity + 1))


# ----------------------------------------------------------------------
# Integers as bags, and aggregates (Section 3)
# ----------------------------------------------------------------------

def int_as_bag(value: int, marker: Any = MARKER) -> Bag:
    """Represent the integer ``i`` as a bag of ``i`` copies of the
    1-tuple ``[marker]`` (the paper's encoding)."""
    if value < 0:
        raise BagTypeError("bags encode natural numbers only")
    return Bag.from_counts({Tup(marker): value})


def bag_as_int(bag: Bag) -> int:
    """Decode an integer-as-bag: its cardinality with duplicates."""
    return bag.cardinality


def count_expr(operand: Expr, marker: Any = MARKER) -> Expr:
    """``count(B) = pi_1([[[marker]]] x B)``: a bag holding ``|B|``
    copies of ``[marker]`` (duplicates counted).

    The paper states the identity for bags of tuples; to count bags
    whose elements are not tuples (e.g. a bag of integers-as-bags) we
    first wrap every element into a 1-tuple with ``MAP tau`` — a
    cardinality-preserving restructuring that keeps the expression in
    the algebra.
    """
    wrapped = Map(Lam("·w", Tupling(Var("·w"))), operand)
    return project_expr(Cartesian(Const(Bag.of(Tup(marker))), wrapped), 1)


def sum_expr(operand: Expr) -> Expr:
    """``sum(B) = delta(B)`` for a bag of integers-as-bags."""
    return BagDestroy(operand)


def average_expr(operand: Expr, marker: Any = MARKER) -> Expr:
    """Integer average of a bag of integers-as-bags (Section 3).

    Selects, among the subbags ``x`` of ``sum(B)``, the one whose
    product with ``count(B)`` has the cardinality of ``sum(B)`` — i.e.
    ``|x| * count = sum`` — then unwraps it with delta.  When the
    average is not an integer no subbag qualifies and the result is the
    empty bag (the encoding has no fractions).
    """
    total = sum_expr(operand)
    cardinality = count_expr(operand, marker)
    candidate_product = project_expr(
        Cartesian(Var("·c"), cardinality), 1)
    chooser = Select(Lam("·c", candidate_product),
                     Lam("·c", total),
                     Powerset(total))
    return BagDestroy(chooser)


# ----------------------------------------------------------------------
# Examples 4.1 / 4.2 and the Section 4 quantifiers
# ----------------------------------------------------------------------

def card_greater_expr(left: Expr, right: Expr) -> Expr:
    """Example 4.2: nonempty iff ``card(R) > card(S)`` for unary bags.

    ``pi_1(R x R) - pi_1(R x S)``: each tuple ``[r]`` occurs ``|R|^2``
    times on the left and ``|R|*|S|`` times on the right.
    """
    return Subtraction(project_expr(Cartesian(left, left), 1),
                       project_expr(Cartesian(left, right), 1))


def card_at_least_expr(operand: Expr, threshold: int,
                       marker: Any = MARKER) -> Expr:
    """Counting quantifier ``exists >= i`` (Section 4): nonempty iff
    ``card(B) >= threshold``."""
    if threshold < 1:
        raise BagTypeError("threshold must be >= 1")
    return Subtraction(count_expr(operand, marker),
                       Const(int_as_bag(threshold - 1, marker)))


def hartig_expr(left: Expr, right: Expr, marker: Any = MARKER) -> Expr:
    """Hartig quantifier (Section 4): nonempty iff the two bags have
    *equally many* elements.

    ``beta([marker]) - ((count L - count R) (+) (count R - count L))``
    — the inner expression is empty exactly on equality, in which case
    the singleton survives.
    """
    count_left = count_expr(left, marker)
    count_right = count_expr(right, marker)
    imbalance = AdditiveUnion(Subtraction(count_left, count_right),
                              Subtraction(count_right, count_left))
    return Subtraction(Const(Bag.of(Tup(marker))), imbalance)


def rescher_expr(left: Expr, right: Expr, marker: Any = MARKER) -> Expr:
    """Rescher quantifier (Section 4): nonempty iff ``card(L) <
    card(R)``."""
    return Subtraction(count_expr(right, marker),
                       count_expr(left, marker))


def in_degree_greater_expr(graph: Expr, node: Any) -> Expr:
    """Example 4.1: nonempty iff the in-degree of ``node`` exceeds its
    out-degree in the edge bag ``graph``:

    ``pi_2(sigma_{2=node}(G)) - pi_1(sigma_{1=node}(G))``
    """
    in_edges = project_expr(select_attr_eq_const(graph, 2, node), 2)
    out_edges = project_expr(select_attr_eq_const(graph, 1, node), 1)
    return Subtraction(in_edges, out_edges)


def parity_even_expr(relation: Expr, marker: Any = MARKER) -> Expr:
    """Section 4: parity of the cardinality of a *relation* (a bag of
    1-tuples without duplicates), definable given an order on the
    domain:

    ``sigma_{ MAP_[m](sigma_{y<=x} R) = MAP_[m](sigma_{x<y} R) }(R)``

    Nonempty iff some element x splits R evenly between {y <= x} and
    {y > x}, which happens exactly when |R| is even.  The inner MAPs
    count by collapsing every tuple onto the marker.
    """
    def counted(selection: Expr) -> Expr:
        return Map(Lam("·y", Tupling(Const(marker))), selection)

    below_or_equal = Select(Lam("·y", Var("·y")), Lam("·y", Var("·x")),
                            relation, op="le")
    strictly_above = Select(Lam("·y", Var("·x")), Lam("·y", Var("·y")),
                            relation, op="lt")
    return Select(Lam("·x", counted(below_or_equal)),
                  Lam("·x", counted(strictly_above)),
                  relation)


def membership_expr(candidate: Expr, bag: Expr) -> Expr:
    """Membership test as an algebra expression: nonempty iff the value
    of ``candidate`` occurs in ``bag``."""
    return Select(Lam("·m", Var("·m")), Lam("·m", candidate), bag)


# ----------------------------------------------------------------------
# Proposition 4.5: the bag-even query (native reference only)
# ----------------------------------------------------------------------

def bag_even_native(bag: Bag) -> Bag:
    """The ``bag-even`` query: ``B`` when the number of duplicates in
    ``B`` is even, the empty bag otherwise.

    Proposition 4.5 proves this query is **not expressible** in
    BALG^1; it exists here only as the ground truth the
    inexpressibility experiment (E03) tests candidate expressions
    against.
    """
    return bag if bag.cardinality % 2 == 0 else Bag()
