"""The type system of Section 2: atomic type U, tuple types, bag types.

Types are defined recursively:

* ``U`` is the atomic type (an infinite domain of constants);
* if ``T1 .. Tk`` are types then ``[T1, ..., Tk]`` is a tuple type;
* if ``T`` is a type then ``{{T}}`` is a bag type.

The *bag nesting* of a type is the maximal number of bag constructors on
a root-to-leaf path of the type tree; it is the measure that stratifies
the algebra into the fragments BALG^1, BALG^2, BALG^3, ... studied in
Sections 4-6.

This module provides the type objects, inference of the type of a value
(:func:`type_of`), unification (:func:`unify`), and the nesting measure
(:meth:`Type.bag_nesting`).  A distinguished :data:`UNKNOWN` type stands
for the element type of an empty bag, which is polymorphic.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple as PyTuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError

__all__ = [
    "Type", "AtomType", "TupleType", "BagType", "UnknownType",
    "U", "UNKNOWN", "type_of", "unify", "is_unnested_type",
    "flat_tuple_type", "flat_bag_type", "parse_type",
]


class Type:
    """Abstract base of all type objects.  Types are immutable value
    objects with structural equality."""

    __slots__ = ()

    def bag_nesting(self) -> int:
        """Maximal number of bag constructors on a root-to-leaf path."""
        raise NotImplementedError

    def accepts(self, value: Any) -> bool:
        """Membership test: does ``value`` inhabit this type?"""
        raise NotImplementedError


class AtomType(Type):
    """The atomic type ``U`` of Section 2."""

    __slots__ = ()

    def bag_nesting(self) -> int:
        return 0

    def accepts(self, value: Any) -> bool:
        return not isinstance(value, (Tup, Bag))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, AtomType)

    def __hash__(self) -> int:
        return hash("AtomType")

    def __repr__(self) -> str:
        return "U"


class UnknownType(Type):
    """The polymorphic type of the elements of an empty bag.

    ``UNKNOWN`` unifies with everything; its nesting is 0 (it counts
    as contributing no bag constructors).
    """

    __slots__ = ()

    def bag_nesting(self) -> int:
        return 0

    def accepts(self, value: Any) -> bool:  # the empty bag has no values
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, UnknownType)

    def __hash__(self) -> int:
        return hash("UnknownType")

    def __repr__(self) -> str:
        return "?"


class TupleType(Type):
    """Tuple type ``[T1, ..., Tk]``."""

    __slots__ = ("attributes",)

    def __init__(self, attributes: PyTuple[Type, ...] | list):
        attributes = tuple(attributes)
        for attribute in attributes:
            if not isinstance(attribute, Type):
                raise BagTypeError(
                    f"tuple attribute types must be Type, got {attribute!r}")
        object.__setattr__(self, "attributes", attributes)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("TupleType is immutable")

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, i: int) -> Type:
        """The i-th attribute type, 1-based (matching alpha_i)."""
        if not 1 <= i <= len(self.attributes):
            raise BagTypeError(
                f"attribute index {i} out of range for arity {self.arity}")
        return self.attributes[i - 1]

    def bag_nesting(self) -> int:
        if not self.attributes:
            return 0
        return max(attr.bag_nesting() for attr in self.attributes)

    def accepts(self, value: Any) -> bool:
        if not isinstance(value, Tup) or value.arity != self.arity:
            return False
        return all(attr.accepts(item)
                   for attr, item in zip(self.attributes, value.items()))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TupleType)
                and self.attributes == other.attributes)

    def __hash__(self) -> int:
        return hash(("TupleType", self.attributes))

    def __repr__(self) -> str:
        inner = ", ".join(repr(attr) for attr in self.attributes)
        return f"[{inner}]"


class BagType(Type):
    """Bag type ``{{T}}``."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise BagTypeError(
                f"bag element type must be a Type, got {element!r}")
        object.__setattr__(self, "element", element)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("BagType is immutable")

    def bag_nesting(self) -> int:
        return 1 + self.element.bag_nesting()

    def accepts(self, value: Any) -> bool:
        if not isinstance(value, Bag):
            return False
        return all(self.element.accepts(element)
                   for element in value.distinct())

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, BagType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("BagType", self.element))

    def __repr__(self) -> str:
        return f"{{{{{self.element!r}}}}}"


#: The atomic type instance.
U = AtomType()

#: The polymorphic unknown (empty-bag element) type instance.
UNKNOWN = UnknownType()


def flat_tuple_type(arity: int) -> TupleType:
    """The flat tuple type ``U^arity`` = [U, ..., U]."""
    return TupleType((U,) * arity)


def flat_bag_type(arity: int) -> BagType:
    """The unnested bag type ``{{U^arity}}`` of Section 4 (BALG^1)."""
    return BagType(flat_tuple_type(arity))


def type_of(value: Any) -> Type:
    """Infer the (most specific) type of a complex object.

    The element type of an empty bag is :data:`UNKNOWN`; for non-empty
    bags the element types of all members are unified.
    """
    if isinstance(value, Tup):
        return TupleType(tuple(type_of(item) for item in value.items()))
    if isinstance(value, Bag):
        element_type: Type = UNKNOWN
        for element in value.distinct():
            element_type = unify(element_type, type_of(element))
        return BagType(element_type)
    return U


def unify(left: Type, right: Type) -> Type:
    """Structural unification of two types.

    ``UNKNOWN`` unifies with anything; otherwise the constructors must
    match recursively.  Raises :class:`BagTypeError` on mismatch.
    """
    if isinstance(left, UnknownType):
        return right
    if isinstance(right, UnknownType):
        return left
    if isinstance(left, AtomType) and isinstance(right, AtomType):
        return left
    if isinstance(left, BagType) and isinstance(right, BagType):
        return BagType(unify(left.element, right.element))
    if isinstance(left, TupleType) and isinstance(right, TupleType):
        if left.arity != right.arity:
            raise BagTypeError(
                f"cannot unify tuple types of arity {left.arity} "
                f"and {right.arity}")
        return TupleType(tuple(unify(la, ra) for la, ra
                               in zip(left.attributes, right.attributes)))
    raise BagTypeError(f"cannot unify {left!r} with {right!r}")


def is_unnested_type(candidate: Type) -> bool:
    """True for the BALG^1 types of Section 4: ``U^k`` and ``{{U^k}}``
    (including bare ``U`` and ``{{U}}``)."""
    return candidate.bag_nesting() <= 1


def parse_type(text: str) -> Type:
    """Parse the textual type syntax used throughout the docs:

    ``U``          the atomic type
    ``[T, T, ...]`` a tuple type
    ``{{T}}``      a bag type

    Example: ``parse_type("{{[U, {{U}}]}}")``.
    """
    parser = _TypeParser(text)
    result = parser.parse()
    parser.expect_end()
    return result


class _TypeParser:
    """Tiny recursive-descent parser for the type syntax."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def parse(self) -> Type:
        self._skip_spaces()
        if self._peek("{{"):
            self._consume("{{")
            inner = self.parse()
            self._skip_spaces()
            self._consume("}}")
            return BagType(inner)
        if self._peek("["):
            self._consume("[")
            attributes = []
            self._skip_spaces()
            if not self._peek("]"):
                attributes.append(self.parse())
                self._skip_spaces()
                while self._peek(","):
                    self._consume(",")
                    attributes.append(self.parse())
                    self._skip_spaces()
            self._consume("]")
            return TupleType(tuple(attributes))
        if self._peek("U"):
            self._consume("U")
            return U
        if self._peek("?"):
            self._consume("?")
            return UNKNOWN
        raise BagTypeError(
            f"unparsable type at offset {self._pos}: {self._text!r}")

    def expect_end(self) -> None:
        self._skip_spaces()
        if self._pos != len(self._text):
            raise BagTypeError(
                f"trailing characters in type: {self._text[self._pos:]!r}")

    def _skip_spaces(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] == " ":
            self._pos += 1

    def _peek(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _consume(self, token: str) -> None:
        if not self._peek(token):
            raise BagTypeError(
                f"expected {token!r} at offset {self._pos} "
                f"in {self._text!r}")
        self._pos += len(token)
