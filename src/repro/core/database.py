"""Bag databases: schemas, instances, standard encoding, genericity.

Implements the Section 2 framework:

* a **bag schema** ``B : T`` names a bag and gives it a bag type;
* a **database schema** is a finite set of bag schemas with distinct
  names; an **instance** maps each name to a bag of the right type;
* the **standard encoding** of a bag writes every element out as many
  times as it occurs (duplicates are explicit, *not* run-length
  compressed — the paper insists on this, because real systems store
  duplicates to avoid the cost of duplicate elimination).  The *size*
  of a database is the size of its standard encoding
  (:func:`encoding_size`);
* queries must be **generic**: insensitive to isomorphisms, i.e. to
  bijective renamings of the atomic constants
  (:func:`apply_renaming`, :func:`are_isomorphic`).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional

from repro.core.bag import Bag, Tup, is_atom
from repro.core.errors import BagTypeError
from repro.core.types import BagType, Type, type_of, unify

__all__ = [
    "encoding_size", "active_domain", "apply_renaming", "are_isomorphic",
    "Schema", "Instance",
]


def encoding_size(value: Any) -> int:
    """Size of the standard encoding of a complex object.

    Atoms cost 1; tuples and bags cost 1 (for the delimiters) plus the
    sizes of their members, *with duplicates written out explicitly*.
    This is the size measure all complexity statements of the paper are
    relative to.
    """
    if isinstance(value, Tup):
        return 1 + sum(encoding_size(item) for item in value.items())
    if isinstance(value, Bag):
        # non-integer semiring annotations weigh one occurrence: the
        # standard encoding writes the element once per annotation
        return 1 + sum((count if isinstance(count, int) else 1)
                       * encoding_size(element)
                       for element, count in value.items())
    return 1


def active_domain(value: Any) -> frozenset:
    """The set of atomic constants occurring in a complex object."""
    atoms = set()
    _collect_atoms(value, atoms)
    return frozenset(atoms)


def _collect_atoms(value: Any, out: set) -> None:
    if isinstance(value, Tup):
        for item in value.items():
            _collect_atoms(item, out)
    elif isinstance(value, Bag):
        for element in value.distinct():
            _collect_atoms(element, out)
    else:
        out.add(value)


def apply_renaming(value: Any, mapping: Mapping[Any, Any]) -> Any:
    """Apply an atom renaming componentwise (the natural extension of a
    bijection ``h : D -> D'`` to complex objects).

    Atoms absent from ``mapping`` are left unchanged, so partial
    renamings work too.
    """
    if isinstance(value, Tup):
        return Tup(*(apply_renaming(item, mapping)
                     for item in value.items()))
    if isinstance(value, Bag):
        counts: Dict[Any, int] = {}
        for element, count in value.items():
            image = apply_renaming(element, mapping)
            counts[image] = counts.get(image, 0) + count
        return Bag.from_counts(counts)
    return mapping.get(value, value)


def are_isomorphic(left: Mapping[str, Bag], right: Mapping[str, Bag],
                   max_domain: int = 8) -> bool:
    """Decide whether two database instances are isomorphic.

    Isomorphism for bag databases (Section 2): a bijection ``h`` between
    the active domains such that ``t`` k-belongs to a bag iff ``h(t)``
    k-belongs to its counterpart.  Decided by backtracking over atom
    bijections; intended for the small instances used in genericity
    tests (``max_domain`` guards against accidental blow-ups).
    """
    if set(left) != set(right):
        return False
    left_domain = sorted(
        set().union(*(active_domain(bag) for bag in left.values()))
        if left else set(),
        key=repr)
    right_domain = sorted(
        set().union(*(active_domain(bag) for bag in right.values()))
        if right else set(),
        key=repr)
    if len(left_domain) != len(right_domain):
        return False
    if len(left_domain) > max_domain:
        raise BagTypeError(
            f"isomorphism search over {len(left_domain)} atoms exceeds "
            f"max_domain={max_domain}")
    for permutation in itertools.permutations(right_domain):
        mapping = dict(zip(left_domain, permutation))
        if all(apply_renaming(left[name], mapping) == right[name]
               for name in left):
            return True
    return False


class Schema:
    """A database schema: bag names with their bag types."""

    def __init__(self, bags: Mapping[str, Type]):
        clean: Dict[str, BagType] = {}
        for name, bag_type in bags.items():
            if not isinstance(name, str) or not name:
                raise BagTypeError(
                    f"bag names must be non-empty strings, got {name!r}")
            if not isinstance(bag_type, BagType):
                raise BagTypeError(
                    f"schema entry {name!r} must have a bag type, got "
                    f"{bag_type!r}")
            clean[name] = bag_type
        self._bags = clean

    def names(self) -> Iterator[str]:
        return iter(self._bags)

    def type_of(self, name: str) -> BagType:
        if name not in self._bags:
            raise BagTypeError(f"unknown bag name {name!r}")
        return self._bags[name]

    def __contains__(self, name: str) -> bool:
        return name in self._bags

    def __iter__(self) -> Iterator[str]:
        return iter(self._bags)

    def __len__(self) -> int:
        return len(self._bags)

    def items(self):
        return self._bags.items()

    def bag_nesting(self) -> int:
        """Maximal bag nesting over all bag types in the schema."""
        if not self._bags:
            return 0
        return max(bag_type.bag_nesting()
                   for bag_type in self._bags.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {bag_type!r}"
                          for name, bag_type in self._bags.items())
        return f"Schema({{{inner}}})"


class Instance:
    """An instance of a database schema: name -> bag, type-checked."""

    def __init__(self, schema: Schema, bags: Mapping[str, Bag]):
        if set(bags) != set(schema.names()):
            missing = set(schema.names()) - set(bags)
            extra = set(bags) - set(schema.names())
            raise BagTypeError(
                f"instance does not match schema "
                f"(missing={sorted(missing)}, extra={sorted(extra)})")
        for name, bag in bags.items():
            declared = schema.type_of(name)
            try:
                unify(declared, type_of(bag))
            except BagTypeError as exc:
                raise BagTypeError(
                    f"bag {name!r} does not inhabit its declared type "
                    f"{declared!r}") from exc
        self.schema = schema
        self._bags = dict(bags)

    def __getitem__(self, name: str) -> Bag:
        return self._bags[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._bags)

    def __len__(self) -> int:
        return len(self._bags)

    def bags(self) -> Mapping[str, Bag]:
        """Read-only copy of the name -> bag mapping."""
        return dict(self._bags)

    def size(self) -> int:
        """Standard-encoding size of the whole instance."""
        return sum(encoding_size(bag) for bag in self._bags.values())

    def domain(self) -> frozenset:
        """Union of the active domains of all bags."""
        atoms: set = set()
        for bag in self._bags.values():
            atoms |= active_domain(bag)
        return frozenset(atoms)

    def rename(self, mapping: Mapping[Any, Any]) -> "Instance":
        """The image instance under an atom renaming."""
        return Instance(self.schema,
                        {name: apply_renaming(bag, mapping)
                         for name, bag in self._bags.items()})

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={bag!r}"
                          for name, bag in self._bags.items())
        return f"Instance({inner})"
