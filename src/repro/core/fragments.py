"""Fragment checking: BALG^k, power nesting, operator restrictions.

The paper stratifies the algebra three ways:

* **bag nesting** — ``BALG^k`` restricts every (input, output, and
  intermediate) type to bag nesting at most ``k`` (Sections 4-6);
* **power nesting** — ``BALG^k_i`` additionally bounds the number of
  powerset operations on any root-to-leaf path of the expression tree
  by ``i`` (Section 6, Theorem 6.2);
* **operator restrictions** — ``BALG_{-op}`` removes an operator, used
  to state independence results such as Prop 3.1 (``eps`` is redundant
  in BALG) and Prop 4.1 (``eps`` and ``-`` are *not* redundant in
  BALG^1).

All three are decidable syntactic/static checks implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Set, Type as PyType

from repro.core.errors import FragmentViolationError
from repro.core.expr import (
    Expr, Powerbag, Powerset,
)
from repro.core.typecheck import TypeChecker
from repro.core.types import Type

__all__ = [
    "power_nesting", "operators_used", "uses_only",
    "max_bag_nesting", "in_balg", "assert_in_balg", "FragmentReport",
    "fragment_report",
]


def power_nesting(expr: Expr,
                  power_nodes: tuple = (Powerset, Powerbag)) -> int:
    """Maximal number of powerset (and powerbag) operations on a
    root-to-leaf path of the expression tree (Section 6's measure)."""
    here = 1 if isinstance(expr, power_nodes) else 0
    children = expr.children()
    if not children:
        return here
    return here + max(power_nesting(child, power_nodes)
                      for child in children)


def operators_used(expr: Expr) -> Set[PyType[Expr]]:
    """The set of node classes occurring in the expression."""
    return {type(node) for node in expr.walk()}


def uses_only(expr: Expr, allowed: Iterable[PyType[Expr]]) -> bool:
    """True when every node of ``expr`` is an instance of one of the
    ``allowed`` classes (use for BALG_{-op} style restrictions)."""
    allowed = tuple(allowed)
    return all(isinstance(node, allowed) for node in expr.walk())


def max_bag_nesting(expr: Expr,
                    schema: Optional[Mapping[str, Type]] = None,
                    **named_types: Type) -> int:
    """Maximal bag nesting over all subexpression types of ``expr``
    (inputs included, via the schema)."""
    checker = TypeChecker()
    checker.check(expr, schema, **named_types)
    input_nesting = 0
    bindings = dict(schema.items()) if hasattr(schema, "items") else {}
    bindings.update(named_types)
    for declared in bindings.values():
        input_nesting = max(input_nesting, declared.bag_nesting())
    return max(checker.max_bag_nesting(), input_nesting)


def in_balg(expr: Expr, k: int,
            schema: Optional[Mapping[str, Type]] = None,
            **named_types: Type) -> bool:
    """Is ``expr`` a BALG^k expression under the given schema?

    Note that ``BALG^1`` automatically excludes powerset and
    bag-destroy: the former *produces* and the latter *consumes* a type
    of nesting >= 2, so the nesting bound rejects them — exactly as
    stated in Section 4.
    """
    return max_bag_nesting(expr, schema, **named_types) <= k


def assert_in_balg(expr: Expr, k: int,
                   schema: Optional[Mapping[str, Type]] = None,
                   forbid: Iterable[PyType[Expr]] = (),
                   max_power_nesting: Optional[int] = None,
                   **named_types: Type) -> None:
    """Raise :class:`FragmentViolationError` unless ``expr`` lies in
    BALG^k (optionally BALG^k_i via ``max_power_nesting``, optionally
    with forbidden operators)."""
    nesting = max_bag_nesting(expr, schema, **named_types)
    if nesting > k:
        raise FragmentViolationError(
            f"expression uses bag nesting {nesting}, fragment allows "
            f"at most {k}")
    forbidden = tuple(forbid)
    if forbidden:
        for node in expr.walk():
            if isinstance(node, forbidden):
                raise FragmentViolationError(
                    f"operator {type(node).__name__} is excluded from "
                    "this fragment")
    if max_power_nesting is not None:
        depth = power_nesting(expr)
        if depth > max_power_nesting:
            raise FragmentViolationError(
                f"power nesting {depth} exceeds the allowed "
                f"{max_power_nesting}")


@dataclass
class FragmentReport:
    """Summary of where an expression sits in the paper's hierarchies."""

    result_type: Type
    max_nesting: int
    power_nesting: int
    operators: Set[str] = field(default_factory=set)

    @property
    def in_balg1(self) -> bool:
        return self.max_nesting <= 1

    @property
    def in_balg2(self) -> bool:
        return self.max_nesting <= 2

    @property
    def in_balg3(self) -> bool:
        return self.max_nesting <= 3

    def fragment_name(self) -> str:
        """Human-readable fragment label, e.g. ``BALG^2_1``."""
        return f"BALG^{max(self.max_nesting, 1)}_{self.power_nesting}"


def fragment_report(expr: Expr,
                    schema: Optional[Mapping[str, Type]] = None,
                    **named_types: Type) -> FragmentReport:
    """Classify an expression: result type, nesting, power nesting, and
    operator inventory."""
    checker = TypeChecker()
    result_type = checker.check(expr, schema, **named_types)
    input_nesting = 0
    bindings = dict(schema.items()) if hasattr(schema, "items") else {}
    bindings.update(named_types)
    for declared in bindings.values():
        input_nesting = max(input_nesting, declared.bag_nesting())
    return FragmentReport(
        result_type=result_type,
        max_nesting=max(checker.max_bag_nesting(), input_nesting),
        power_nesting=power_nesting(expr),
        operators={cls.__name__ for cls in operators_used(expr)},
    )
