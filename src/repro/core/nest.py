"""The nest / unnest operators (the conclusion's powerset-free
paradigm).

The paper's conclusion contrasts the powerset with the weaker
*set-nesting* operator of [PG88, PG92]: in the nested relational
algebra with ``nest`` instead of ``P``, intermediate nesting buys no
expressive power, and [Won93] extends that conservativity to bags —
the fragment ``BALG u {nest} - {P}`` inherits the
``RALG^2 < BALG^2`` separation.  To make that discussion executable,
this module adds both operators to the algebra:

* ``nest_{J}(B)`` groups a bag of k-tuples by the attributes *outside*
  ``J``: one occurrence of ``[rest..., group]`` per distinct rest
  value, where ``group`` is the bag of J-projections of the matching
  tuples (multiplicities preserved inside the group — this is the bag
  version of [PG88] nesting);
* ``unnest_{i}(B)`` flattens a bag-valued attribute back out,
  multiplying multiplicities.

``unnest`` after ``nest`` on all remaining attributes restores the
original bag (up to attribute order) — a property test in the suite.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.expr import Expr, _as_expr
from repro.core.semiring import Semiring
from repro.core.types import BagType, TupleType, Type, UNKNOWN, unify

__all__ = ["nest_bag", "unnest_bag", "Nest", "Unnest"]


def nest_bag(bag: Bag, group_indices: Tuple[int, ...],
             sr: Optional[Semiring] = None) -> Bag:
    """Operational ``nest``: group by the complement of
    ``group_indices`` (1-based), collecting the projections on
    ``group_indices`` into an inner bag."""
    if not isinstance(bag, Bag):
        raise BagTypeError("nest expects a bag")
    if not group_indices:
        raise BagTypeError("nest needs at least one grouped attribute")
    groups: Dict[Tup, Dict[Any, int]] = {}
    rest_indices = None
    for element, count in bag.items():
        if not isinstance(element, Tup):
            raise BagTypeError("nest expects a bag of tuples")
        if max(group_indices) > element.arity or min(group_indices) < 1:
            raise BagTypeError(
                f"nest indices {group_indices} out of range for arity "
                f"{element.arity}")
        if rest_indices is None:
            rest_indices = tuple(i for i in range(1, element.arity + 1)
                                 if i not in group_indices)
        key = Tup(*(element.attribute(i) for i in rest_indices))
        grouped = Tup(*(element.attribute(i) for i in group_indices))
        bucket = groups.setdefault(key, {})
        if sr is None:
            bucket[grouped] = bucket.get(grouped, 0) + count
        else:
            count = sr.coerce(count)
            existing = bucket.get(grouped)
            bucket[grouped] = (count if existing is None
                               else sr.add(existing, count))
    one = 1 if sr is None else sr.one
    result: Dict[Tup, int] = {}
    for key, bucket in groups.items():
        result[Tup(*key.items(), Bag.from_counts(bucket))] = one
    return Bag.from_counts(result)


def unnest_bag(bag: Bag, index: int,
               sr: Optional[Semiring] = None) -> Bag:
    """Operational ``unnest``: expand the bag-valued attribute at
    ``index`` (1-based), multiplying multiplicities."""
    if not isinstance(bag, Bag):
        raise BagTypeError("unnest expects a bag")
    result: Dict[Tup, int] = {}
    for element, count in bag.items():
        if not isinstance(element, Tup):
            raise BagTypeError("unnest expects a bag of tuples")
        if not 1 <= index <= element.arity:
            raise BagTypeError(
                f"unnest index {index} out of range for arity "
                f"{element.arity}")
        inner = element.attribute(index)
        if not isinstance(inner, Bag):
            raise BagTypeError(
                f"attribute {index} is not bag-valued")
        prefix = element.items()[:index - 1]
        suffix = element.items()[index:]
        if sr is not None:
            count = sr.coerce(count)
        for member, inner_count in inner.items():
            # inner *tuples* are spliced componentwise (classical
            # unnest, the inverse of nest's tuple-wrapped groups);
            # other inner values occupy a single attribute
            spliced = (member.items() if isinstance(member, Tup)
                       else (member,))
            flat = Tup(*prefix, *spliced, *suffix)
            if sr is None:
                result[flat] = result.get(flat, 0) + count * inner_count
            else:
                contribution = sr.mul(count, sr.coerce(inner_count))
                existing = result.get(flat)
                result[flat] = (contribution if existing is None
                                else sr.add(existing, contribution))
    return Bag.from_counts(result)


class Nest(Expr):
    """``nest_{i1..im}(B)``: group a bag of tuples, collecting the
    listed attributes into an inner bag keyed by the rest."""

    __slots__ = ("operand", "indices")

    def __init__(self, operand: Expr, *indices: int):
        if not indices:
            raise BagTypeError("Nest needs at least one attribute index")
        for index in indices:
            if not isinstance(index, int) or index < 1:
                raise BagTypeError(
                    f"Nest indices must be positive ints, got {index!r}")
        if len(set(indices)) != len(indices):
            raise BagTypeError("Nest indices must be distinct")
        self.operand = _as_expr(operand)
        self.indices = tuple(indices)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return nest_bag(evaluator.eval(self.operand, env), self.indices,
                        evaluator.semiring)

    def _infer(self, checker, tenv) -> Type:
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType) or not isinstance(
                operand.element, TupleType):
            raise BagTypeError(
                f"Nest requires a bag of tuples, got {operand!r}")
        element = operand.element
        if max(self.indices) > element.arity:
            raise BagTypeError(
                f"Nest indices {self.indices} out of range for arity "
                f"{element.arity}")
        rest = tuple(element.attribute(i)
                     for i in range(1, element.arity + 1)
                     if i not in self.indices)
        grouped = TupleType(tuple(element.attribute(i)
                                  for i in self.indices))
        return BagType(TupleType(rest + (BagType(grouped),)))

    def _key(self):
        return (self.operand, self.indices)

    def __repr__(self) -> str:
        listed = ",".join(str(i) for i in self.indices)
        return f"ν[{listed}]({self.operand!r})"


class Unnest(Expr):
    """``unnest_i(B)``: flatten the bag-valued attribute ``i`` back
    into the tuples, multiplying multiplicities."""

    __slots__ = ("operand", "index")

    def __init__(self, operand: Expr, index: int):
        if not isinstance(index, int) or index < 1:
            raise BagTypeError(
                f"Unnest index must be a positive int, got {index!r}")
        self.operand = _as_expr(operand)
        self.index = index

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, evaluator, env):
        return unnest_bag(evaluator.eval(self.operand, env), self.index,
                          evaluator.semiring)

    def _infer(self, checker, tenv) -> Type:
        operand = checker.infer(self.operand, tenv)
        if not isinstance(operand, BagType) or not isinstance(
                operand.element, TupleType):
            raise BagTypeError(
                f"Unnest requires a bag of tuples, got {operand!r}")
        element = operand.element
        if self.index > element.arity:
            raise BagTypeError(
                f"Unnest index {self.index} out of range for arity "
                f"{element.arity}")
        inner = element.attribute(self.index)
        if not isinstance(inner, BagType):
            raise BagTypeError(
                f"attribute {self.index} is not bag-valued: {inner!r}")
        if isinstance(inner.element, TupleType):
            # inner tuples are spliced componentwise
            expanded: Tuple[Type, ...] = inner.element.attributes
        elif inner.element == UNKNOWN:
            expanded = (UNKNOWN,)
        else:
            expanded = (inner.element,)
        attributes = (element.attributes[:self.index - 1] + expanded
                      + element.attributes[self.index:])
        return BagType(TupleType(attributes))

    def _key(self):
        return (self.operand, self.index)

    def __repr__(self) -> str:
        return f"μ[{self.index}]({self.operand!r})"
