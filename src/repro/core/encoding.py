"""The standard encoding of Section 2, as a concrete codec.

The paper defines data complexity "relative to a standard encoding of
the input database" in which *duplicates are written out explicitly* —
"sometimes precisely to avoid the cost of duplicate elimination" — and
measures everything in the size of that encoding.  This module makes
the encoding concrete:

* :func:`standard_encoding` serialises a complex object to a tape word
  (a flat string over a small alphabet), repeating each bag element as
  many times as it occurs;
* :func:`decode_standard` parses the word back (the encoding is
  prefix-unambiguous);
* :func:`encoded_size` is the word's length and agrees with the
  abstract :func:`~repro.core.database.encoding_size` up to constant
  per-token factors (tested);
* :func:`recognition_instance` is the Section 2 *recognition problem*:
  given a query, an instance, a tuple ``t``, and a count ``k``, decide
  whether ``t`` k-belongs to the output — the decision problem whose
  complexity the theorems bound.  The input word it builds is the
  paper's ``enc(B^t_k) * enc(I)``.

Atoms must be strings (without the reserved characters) or integers;
both survive a round trip with their type.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import BagTypeError, ParseError
from repro.core.expr import Expr

__all__ = [
    "standard_encoding", "decode_standard", "encoded_size",
    "encode_instance", "recognition_word", "recognition_instance",
]

#: Structural tokens of the encoding alphabet.
_RESERVED = set("[]{}(),*#")


def standard_encoding(value: Any) -> str:
    """Serialise a complex object; bag elements repeat per occurrence,
    in the canonical order (so equal bags encode equally)."""
    if isinstance(value, Tup):
        inner = ",".join(standard_encoding(item)
                         for item in value.items())
        return f"[{inner}]"
    if isinstance(value, Bag):
        parts = []
        for element in sorted(value.distinct(), key=canonical_key):
            parts.extend([standard_encoding(element)]
                         * value.multiplicity(element))
        return "{" + ",".join(parts) + "}"
    if isinstance(value, bool):
        raise BagTypeError("boolean atoms are not encodable")
    if isinstance(value, int):
        return f"(i{value})"
    if isinstance(value, str):
        if any(char in _RESERVED for char in value):
            raise BagTypeError(
                f"atom {value!r} contains reserved characters "
                f"{sorted(_RESERVED)}")
        return f"(s{value})"
    raise BagTypeError(
        f"atom {value!r} is not encodable (use str or int atoms)")


def encoded_size(value: Any) -> int:
    """Length of the standard encoding — the paper's size measure."""
    return len(standard_encoding(value))


def decode_standard(text: str) -> Any:
    """Parse a standard encoding back into a complex object."""
    decoder = _Decoder(text)
    value = decoder.parse()
    decoder.expect_end()
    return value


class _Decoder:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def parse(self) -> Any:
        if self._pos >= len(self._text):
            raise ParseError("unexpected end of encoding", self._pos,
                             self._text)
        head = self._text[self._pos]
        if head == "[":
            return self._parse_sequence("[", "]", Tup)
        if head == "{":
            elements = self._parse_raw_sequence("{", "}")
            return Bag(elements)
        if head == "(":
            return self._parse_atom()
        raise ParseError(f"unexpected character {head!r}", self._pos,
                         self._text)

    def _parse_sequence(self, open_char, close_char, build):
        elements = self._parse_raw_sequence(open_char, close_char)
        return build(*elements)

    def _parse_raw_sequence(self, open_char, close_char):
        self._consume(open_char)
        elements = []
        if not self._peek(close_char):
            elements.append(self.parse())
            while self._peek(","):
                self._consume(",")
                elements.append(self.parse())
        self._consume(close_char)
        return elements

    def _parse_atom(self):
        self._consume("(")
        if self._pos >= len(self._text):
            raise ParseError("truncated atom", self._pos, self._text)
        tag = self._text[self._pos]
        self._pos += 1
        end = self._text.find(")", self._pos)
        if end < 0:
            raise ParseError("unterminated atom", self._pos, self._text)
        body = self._text[self._pos:end]
        self._pos = end + 1
        if tag == "i":
            try:
                return int(body)
            except ValueError as exc:
                raise ParseError(f"bad integer atom {body!r}",
                                 self._pos, self._text) from exc
        if tag == "s":
            return body
        raise ParseError(f"unknown atom tag {tag!r}", self._pos,
                         self._text)

    def _peek(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _consume(self, token: str) -> None:
        if not self._peek(token):
            raise ParseError(f"expected {token!r}", self._pos,
                             self._text)
        self._pos += len(token)

    def expect_end(self) -> None:
        if self._pos != len(self._text):
            raise ParseError("trailing characters after the encoding",
                             self._pos, self._text)


# ----------------------------------------------------------------------
# Databases and the recognition problem
# ----------------------------------------------------------------------

def encode_instance(database: Mapping[str, Bag]) -> str:
    """``enc(I)``: the named bags in name order, ``name#enc`` pieces
    joined with ``*``."""
    pieces = []
    for name in sorted(database):
        pieces.append(f"{name}#{standard_encoding(database[name])}")
    return "*".join(pieces)


def recognition_word(database: Mapping[str, Bag], candidate: Tup,
                     count: int) -> str:
    """The Section 2 input word ``enc(B^t_k) * enc(I)``."""
    marker_bag = Bag.from_counts({candidate: count}) if count else Bag()
    return f"{standard_encoding(marker_bag)}**{encode_instance(database)}"


def recognition_instance(query: Expr, database: Mapping[str, Bag],
                         candidate: Tup, count: int) -> bool:
    """The recognition problem: does ``candidate`` k-belong to
    ``query(database)``?

    Data complexity (Theorems 4.4, 5.1, 6.2) is the complexity of this
    decision relative to the length of :func:`recognition_word` — note
    the paper's remark that the size of ``B^t_k`` is *not* negligible:
    the count is encoded in unary, as ``k`` explicit copies.
    """
    from repro.core.eval import evaluate
    result = evaluate(query, database)
    if not isinstance(result, Bag):
        raise BagTypeError("recognition applies to bag-valued queries")
    return result.n_belongs(candidate, count)
