"""The fixpoint pass manager: bounded, governed rule application.

One :class:`FixpointRewriter` drives one stage of the pipeline (the
``normalize`` and ``rewrite`` stages are both rule-fixpoint stages —
they differ only in which rules are active).  The discipline:

* rules run bottom-up over the AST, first match per node wins;
* a pass that changed anything schedules another pass, up to
  ``max_passes`` — the fixpoint is **bounded**, so a non-terminating
  rule set (two rules undoing each other, a rule that grows its own
  redex) is cut off cleanly: the rewriter returns the last tree with
  ``converged=False`` instead of spinning;
* every full pass ticks the compilation governor, so an adversarial
  expression or rule set also falls under the step budget, deadline,
  and cancellation discipline that execution already obeys
  (``tests/test_planner.py`` pins both cut-off modes with a
  deliberately oscillating rule pair);
* per-rule firing counts accumulate into the ``firings`` mapping the
  :class:`~repro.planner.report.PlanReport` exposes to ``:explain``.

Extension nodes the rebuild does not know (IFP, machine encodings)
pass through untouched, exactly as the legacy optimizer treated them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)
from repro.core.nest import Nest, Unnest
from repro.planner.rewrites import Rule

__all__ = ["FixpointRewriter", "DEFAULT_MAX_PASSES"]

#: Safety cap on full bottom-up passes per stage.
DEFAULT_MAX_PASSES = 50


class FixpointRewriter:
    """Applies a rule set bottom-up until no rule fires (or the bound
    or the governor cuts the iteration off).

    Parameters
    ----------
    rules:
        The active :class:`~repro.planner.rewrites.Rule` objects, in
        priority order (first match per node wins).
    max_passes:
        Bound on full bottom-up passes; reaching it without a fixpoint
        sets :attr:`converged` to ``False`` — never an exception, the
        partially-rewritten tree is still semantically equal.
    governor:
        Optional :class:`~repro.guard.ResourceGovernor`; ticked once
        per full pass so compilation shares the run's budgets.
    firings:
        Optional mapping to accumulate per-rule firing counts into
        (the pipeline passes one per stage record).
    """

    def __init__(self, rules: Sequence[Rule],
                 max_passes: int = DEFAULT_MAX_PASSES,
                 governor=None,
                 firings: Optional[Dict[str, int]] = None):
        self.rules = tuple(rules)
        self.max_passes = max_passes
        self.governor = governor
        self.firings: Dict[str, int] = (firings if firings is not None
                                        else {})
        self.converged = True
        self.passes_run = 0

    @property
    def rewrites_applied(self) -> int:
        return sum(self.firings.values())

    def rewrite(self, expr: Expr) -> Expr:
        """Rewrite to a (bounded) fixpoint of the rule set."""
        if not self.rules:
            return expr
        current = expr
        for iteration in range(self.max_passes):
            if self.governor is not None:
                self.governor.tick()
            self.passes_run = iteration + 1
            rewritten = self._pass(current)
            if rewritten == current:
                self.converged = True
                return current
            current = rewritten
        self.converged = False
        return current

    # -- one bottom-up pass ----------------------------------------------

    def _pass(self, expr: Expr) -> Expr:
        """One bottom-up pass: children first, then this node."""
        rebuilt = self._rebuild(expr)
        for rule in self.rules:
            replacement = rule.fn(rebuilt)
            if replacement is not None and replacement != rebuilt:
                self.firings[rule.name] = (
                    self.firings.get(rule.name, 0) + 1)
                return replacement
        return rebuilt

    def _rebuild(self, expr: Expr) -> Expr:
        if isinstance(expr, (Var, Const)):
            return expr
        if isinstance(expr, (AdditiveUnion, Subtraction, MaxUnion,
                             Intersection)):
            return type(expr)(self._pass(expr.left),
                              self._pass(expr.right))
        if isinstance(expr, Cartesian):
            return Cartesian(self._pass(expr.left),
                             self._pass(expr.right))
        if isinstance(expr, Tupling):
            return Tupling(*(self._pass(part) for part in expr.parts))
        if isinstance(expr, Bagging):
            return Bagging(self._pass(expr.item))
        if isinstance(expr, Attribute):
            return Attribute(self._pass(expr.operand), expr.index)
        if isinstance(expr, (Powerset, Powerbag, BagDestroy, Dedup)):
            return type(expr)(self._pass(expr.operand))
        if isinstance(expr, Map):
            return Map(Lam(expr.lam.param, self._pass(expr.lam.body)),
                       self._pass(expr.operand))
        if isinstance(expr, Select):
            return Select(
                Lam(expr.left.param, self._pass(expr.left.body)),
                Lam(expr.right.param, self._pass(expr.right.body)),
                self._pass(expr.operand), op=expr.op)
        if isinstance(expr, Nest):
            return Nest(self._pass(expr.operand), *expr.indices)
        if isinstance(expr, Unnest):
            return Unnest(self._pass(expr.operand), expr.index)
        return expr  # extension nodes (e.g. Ifp) pass through untouched


def run_fixpoint(rules: Sequence[Rule], expr: Expr, *,
                 max_passes: int = DEFAULT_MAX_PASSES,
                 governor=None,
                 firings: Optional[Dict[str, int]] = None
                 ) -> Tuple[Expr, bool]:
    """One-shot helper: rewritten tree plus the convergence flag."""
    rewriter = FixpointRewriter(rules, max_passes=max_passes,
                                governor=governor, firings=firings)
    result = rewriter.rewrite(expr)
    return result, rewriter.converged
