"""Planner rewrite passes: the algebraic rules of Section 3, tagged.

The paper notes that the operators satisfy the classical algebraic
properties (associativity, commutativity of the unions and the
intersection) "which can be used to define rewriting rules, to optimize
queries over bags, in the same spirit as optimization of queries over
sets, by pushing down selections for instance".  This module carries
that rule set — migrated here from ``repro.optimizer.rules``, which is
now a compatibility shim — and adds the planner's discipline: every
rule is registered as a :class:`Rule` carrying

* a stable **name** (what ``:passes`` toggles and ``:explain`` counts),
* the **stage** it belongs to (``normalize`` rules are unconditional
  structural clean-ups that run at ``--opt-level >= 1``; ``rewrite``
  rules are the cost-directed algebraic equivalences of
  ``--opt-level 2``), and
* its **side condition**: the explicit statement of *why* the rule
  preserves bag semantics — multiplicities, not just the supporting
  set.  The paper's warning ([CV93]) is that conjunctive-query
  minimization does not survive the move to bags; these annotations
  are the per-rule record of what does, in the semiring-annotation
  spirit of *Codd's Theorem for Databases over Semirings*.

Every rule is a function ``Expr -> Optional[Expr]`` returning the
rewritten node or ``None``.  The pass manager
(:mod:`repro.planner.manager`) applies them bottom-up to a governed,
bounded fixpoint, and the differential testkit checks every rule
preserves semantics on random inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.core import ops
from repro.core.bag import Bag, EMPTY_BAG
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Powerset, Select, Subtraction,
    Tupling, Var,
)
from repro.core.nest import Nest, Unnest

__all__ = [
    "Rule", "RewriteRule", "substitute",
    "NORMALIZE_RULES", "REWRITE_RULES", "ALL_RULES", "rule_named",
    "product_pushdown_rule",
    "fold_constants", "drop_neutral_elements", "idempotent_extremes",
    "self_subtraction", "cancel_attribute_of_tupling", "collapse_dedup",
    "fuse_maps", "push_selection_through_map",
    "push_selection_into_union", "push_selection_into_product",
    "make_push_selection_into_product",
]

RewriteRule = Callable[[Expr], Optional[Expr]]


@dataclass(frozen=True)
class Rule:
    """A named, stage-tagged rewrite with its soundness annotation."""

    name: str
    fn: RewriteRule
    stage: str  # "normalize" | "rewrite"
    side_condition: str
    requires_schema: bool = False
    #: The rewrite performs multiplicity arithmetic over N at compile
    #: time, so it is only sound when the plan's semiring is N: e.g.
    #: folding ``({{x}} (+) {{x}}) - {{x}}`` to ``{{x}}`` is wrong
    #: under Bool, and folding at all re-labels provenance variables.
    nat_only: bool = False

    def __call__(self, expr: Expr) -> Optional[Expr]:
        return self.fn(expr)


def substitute(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution of ``replacement`` for the free
    variable ``name``."""
    if isinstance(expr, Var):
        return replacement if expr.name == name else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, (AdditiveUnion, Subtraction, MaxUnion,
                         Intersection)):
        return type(expr)(substitute(expr.left, name, replacement),
                          substitute(expr.right, name, replacement))
    if isinstance(expr, Cartesian):
        return Cartesian(substitute(expr.left, name, replacement),
                         substitute(expr.right, name, replacement))
    if isinstance(expr, Tupling):
        return Tupling(*(substitute(part, name, replacement)
                         for part in expr.parts))
    if isinstance(expr, Attribute):
        return Attribute(substitute(expr.operand, name, replacement),
                         expr.index)
    if isinstance(expr, Map):
        body = (expr.lam.body if expr.lam.param == name
                else substitute(expr.lam.body, name, replacement))
        return Map(Lam(expr.lam.param, body),
                   substitute(expr.operand, name, replacement))
    if isinstance(expr, Select):
        left_body = (expr.left.body if expr.left.param == name
                     else substitute(expr.left.body, name, replacement))
        right_body = (expr.right.body if expr.right.param == name
                      else substitute(expr.right.body, name,
                                      replacement))
        return Select(Lam(expr.left.param, left_body),
                      Lam(expr.right.param, right_body),
                      substitute(expr.operand, name, replacement),
                      op=expr.op)
    if isinstance(expr, Dedup):
        return Dedup(substitute(expr.operand, name, replacement))
    if isinstance(expr, Powerset):
        return Powerset(substitute(expr.operand, name, replacement))
    if isinstance(expr, Nest):
        return Nest(substitute(expr.operand, name, replacement),
                    *expr.indices)
    if isinstance(expr, Unnest):
        return Unnest(substitute(expr.operand, name, replacement),
                      expr.index)
    # Fallback: nodes without variables inside (Bagging etc.) rebuild
    # generically via their children when they expose a single operand.
    if hasattr(expr, "operand"):
        rebuilt = type(expr)(substitute(expr.operand, name, replacement))
        return rebuilt
    if hasattr(expr, "item"):
        return type(expr)(substitute(expr.item, name, replacement))
    return expr


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

_BINARY_OPS = {
    AdditiveUnion: ops.additive_union,
    Subtraction: ops.subtraction,
    MaxUnion: ops.max_union,
    Intersection: ops.intersection,
    Cartesian: ops.cartesian,
}


def fold_constants(expr: Expr) -> Optional[Expr]:
    """Evaluate binary operators whose operands are both literals."""
    operator = _BINARY_OPS.get(type(expr))
    if operator is None:
        return None
    left, right = expr.left, expr.right
    if (isinstance(left, Const) and isinstance(right, Const)
            and isinstance(left.value, Bag)
            and isinstance(right.value, Bag)):
        return Const(operator(left.value, right.value))
    return None


def _is_empty_const(expr: Expr) -> bool:
    return (isinstance(expr, Const) and isinstance(expr.value, Bag)
            and expr.value.is_empty())


def drop_neutral_elements(expr: Expr) -> Optional[Expr]:
    """``B (+) {{}} = B``, ``B u {{}} = B``, ``B - {{}} = B``,
    ``{{}} - B = {{}}``, ``B n {{}} = {{}}``."""
    if isinstance(expr, (AdditiveUnion, MaxUnion)):
        if _is_empty_const(expr.left):
            return expr.right
        if _is_empty_const(expr.right):
            return expr.left
    if isinstance(expr, Subtraction):
        if _is_empty_const(expr.right):
            return expr.left
        if _is_empty_const(expr.left):
            return Const(EMPTY_BAG)
    if isinstance(expr, Intersection):
        if _is_empty_const(expr.left) or _is_empty_const(expr.right):
            return Const(EMPTY_BAG)
    return None


def idempotent_extremes(expr: Expr) -> Optional[Expr]:
    """``B u B = B`` and ``B n B = B`` for syntactically identical
    (hence semantically identical — expressions are pure) operands."""
    if isinstance(expr, (MaxUnion, Intersection)):
        if expr.left == expr.right:
            return expr.left
    return None


def self_subtraction(expr: Expr) -> Optional[Expr]:
    """``B - B = {{}}``."""
    if isinstance(expr, Subtraction) and expr.left == expr.right:
        return Const(EMPTY_BAG)
    return None


def collapse_dedup(expr: Expr) -> Optional[Expr]:
    """``eps(eps(B)) = eps(B)`` and ``eps(P(B)) = P(B)`` (a powerset is
    already duplicate-free)."""
    if isinstance(expr, Dedup):
        if isinstance(expr.operand, Dedup):
            return expr.operand
        if isinstance(expr.operand, Powerset):
            return expr.operand
    return None


def fuse_maps(expr: Expr) -> Optional[Expr]:
    """``MAP_f(MAP_g(B)) = MAP_{f o g}(B)``.

    Correct under bag semantics because MAP adds the multiplicities of
    colliding images, and function composition collides exactly the
    same members.
    """
    if not isinstance(expr, Map) or not isinstance(expr.operand, Map):
        return None
    outer, inner = expr.lam, expr.operand.lam
    composed = substitute(outer.body, outer.param, inner.body)
    return Map(Lam(inner.param, composed), expr.operand.operand)


def cancel_attribute_of_tupling(expr: Expr) -> Optional[Expr]:
    """``alpha_i(tau(o1, ..., ok)) = o_i`` — the beta-reduction that
    MAP fusion leaves behind."""
    if isinstance(expr, Attribute) and isinstance(expr.operand, Tupling):
        if 1 <= expr.index <= len(expr.operand.parts):
            return expr.operand.parts[expr.index - 1]
    return None


def push_selection_through_map(expr: Expr) -> Optional[Expr]:
    """``sigma_{phi=phi'}(MAP_f(B)) = MAP_f(sigma_{phi.f = phi'.f}(B))``.

    Sound for any comparator: a member o of B contributes to the
    selected result iff its image f(o) passes the test, i.e. iff o
    passes the composed test; MAP's additive collision handling is
    unaffected because exactly the same members survive.  Running the
    selection first shrinks the bag MAP traverses.
    """
    if not isinstance(expr, Select) or not isinstance(expr.operand,
                                                      Map):
        return None
    mapped = expr.operand
    # capture guard: the selection lambdas must not freely mention the
    # MAP parameter's name (it would be captured by the new binder)
    for lam in (expr.left, expr.right):
        if mapped.lam.param in (lam.body.free_vars() - {lam.param}):
            return None
    composed_left = Lam(mapped.lam.param, substitute(
        expr.left.body, expr.left.param, mapped.lam.body))
    composed_right = Lam(mapped.lam.param, substitute(
        expr.right.body, expr.right.param, mapped.lam.body))
    pushed = Select(composed_left, composed_right, mapped.operand,
                    op=expr.op)
    return Map(mapped.lam, pushed)


def push_selection_into_union(expr: Expr) -> Optional[Expr]:
    """``sigma(A (+) B) = sigma(A) (+) sigma(B)`` (same for u, n, -):
    selections commute with all four multiplicity-wise operators."""
    if not isinstance(expr, Select):
        return None
    operand = expr.operand
    if isinstance(operand, (AdditiveUnion, MaxUnion, Intersection,
                            Subtraction)):
        return type(operand)(
            Select(expr.left, expr.right, operand.left, op=expr.op),
            Select(expr.left, expr.right, operand.right, op=expr.op))
    return None


def _attribute_indices(body: Expr, param: str) -> Optional[Set[int]]:
    """The set of attribute indices a restricted lambda body projects
    from its parameter; None when the body is not of the restricted
    shape ``Attribute(Var(param), i)`` / constants / tupling thereof."""
    if isinstance(body, Const):
        return set()
    if isinstance(body, Attribute) and isinstance(body.operand, Var) \
            and body.operand.name == param:
        return {body.index}
    if isinstance(body, Tupling):
        indices: Set[int] = set()
        for part in body.parts:
            inner = _attribute_indices(part, param)
            if inner is None:
                return None
            indices |= inner
        return indices
    return None


def _shift_attributes(body: Expr, param: str, offset: int) -> Expr:
    """Reindex the attribute projections of a restricted lambda body."""
    if isinstance(body, Const):
        return body
    if isinstance(body, Attribute):
        return Attribute(body.operand, body.index + offset)
    if isinstance(body, Tupling):
        return Tupling(*(_shift_attributes(part, param, offset)
                         for part in body.parts))
    raise AssertionError("unreachable: shape checked beforehand")


def make_push_selection_into_product(
        left_arity_of: Callable[[Expr], Optional[int]]) -> RewriteRule:
    """Build the selection-pushdown-through-product rule.

    The rule needs the arity of the product's left operand to decide
    which side a selection touches; ``left_arity_of`` supplies it (the
    planner wires this to the type checker via the plan context's
    schema).
    """

    def rule(expr: Expr) -> Optional[Expr]:
        if not isinstance(expr, Select) or not isinstance(expr.operand,
                                                          Cartesian):
            return None
        product = expr.operand
        arity = left_arity_of(product.left)
        if arity is None:
            return None
        left_idx = _attribute_indices(expr.left.body, expr.left.param)
        right_idx = _attribute_indices(expr.right.body, expr.right.param)
        if left_idx is None or right_idx is None:
            return None
        touched = left_idx | right_idx
        if touched and max(touched) <= arity:
            pushed = Select(expr.left, expr.right, product.left,
                            op=expr.op)
            return Cartesian(pushed, product.right)
        if touched and min(touched) > arity:
            shifted_left = Lam(expr.left.param, _shift_attributes(
                expr.left.body, expr.left.param, -arity))
            shifted_right = Lam(expr.right.param, _shift_attributes(
                expr.right.body, expr.right.param, -arity))
            pushed = Select(shifted_left, shifted_right, product.right,
                            op=expr.op)
            return Cartesian(product.left, pushed)
        return None

    return rule


def push_selection_into_product(expr: Expr) -> Optional[Expr]:
    """Schema-free variant of the product pushdown: only fires when the
    left operand's arity is syntactically evident (a bag literal)."""

    def literal_arity(operand: Expr) -> Optional[int]:
        if isinstance(operand, Const) and isinstance(operand.value, Bag) \
                and not operand.value.is_empty():
            element = operand.value.an_element()
            return element.arity if hasattr(element, "arity") else None
        return None

    return make_push_selection_into_product(literal_arity)(expr)


# ----------------------------------------------------------------------
# The registry: names, stages, side conditions
# ----------------------------------------------------------------------

#: Normalize-stage rules: unconditional structural clean-ups.  They are
#: confluent and terminating on their own, so they run at every opt
#: level >= 1 (opt level 0 disables even these — the differential
#: backend ``engine-opt0`` wants the raw tree).
NORMALIZE_RULES: Tuple[Rule, ...] = (
    Rule("cancel-attribute", cancel_attribute_of_tupling, "normalize",
         "alpha_i(tau(o_1..o_k)) = o_i holds per member object; no bag "
         "is touched, so every multiplicity is preserved verbatim."),
    Rule("collapse-dedup", collapse_dedup, "normalize",
         "eps is idempotent and P(B) is duplicate-free by "
         "construction, so the inner pass already produced every "
         "multiplicity the outer pass would."),
)

#: Rewrite-stage rules: the cost-directed algebraic equivalences,
#: ordered cheap-first.  Enabled at opt level 2.
REWRITE_RULES: Tuple[Rule, ...] = (
    Rule("fold-constants", fold_constants, "rewrite",
         "both operands are literal bags, so the kernel operator "
         "computes the exact result multiplicities at compile time.  "
         "N-only: the fold runs the N kernels, which disagrees with "
         "non-cancellative domains and re-indexes provenance labels.",
         nat_only=True),
    Rule("drop-neutral", drop_neutral_elements, "rewrite",
         "{{}} is the neutral element of (+), u, and right-monus and "
         "absorbing for n and left-monus under the multiplicity "
         "definitions of Section 3; no non-empty operand changes."),
    Rule("idempotent-extremes", idempotent_extremes, "rewrite",
         "max(n, n) = n and min(n, n) = n pointwise on "
         "multiplicities; sound only for syntactically identical "
         "operands, which purity upgrades to semantic identity."),
    Rule("self-subtraction", self_subtraction, "rewrite",
         "monus gives n - n = 0 pointwise on multiplicities; needs "
         "the identical-operand side condition, as above."),
    Rule("fuse-maps", fuse_maps, "rewrite",
         "MAP adds the multiplicities of colliding images, and f o g "
         "collides exactly the members g collides then f collides — "
         "the additive collision totals agree."),
    Rule("push-select-map", push_selection_through_map, "rewrite",
         "a member passes sigma after MAP_f iff it passes the "
         "f-composed test before; the surviving member set is "
         "identical, so MAP's additive collisions are unchanged.  "
         "Side condition: the selection lambdas must not capture the "
         "MAP binder (guarded syntactically)."),
    Rule("push-select-union", push_selection_into_union, "rewrite",
         "sigma filters each member independently of its "
         "multiplicity, and (+), u, n, monus combine multiplicities "
         "pointwise per member — filtering before or after combining "
         "yields the same pointwise totals."),
)

#: All statically-known rules (the schema-dependent product pushdown is
#: constructed per-compilation by :func:`product_pushdown_rule`).
ALL_RULES: Tuple[Rule, ...] = NORMALIZE_RULES + REWRITE_RULES

#: The side condition of the schema-dependent pushdown, shared by both
#: construction sites.
_PRODUCT_PUSHDOWN_CONDITION = (
    "a selection touching only the left (resp. right) factor's "
    "attribute positions filters members independently of the other "
    "factor; x multiplies multiplicities, so filtering one factor "
    "first scales the same products.  Side condition: the left "
    "operand's arity must be known (schema or literal) and the "
    "touched positions must fall entirely on one side.")


def product_pushdown_rule(left_arity_of: Callable[[Expr], Optional[int]]
                          ) -> Rule:
    """The schema-driven selection-pushdown-through-product rule,
    wrapped with its planner metadata."""
    return Rule("push-select-product",
                make_push_selection_into_product(left_arity_of),
                "rewrite", _PRODUCT_PUSHDOWN_CONDITION,
                requires_schema=True)


def rule_named(name: str) -> Rule:
    """Look up a statically-registered rule by name."""
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    raise KeyError(f"no rewrite rule named {name!r}")
