"""Per-query compilation state: pass configuration and plan context.

:class:`PassConfig` is the *what*: which optimization level the
pipeline runs at and which named passes are individually toggled.  It
is frozen and hashable because it is part of the plan-cache key — an
opt-0 plan and an opt-2 plan for the same expression must never share
a cache slot (``tests/test_planner.py`` pins this).

:class:`PlanContext` is the *with what*: the type environment, catalog
statistics, arity signature, governor handle, plan cache, and target
engine for one compilation.  Every entry point (``core.eval``,
``run_sql``, the REPL, the CLI, the testkit backends) builds one of
these and hands it to :func:`repro.planner.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.core.bag import Bag
from repro.core.semiring import resolve_semiring, semiring_name
from repro.planner.manager import DEFAULT_MAX_PASSES
from repro.planner.rewrites import (
    ALL_RULES, NORMALIZE_RULES, REWRITE_RULES, Rule,
)
from repro.planner.stats import (
    DEFAULT_SELECTIVITY, BagStats, SelectivityFn, stats_of,
)

__all__ = ["PassConfig", "PlanContext", "STAGE_NAMES", "OPT_LEVELS",
           "toggleable_passes"]

#: The named stages of the pipeline, in order.
STAGE_NAMES = ("typecheck", "normalize", "rewrite", "lower",
               "parallelize", "codegen")

#: opt level -> one-line meaning (the CLI prints this).
OPT_LEVELS = {
    0: "all rewrites disabled; naive lowering (no fusion, no "
       "reordering, no sharing)",
    1: "normalize + cost-based lowering (the default)",
    2: "level 1 plus the algebraic rewrite fixpoint",
    3: "level 2 plus columnar plan-to-closure codegen "
       "(fused segments; engine=codegen)",
}

#: Stage-level toggle names plus every statically-registered rule name.
def toggleable_passes() -> Tuple[str, ...]:
    names = ["normalize", "rewrite", "cost-lowering", "codegen"]
    names.extend(rule.name for rule in ALL_RULES)
    names.append("push-select-product")
    return tuple(names)


@dataclass(frozen=True)
class PassConfig:
    """Which passes run, at which level, with which toggles.

    ``disabled`` / ``enabled`` hold pass names (stage names or
    individual rule names); an explicit toggle wins over the level
    default, and ``disabled`` wins over ``enabled``.
    """

    opt_level: int = 1
    disabled: Tuple[str, ...] = ()
    enabled: Tuple[str, ...] = ()
    max_rewrite_passes: int = DEFAULT_MAX_PASSES
    selectivity: float = DEFAULT_SELECTIVITY
    #: Canonical name of the multiplicity semiring plans are built
    #: for.  Part of the cache tag: an N plan and a Bool plan for the
    #: same expression must never share a slot (constants are baked in
    #: adapted form, lowering collapses differ under idempotent add).
    semiring: str = "nat"

    def __post_init__(self):
        if self.opt_level not in OPT_LEVELS:
            raise ValueError(
                f"opt level must be one of {sorted(OPT_LEVELS)}, "
                f"got {self.opt_level!r}")
        # normalized, deduplicated, sorted tuples keep the config
        # hashable and make equal toggles produce equal cache tags
        object.__setattr__(self, "disabled",
                           tuple(sorted(set(self.disabled))))
        object.__setattr__(self, "enabled",
                           tuple(sorted(set(self.enabled))))
        # canonicalize semiring aliases ("set" -> "bool") so equal
        # domains produce equal cache tags; unknown names raise here
        object.__setattr__(
            self, "semiring",
            semiring_name(resolve_semiring(self.semiring)))

    # -- construction ----------------------------------------------------

    @classmethod
    def for_level(cls, opt_level: int, *,
                  disabled: Tuple[str, ...] = (),
                  enabled: Tuple[str, ...] = (),
                  max_rewrite_passes: int = DEFAULT_MAX_PASSES,
                  selectivity: float = DEFAULT_SELECTIVITY,
                  semiring: str = "nat") -> "PassConfig":
        return cls(opt_level=opt_level, disabled=disabled,
                   enabled=enabled,
                   max_rewrite_passes=max_rewrite_passes,
                   selectivity=selectivity, semiring=semiring)

    def with_toggle(self, name: str, on: bool) -> "PassConfig":
        """A new config with one pass forced on or off."""
        disabled = set(self.disabled) - {name}
        enabled = set(self.enabled) - {name}
        (enabled if on else disabled).add(name)
        return replace(self, disabled=tuple(disabled),
                       enabled=tuple(enabled))

    # -- queries ---------------------------------------------------------

    def _active(self, name: str, default_on: bool) -> bool:
        if name in self.disabled:
            return False
        if name in self.enabled:
            return True
        return default_on

    def stage_active(self, stage: str) -> bool:
        """Is a whole stage active at this level?"""
        if stage == "normalize":
            return self._active("normalize", self.opt_level >= 1)
        if stage == "rewrite":
            return self._active("rewrite", self.opt_level >= 2)
        if stage == "cost-lowering":
            return self._active("cost-lowering", self.opt_level >= 1)
        if stage == "codegen":
            return self._active("codegen", self.opt_level >= 3)
        return True

    def rule_active(self, rule: Rule) -> bool:
        """Is one named rule active, given its stage and the toggles?"""
        if not self.stage_active(rule.stage):
            return False
        if rule.nat_only and self.semiring != "nat":
            return False
        return self._active(rule.name, True)

    def active_normalize_rules(self) -> Tuple[Rule, ...]:
        return tuple(rule for rule in NORMALIZE_RULES
                     if self.rule_active(rule))

    def active_rewrite_rules(self) -> Tuple[Rule, ...]:
        return tuple(rule for rule in REWRITE_RULES
                     if self.rule_active(rule))

    @property
    def cost_based_lowering(self) -> bool:
        return self.stage_active("cost-lowering")

    def cache_tag(self) -> Hashable:
        """The pass-configuration component of the plan-cache key.

        Everything that can change the *shape* of the produced plan is
        in here; two configs that lower identically share a tag only
        when they are equal, so opt-0 and opt-2 plans can never
        collide.
        """
        return ("passes", self.opt_level, self.disabled, self.enabled,
                self.selectivity, self.semiring)

    def describe(self) -> str:
        parts = [f"opt-level {self.opt_level}"]
        if self.disabled:
            parts.append("disabled: " + ", ".join(self.disabled))
        if self.enabled:
            parts.append("enabled: " + ", ".join(self.enabled))
        if self.semiring != "nat":
            parts.append(f"semiring: {self.semiring}")
        return "; ".join(parts)


class PlanContext:
    """Everything one compilation needs, bundled.

    Parameters
    ----------
    engine:
        ``"tree"`` (the oracle walker — the pipeline stops after the
        logical stages), ``"physical"``, ``"parallel"``, or
        ``"codegen"`` (the fused columnar runtime).
    schema:
        Optional ``name -> Type`` mapping; enables the typecheck stage
        and the schema-driven product pushdown rule.
    statistics / arities:
        Catalog statistics for cost-based lowering; usually derived
        from concrete bindings via :meth:`for_bindings`.
    governor:
        Optional :class:`~repro.guard.ResourceGovernor`; compilation
        ticks it, so rewriting shares the run's budgets.
    cache:
        Optional :class:`~repro.engine.cache.PlanCache`; keys include
        :meth:`PassConfig.cache_tag`.
    engine_stats:
        Optional :class:`~repro.engine.physical.EngineStats` to count
        cache hits / misses / lowerings into.
    parallel:
        Optional ``ParallelPolicy`` driving the parallelize pass
        (set when ``engine == "parallel"``).
    selectivity_fn:
        Optional per-predicate selectivity oracle (see
        :data:`repro.planner.stats.SelectivityFn`); usually supplied
        by a storage catalog's histograms via :meth:`capture`.

    ``stats_sources`` records where each relation's statistics came
    from (``"catalog"`` / ``"scanned"``); ``stats_epochs`` records the
    catalog epoch per catalog-sourced relation.  Both feed
    :meth:`stats_tag`, the statistics component of the plan-cache key,
    and the ``:explain`` stages view.
    """

    __slots__ = ("engine", "schema", "statistics", "arities",
                 "governor", "cache", "engine_stats", "parallel",
                 "config", "selectivity_fn", "stats_sources",
                 "stats_epochs")

    def __init__(self, *, engine: str = "physical",
                 schema: Optional[Mapping[str, Any]] = None,
                 statistics: Optional[Mapping[str, BagStats]] = None,
                 arities: Optional[Mapping[str, int]] = None,
                 governor=None, cache=None, engine_stats=None,
                 parallel=None,
                 config: Optional[PassConfig] = None,
                 selectivity_fn: Optional[SelectivityFn] = None):
        if engine not in ("tree", "physical", "parallel", "codegen"):
            raise ValueError(f"unknown engine {engine!r} "
                             "(choices: 'tree', 'physical', "
                             "'parallel', 'codegen')")
        self.engine = engine
        self.schema = dict(schema) if schema is not None else None
        self.statistics = (dict(statistics) if statistics is not None
                           else None)
        self.arities = dict(arities) if arities else {}
        self.governor = governor
        self.cache = cache
        self.engine_stats = engine_stats
        self.parallel = parallel
        self.config = config if config is not None else PassConfig()
        self.selectivity_fn = selectivity_fn
        self.stats_sources: Dict[str, str] = {}
        self.stats_epochs: Dict[str, int] = {}

    @classmethod
    def capture(cls, bindings: Mapping[str, Any], *,
                catalog=None,
                engine: str = "physical",
                schema: Optional[Mapping[str, Any]] = None,
                governor=None, cache=None, engine_stats=None,
                parallel=None,
                config: Optional[PassConfig] = None
                ) -> "PlanContext":
        """Derive statistics and arities from concrete bindings.

        With a ``catalog`` (any object exposing
        ``planner_stats(name)`` — the storage catalog's protocol),
        relations the catalog knows are answered from persisted
        statistics without touching the bound bag at all, and the
        catalog's histogram-driven selectivity oracle is installed.
        Everything else falls back to :func:`stats_of`, which is
        memoized by bag identity — so repeated compiles against the
        same bound bag cost one dictionary hit, not a re-derivation
        (the per-compile full-scan this method historically did).
        """
        statistics: Dict[str, BagStats] = {}
        arities: Dict[str, int] = {}
        sources: Dict[str, str] = {}
        epochs: Dict[str, int] = {}
        for name, value in bindings.items():
            if not isinstance(value, Bag):
                continue
            entry = (catalog.planner_stats(name)
                     if catalog is not None else None)
            if entry is not None:
                statistics[name] = entry.bag_stats
                sources[name] = "catalog"
                epochs[name] = entry.epoch
                if entry.arity is not None:
                    arities[name] = entry.arity
                continue
            statistics[name] = stats_of(value)
            sources[name] = "scanned"
            if not value.is_empty():
                element = value.an_element()
                if hasattr(element, "arity"):
                    arities[name] = element.arity
        selectivity_fn = None
        if catalog is not None:
            selectivity_fn = catalog.selectivity_oracle()
        ctx = cls(engine=engine, schema=schema, statistics=statistics,
                  arities=arities, governor=governor, cache=cache,
                  engine_stats=engine_stats, parallel=parallel,
                  config=config, selectivity_fn=selectivity_fn)
        ctx.stats_sources = sources
        ctx.stats_epochs = epochs
        return ctx

    @classmethod
    def for_bindings(cls, bindings: Mapping[str, Any], *,
                     engine: str = "physical",
                     schema: Optional[Mapping[str, Any]] = None,
                     governor=None, cache=None, engine_stats=None,
                     parallel=None,
                     config: Optional[PassConfig] = None
                     ) -> "PlanContext":
        """Catalog-less :meth:`capture` (the historical name)."""
        return cls.capture(bindings, engine=engine, schema=schema,
                           governor=governor, cache=cache,
                           engine_stats=engine_stats, parallel=parallel,
                           config=config)

    def stats_tag(self) -> Optional[Tuple]:
        """The statistics component of the plan-cache key.

        Catalog-sourced relations contribute ``(name, "catalog",
        epoch)`` — bumping the epoch on ANALYZE or feedback absorption
        retires every plan built from the stale statistics, and a
        catalog-driven compile can never collide with a scan-driven
        one.  Scanned statistics deliberately contribute *nothing*:
        plans hold no data, and one warm plan serving two databases of
        the same shape is pinned behaviour
        (``test_warm_cache_shared_across_databases``).
        """
        parts = tuple((name, "catalog", self.stats_epochs.get(name, 0))
                      for name in sorted(self.stats_sources)
                      if self.stats_sources[name] == "catalog")
        return ("stats", parts) if parts else None

    def describe_stats_sources(self) -> Optional[str]:
        """Human summary for the ``:explain`` stages view, e.g.
        ``"stats: R=catalog, S=scanned"``."""
        if not self.stats_sources:
            return None
        inner = ", ".join(f"{name}={self.stats_sources[name]}"
                          for name in sorted(self.stats_sources))
        return f"stats: {inner}"
