"""The one shared estimator: cardinality statistics and static cost.

Historically the repo grew two half-independent copies of this math —
``repro.optimizer.cardinality`` fed the logical rewriter and EXPLAIN,
while the engine's lowering pass consumed the same module but owned its
own cost weights, and nothing pinned the two views together.  This
module is now the single source of truth: *both* rewrite costing and
cost-based lowering import from here, ``repro.optimizer.cardinality``
is a compatibility shim re-exporting these names, and
``tests/test_planner.py`` asserts the two import paths agree operator
by operator on a fixed fixture set.

A classical optimizer component adapted to bag semantics: given
per-relation statistics (total cardinality *with duplicates* and the
number of distinct elements — the two numbers that diverge exactly when
bags matter), estimate the same two numbers for every operator's
output.  The per-operator rules follow the multiplicity definitions of
Section 3:

=================  ==========================  =======================
operator           cardinality                 distinct
=================  ==========================  =======================
``B (+) B'``       ``c + c'``                  ``<= d + d'``
``B - B'``         ``<= c``                    ``<= d``
``B u B'``         ``<= c + c'``               ``<= d + d'``
``B n B'``         ``<= min(c, c')``           ``<= min(d, d')``
``B x B'``         ``c * c'``                  ``d * d'``
``MAP_f(B)``       ``c`` (exactly)             ``<= d``
``sigma(B)``       ``<= c`` (selectivity)      ``<= d``
``eps(B)``         ``d`` (exactly)             ``d``
``P(B)``           ``<= prod(c_i+1)``          same
``Pb(B)``          ``2^c``                     ``<= 2^c``
``delta(B)``       sum of inner cardinalities  —
=================  ==========================  =======================

Estimates are upper-bound flavoured (selections use a configurable
selectivity); tests check the *exact* rows (product, MAP, eps, Pb) and
that the bounds dominate the measured values on random workloads.

Two refinements matter for the physical engine's lowering decisions:

* **multiplicity blow-up** — ``B (+) B`` (what the engine lowers to a
  ``MultiplicityScale`` kernel) doubles *cardinality* but leaves
  *distinct* alone; the naive ``d + d'`` rule over-estimated dedup
  output by 2x per doubling.  Self-identical operands of ``(+)``,
  ``u``, ``n``, and ``-`` now use the exact bag identities.
* **nested sizes** — powerset members are bags, and ``delta(P(B))``
  multiplies by the *average subbag size* (``|B| / 2``), not by the
  average multiplicity of ``P(B)`` (which is 1).
  :class:`BagStats` carries ``avg_element_size`` for this, making the
  delta-of-powerset estimate exact on uniform families.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.core.bag import Bag
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, BagDestroy, Cartesian, Const, Dedup, Expr,
    Intersection, Map, MaxUnion, Powerbag, Powerset, Select,
    Subtraction, Var,
)
from repro.core.nest import Nest, Unnest

__all__ = ["BagStats", "stats_of", "estimate", "estimated_cost",
           "NODE_WEIGHTS", "DEFAULT_SELECTIVITY", "SelectivityFn",
           "stats_scan_count", "count_stats_scan", "clear_stats_memo"]

#: A per-predicate selectivity oracle: given a ``Select`` node, return
#: a selectivity in (0, 1] derived from data statistics (the storage
#: catalog's histograms), or ``None`` to fall back to the flat
#: default.  Threaded through :func:`estimate` by the lowering pass.
SelectivityFn = Callable[["Select"], Optional[float]]

#: Default fraction of members a selection is assumed to keep.
DEFAULT_SELECTIVITY = 0.5

#: Powerset/powerbag estimates above this are reported as infinity to
#: keep the arithmetic finite.
_CAP = float(10 ** 18)


@dataclass(frozen=True)
class BagStats:
    """The two numbers that describe a bag for estimation purposes.

    ``avg_element_size`` is set when the members are themselves bags
    (powerset/powerbag/nest output): the expected number of elements
    *inside* one member.  ``delta`` and ``unnest`` estimates consume
    it; ``None`` means atomic or unknown members.
    """

    cardinality: float      # with duplicates
    distinct: float
    avg_element_size: Optional[float] = None

    def __post_init__(self):
        if self.cardinality < 0 or self.distinct < 0:
            raise BagTypeError("statistics must be non-negative")
        if self.distinct > self.cardinality:
            object.__setattr__(self, "distinct", self.cardinality)
        if (self.avg_element_size is not None
                and self.avg_element_size < 0):
            raise BagTypeError("statistics must be non-negative")

    @property
    def average_multiplicity(self) -> float:
        if self.distinct == 0:
            return 0.0
        return self.cardinality / self.distinct


# ----------------------------------------------------------------------
# Exact statistics, memoized by bag identity
# ----------------------------------------------------------------------

#: Bounded identity-keyed memo: ``id(bag) -> (bag, stats)``.  The bag
#: reference pins the id against reuse; bags are immutable, so a hit
#: is always valid.  Bounded so long sessions cannot leak bags.
_STATS_MEMO: "OrderedDict[int, tuple]" = OrderedDict()
_STATS_MEMO_CAPACITY = 512

#: How many times statistics were derived by touching a concrete bag
#: (as opposed to a memo hit or a catalog lookup).  The storage tests
#: assert a compile against cataloged relations leaves this unchanged.
_SCANS = [0]


def stats_scan_count() -> int:
    """Number of bag-touching statistics captures so far (process-wide
    monotone counter; diff before/after to count scans in a region)."""
    return _SCANS[0]


def count_stats_scan() -> None:
    """Record one full-bag statistics scan (``ANALYZE`` and the
    memo-miss path of :func:`stats_of` call this)."""
    _SCANS[0] += 1


def clear_stats_memo() -> None:
    """Drop the identity memo (tests use this to force re-scans)."""
    _STATS_MEMO.clear()


def stats_of(bag: Bag) -> BagStats:
    """Exact statistics of a concrete bag.

    Memoized by bag *identity*: every entry point that derives
    statistics from live bindings (``PlanContext.capture``) used to
    re-derive them on every single compile; repeated compiles against
    the same bound bag are now a dictionary hit, and the scan counter
    (:func:`stats_scan_count`) only moves on a genuine miss.
    """
    key = id(bag)
    hit = _STATS_MEMO.get(key)
    if hit is not None and hit[0] is bag:
        _STATS_MEMO.move_to_end(key)
        return hit[1]
    count_stats_scan()
    stats = BagStats(cardinality=float(bag.cardinality),
                     distinct=float(bag.distinct_count))
    _STATS_MEMO[key] = (bag, stats)
    if len(_STATS_MEMO) > _STATS_MEMO_CAPACITY:
        _STATS_MEMO.popitem(last=False)
    return stats


def estimate(expr: Expr, statistics: Mapping[str, BagStats],
             selectivity: float = DEFAULT_SELECTIVITY,
             selectivity_fn: Optional[SelectivityFn] = None) -> BagStats:
    """Estimate output statistics of an expression bottom-up.

    ``statistics`` binds the relation variables.  Lambda-bound
    variables never appear at estimation positions (lambdas map
    objects, not bags), so any unbound name is an error.

    ``selectivity_fn`` refines selections: when provided, each
    ``Select`` node is offered to it first and the flat ``selectivity``
    only applies when it returns ``None`` — this is how catalog
    histograms replace the one-size-fits-all default.
    """
    if not 0 < selectivity <= 1:
        raise BagTypeError("selectivity must be in (0, 1]")
    return _estimate(expr, dict(statistics), selectivity,
                     selectivity_fn)


def _estimate(expr: Expr, stats: Dict[str, BagStats],
              selectivity: float,
              selectivity_fn: Optional[SelectivityFn] = None
              ) -> BagStats:
    if isinstance(expr, Var):
        if expr.name not in stats:
            raise BagTypeError(
                f"no statistics for relation {expr.name!r}")
        return stats[expr.name]
    if isinstance(expr, Const):
        if isinstance(expr.value, Bag):
            return stats_of(expr.value)
        return BagStats(1.0, 1.0)

    if isinstance(expr, AdditiveUnion):
        left = _estimate(expr.left, stats, selectivity, selectivity_fn)
        if expr.left == expr.right:
            # B (+) B doubles every multiplicity: 2c rows but still
            # only d distinct members (the engine's MultiplicityScale)
            return BagStats(2.0 * left.cardinality, left.distinct,
                            left.avg_element_size)
        right = _estimate(expr.right, stats, selectivity, selectivity_fn)
        return BagStats(left.cardinality + right.cardinality,
                        left.distinct + right.distinct,
                        _merge_size(left, right))
    if isinstance(expr, MaxUnion):
        left = _estimate(expr.left, stats, selectivity, selectivity_fn)
        if expr.left == expr.right:
            return left  # B u B = B
        right = _estimate(expr.right, stats, selectivity, selectivity_fn)
        return BagStats(left.cardinality + right.cardinality,
                        left.distinct + right.distinct,
                        _merge_size(left, right))
    if isinstance(expr, Subtraction):
        left = _estimate(expr.left, stats, selectivity, selectivity_fn)
        if expr.left == expr.right:
            return BagStats(0.0, 0.0)  # B - B = {{}} under monus
        return left
    if isinstance(expr, Intersection):
        left = _estimate(expr.left, stats, selectivity, selectivity_fn)
        if expr.left == expr.right:
            return left  # B n B = B
        right = _estimate(expr.right, stats, selectivity, selectivity_fn)
        return BagStats(min(left.cardinality, right.cardinality),
                        min(left.distinct, right.distinct),
                        _merge_size(left, right))
    if isinstance(expr, Cartesian):
        left = _estimate(expr.left, stats, selectivity, selectivity_fn)
        right = _estimate(expr.right, stats, selectivity, selectivity_fn)
        return BagStats(left.cardinality * right.cardinality,
                        left.distinct * right.distinct)
    if isinstance(expr, Map):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        return BagStats(inner.cardinality, inner.distinct)
    if isinstance(expr, Select):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        kept = None
        if selectivity_fn is not None:
            kept = selectivity_fn(expr)
        if kept is None or not 0 < kept <= 1:
            kept = selectivity
        return BagStats(inner.cardinality * kept,
                        inner.distinct * kept,
                        inner.avg_element_size)
    if isinstance(expr, Dedup):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        return BagStats(inner.distinct, inner.distinct,
                        inner.avg_element_size)
    if isinstance(expr, Powerset):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        subbags = _powerset_size(inner)
        # a uniformly random subbag keeps half of B's elements
        return BagStats(subbags, subbags,
                        avg_element_size=inner.cardinality / 2.0)
    if isinstance(expr, Powerbag):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        total = min(_CAP, 2.0 ** min(inner.cardinality, 60.0)
                    if inner.cardinality <= 60 else _CAP)
        return BagStats(total, min(total, _powerset_size(inner)),
                        avg_element_size=inner.cardinality / 2.0)
    if isinstance(expr, BagDestroy):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        # each of the inner bags contributes its own cardinality;
        # powerset/nest outputs carry the true average subbag size —
        # fall back to the average multiplicity only without it
        if inner.avg_element_size is not None:
            per_bag = inner.avg_element_size
        else:
            per_bag = max(1.0, inner.average_multiplicity)
        return BagStats(min(_CAP, inner.cardinality * per_bag),
                        min(_CAP, inner.distinct * per_bag))
    if isinstance(expr, Nest):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        # one output tuple per distinct residual key: at most d groups
        groups = max(1.0, inner.distinct) if inner.cardinality else 0.0
        per_group = (inner.cardinality / groups) if groups else 0.0
        return BagStats(groups, groups, avg_element_size=per_group)
    if isinstance(expr, Unnest):
        inner = _estimate(expr.operand, stats, selectivity, selectivity_fn)
        if inner.avg_element_size is not None:
            per_tuple = inner.avg_element_size
        else:
            per_tuple = max(1.0, inner.average_multiplicity)
        return BagStats(min(_CAP, inner.cardinality * per_tuple),
                        min(_CAP, inner.distinct * per_tuple))
    # unknown/extension operators: give up conservatively
    raise BagTypeError(
        f"no estimation rule for operator {type(expr).__name__}")


def _merge_size(left: BagStats, right: BagStats) -> Optional[float]:
    """Combined ``avg_element_size`` of a union-shaped result."""
    if left.avg_element_size is None or right.avg_element_size is None:
        return None
    return (left.avg_element_size + right.avg_element_size) / 2.0


def _powerset_size(inner: BagStats) -> float:
    """``prod(c_i + 1)`` approximated as
    ``(avg multiplicity + 1)^distinct``, capped."""
    if inner.distinct == 0:
        return 1.0
    base = inner.average_multiplicity + 1.0
    if inner.distinct * _log2(base) > 60:
        return _CAP
    return base ** inner.distinct


def _log2(value: float) -> float:
    import math
    return math.log2(value) if value > 0 else 0.0


# ----------------------------------------------------------------------
# Static cost model (shared by rewrite costing and :explain)
# ----------------------------------------------------------------------

#: Worst-case growth weights for the cost heuristic.  ``Unnest`` and
#: ``BagDestroy`` multiply cardinalities by nested-bag sizes (the
#: multiplicity blow-up the engine's scale kernels model), so they
#: weigh like small products; ``Nest`` only groups.
NODE_WEIGHTS = {
    "Powerset": 100,
    "Powerbag": 200,
    "Cartesian": 10,
    "Unnest": 8,
    "BagDestroy": 5,
    "Nest": 3,
    "Map": 2,
    "Select": 1,
    "Dedup": 1,
    "AdditiveUnion": 1,
    "Subtraction": 1,
    "MaxUnion": 1,
    "Intersection": 1,
}


def estimated_cost(expr: Expr) -> int:
    """A static cost heuristic: operator count weighted by worst-case
    output growth.  Used to confirm that rewrites do not increase the
    estimate (and by how much they shrink it)."""
    return sum(NODE_WEIGHTS.get(type(node).__name__, 1)
               for node in expr.walk())
