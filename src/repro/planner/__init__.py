"""``repro.planner`` — the staged compilation pipeline.

One pass-managed pipeline behind every entry point::

    parse/typecheck -> normalize -> logical rewrite
                    -> cost-based lowering -> (optional) parallelize

* :mod:`repro.planner.stats` — the single shared cardinality/cost
  estimator (``repro.optimizer.cardinality`` is a shim over it);
* :mod:`repro.planner.rewrites` — the named rewrite rules, each tagged
  with the bag-semantics side condition under which it preserves
  multiplicities;
* :mod:`repro.planner.manager` — the bounded, governor-ticked fixpoint
  pass manager;
* :mod:`repro.planner.context` — :class:`PassConfig` (opt levels,
  per-pass toggles, the plan-cache tag) and :class:`PlanContext` (type
  environment, catalog statistics, governor handle);
* :mod:`repro.planner.report` — per-stage :class:`PlanReport` for the
  ``:explain stages`` view and the E23 benchmark;
* :mod:`repro.planner.pipeline` — :func:`compile` itself.

Opt levels: ``0`` disables every rewrite and lowers naively (the
differential testkit's ``engine-opt0`` backend), ``1`` is
normalization plus cost-based lowering (the default physical path),
``2`` adds the full algebraic rewrite fixpoint.  See
``docs/planner.md``.
"""

from repro.planner.context import (
    OPT_LEVELS, STAGE_NAMES, PassConfig, PlanContext, toggleable_passes,
)
from repro.planner.manager import DEFAULT_MAX_PASSES, FixpointRewriter
from repro.planner.pipeline import CompiledPlan, compile
from repro.planner.report import PlanReport, StageRecord
from repro.planner.rewrites import (
    ALL_RULES, NORMALIZE_RULES, REWRITE_RULES, Rule, rule_named,
)
from repro.planner.stats import (
    DEFAULT_SELECTIVITY, NODE_WEIGHTS, BagStats, estimate,
    estimated_cost, stats_of,
)

__all__ = [
    "compile", "CompiledPlan",
    "PassConfig", "PlanContext", "PlanReport", "StageRecord",
    "FixpointRewriter", "DEFAULT_MAX_PASSES",
    "Rule", "ALL_RULES", "NORMALIZE_RULES", "REWRITE_RULES",
    "rule_named", "toggleable_passes", "STAGE_NAMES", "OPT_LEVELS",
    "BagStats", "stats_of", "estimate", "estimated_cost",
    "NODE_WEIGHTS", "DEFAULT_SELECTIVITY",
]
