"""Plan reports: what each pipeline stage did, for ``:explain``.

A :class:`PlanReport` is a list of :class:`StageRecord` in pipeline
order.  Each record carries the tree *after* the stage ran, the rule
firings the stage performed, the estimated static cost of the result,
whether a fixpoint stage converged, and how long the stage took (the
E23 benchmark reads the timings).  ``render()`` produces the
``-- stages --`` view the CLI prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["StageRecord", "PlanReport"]


@dataclass
class StageRecord:
    """One pipeline stage's outcome."""

    stage: str                        # name from STAGE_NAMES
    tree: str                         # rendering of the stage's output
    firings: Dict[str, int] = field(default_factory=dict)
    cost: Optional[int] = None        # estimated_cost after the stage
    converged: Optional[bool] = None  # fixpoint stages only
    seconds: float = 0.0
    note: str = ""                    # e.g. "skipped (opt-level 0)"

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())


class PlanReport:
    """Accumulates stage records during one compilation."""

    def __init__(self, config_description: str = ""):
        self.config_description = config_description
        self.stages: List[StageRecord] = []

    def add(self, record: StageRecord) -> StageRecord:
        self.stages.append(record)
        return record

    def stage(self, name: str) -> Optional[StageRecord]:
        for record in self.stages:
            if record.stage == name:
                return record
        return None

    @property
    def total_firings(self) -> int:
        return sum(record.total_firings for record in self.stages)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.stages)

    def firing_counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for record in self.stages:
            for name, count in record.firings.items():
                merged[name] = merged.get(name, 0) + count
        return merged

    def render(self) -> str:
        """The ``-- stages --`` explain view."""
        lines: List[str] = []
        if self.config_description:
            lines.append(f"config: {self.config_description}")
        for record in self.stages:
            header = f"[{record.stage}]"
            details = []
            if record.note:
                details.append(record.note)
            if record.cost is not None:
                details.append(f"cost={record.cost}")
            if record.converged is False:
                details.append("fixpoint cut off")
            if record.firings:
                fired = ", ".join(
                    f"{name} x{count}"
                    for name, count in sorted(record.firings.items()))
                details.append(f"fired: {fired}")
            if details:
                header += "  (" + "; ".join(details) + ")"
            lines.append(header)
            for tree_line in record.tree.splitlines():
                lines.append("  " + tree_line)
        return "\n".join(lines)


class _StageTimer:
    """Context manager stamping ``seconds`` onto a record."""

    def __init__(self, record: StageRecord):
        self.record = record

    def __enter__(self):
        self._start = time.perf_counter()
        return self.record

    def __exit__(self, *exc):
        self.record.seconds = time.perf_counter() - self._start
        return False
