"""The staged compilation pipeline — the one front door.

``compile()`` runs ``typecheck -> normalize -> rewrite -> lower ->
parallelize`` over a logical expression, driven by the
:class:`~repro.planner.context.PassConfig` and recording a
:class:`~repro.planner.report.PlanReport` along the way.  Every
execution entry point in the repo (``core.eval.evaluate``,
``repro.engine.evaluate``, ``run_sql``, the REPL, the CLI, the testkit
backends) routes through here; ``repro.optimizer`` is a compatibility
shim over the same stages.

The plan cache is consulted *before* any stage runs: a hit skips
normalization, rewriting, and lowering in one step.  Cache keys
combine the canonical expression key, the relation arity signature,
and :meth:`PassConfig.cache_tag` — so an opt-0 plan can never be
served to an opt-2 caller (or vice versa), and parallel plans never
shadow serial ones.

The engine modules are imported lazily inside the lowering stage:
``repro.engine.lower`` itself consumes :mod:`repro.planner.stats`, and
keeping the dependency one-directional at import time avoids a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.core.expr import Expr
from repro.planner.context import PassConfig, PlanContext
from repro.planner.manager import FixpointRewriter
from repro.planner.report import PlanReport, StageRecord, _StageTimer
from repro.planner.rewrites import Rule, product_pushdown_rule
from repro.planner.stats import estimated_cost

__all__ = ["CompiledPlan", "compile"]


@dataclass
class CompiledPlan:
    """The pipeline's product: logical tree, physical plan, provenance.

    ``physical`` is ``None`` for ``engine="tree"`` — the oracle walks
    the (possibly rewritten) logical tree directly.  ``cache_hit``
    marks plans served whole from the plan cache (no stage ran).
    """

    source: Expr
    logical: Expr
    physical: Optional[Any]          # engine.lower.PhysicalPlan
    engine: str
    config: PassConfig
    report: PlanReport
    cache_hit: bool = False


def _combined_tag(config: PassConfig, policy,
                  stats_tag: Any = None,
                  codegen: bool = False) -> Any:
    """Cache tag: pass configuration, parallel policy, the statistics
    fingerprint, and whether the codegen stage will transform the
    plan — stale-stats plans can't collide with fresh ones because an
    ANALYZE bumps the catalog epoch inside ``stats_tag``, and a fused
    ``CodegenPlan`` can never be served to a stream-engine caller (or
    vice versa) because the codegen component differs."""
    parallel = None
    if policy is not None:
        parallel = ("parallel", policy.threshold)
    return (config.cache_tag(), parallel, stats_tag,
            ("codegen",) if codegen else None)


def _left_arity_fn(schema: Mapping[str, Any]
                   ) -> Callable[[Expr], Optional[int]]:
    """Operand-arity oracle for the product-pushdown rule, via type
    inference against the schema (the legacy optimizer's discipline)."""
    from repro.core.typecheck import TypeChecker
    from repro.core.types import BagType, TupleType

    def left_arity(operand: Expr) -> Optional[int]:
        try:
            inferred = TypeChecker().check(operand, schema)
        except Exception:
            return None
        if isinstance(inferred, BagType) and isinstance(
                inferred.element, TupleType):
            return inferred.element.arity
        return None

    return left_arity


def compile(expr: Expr, context: Optional[PlanContext] = None, *,
            trees: bool = False,
            extra_rules=()) -> CompiledPlan:
    """Run the staged pipeline over one expression.

    Parameters
    ----------
    context:
        The :class:`PlanContext`; a default (physical engine, opt
        level 1, no cache, no statistics) is built when omitted.
    trees:
        Collect the rendered tree after each stage into the report
        (the ``:explain stages`` view wants them; the hot path does
        not pay for rendering).
    extra_rules:
        Additional :class:`Rule` objects appended to the rewrite
        stage (the legacy ``Optimizer(extra_rules=...)`` surface).
    """
    ctx = context if context is not None else PlanContext()
    config = ctx.config
    governor = ctx.governor
    if governor is not None:
        governor.ensure_started()
    report = PlanReport(config.describe())

    # -- plan cache: a hit skips every stage ---------------------------
    codegen_active = (ctx.engine == "codegen"
                      and config.stage_active("codegen"))
    key = None
    if ctx.engine != "tree" and ctx.cache is not None:
        from repro.engine.cache import PlanCache
        key = PlanCache.key_for(expr, ctx.arities,
                                _combined_tag(config, ctx.parallel,
                                              ctx.stats_tag(),
                                              codegen_active))
        plan = ctx.cache.get(key)
        if plan is not None:
            if ctx.engine_stats is not None:
                ctx.engine_stats.cache_hits += 1
            report.add(StageRecord(
                "lower", tree=plan.render() if trees else "",
                note="plan cache hit"))
            return CompiledPlan(source=expr, logical=plan.expr,
                                physical=plan, engine=ctx.engine,
                                config=config, report=report,
                                cache_hit=True)

    # -- typecheck -----------------------------------------------------
    if ctx.schema is not None:
        record = StageRecord("typecheck", tree="")
        with _StageTimer(record):
            from repro.core.typecheck import TypeChecker
            inferred = TypeChecker().check(expr, ctx.schema)
            record.tree = str(inferred) if trees else ""
        report.add(record)

    # -- normalize -----------------------------------------------------
    logical = expr
    logical = _fixpoint_stage("normalize",
                              config.active_normalize_rules(),
                              logical, config, governor, report, trees)

    # -- logical rewrite ----------------------------------------------
    rewrite_rules = list(config.active_rewrite_rules())
    if ctx.schema is not None and config.stage_active("rewrite"):
        pushdown = product_pushdown_rule(_left_arity_fn(ctx.schema))
        if config.rule_active(pushdown):
            rewrite_rules.append(pushdown)
    for rule in extra_rules:
        if isinstance(rule, Rule):
            if config.rule_active(rule):
                rewrite_rules.append(rule)
        else:  # bare callable (legacy RewriteRule surface)
            rewrite_rules.append(Rule(
                name=getattr(rule, "__name__", "extra"),
                fn=rule, stage="rewrite",
                side_condition="caller-supplied rule; soundness is the "
                               "caller's obligation"))
    logical = _fixpoint_stage("rewrite", tuple(rewrite_rules), logical,
                              config, governor, report, trees)

    # -- lower (+ parallelize) ----------------------------------------
    if ctx.engine == "tree":
        report.add(StageRecord("lower", tree="",
                               note="skipped (engine=tree)"))
        return CompiledPlan(source=expr, logical=logical, physical=None,
                            engine="tree", config=config, report=report)

    record = StageRecord("lower", tree="")
    with _StageTimer(record):
        from repro.core.semiring import resolve_semiring
        from repro.engine.lower import lower
        semiring = resolve_semiring(config.semiring)
        plan = lower(logical, ctx.statistics,
                     selectivity=config.selectivity,
                     arities=ctx.arities, parallel=ctx.parallel,
                     cost_based=config.cost_based_lowering,
                     selectivity_fn=ctx.selectivity_fn,
                     segment_tag=config.cache_tag(),
                     semiring=semiring)
        notes = []
        if semiring is not None:
            notes.append(f"semiring {semiring.name}")
        if not config.cost_based_lowering:
            notes.append("naive (cost-based lowering disabled)")
        sources = ctx.describe_stats_sources()
        if sources is not None:
            notes.append(sources)
        if notes:
            record.note = "; ".join(notes)
        if trees:
            record.tree = plan.render()
    report.add(record)
    if ctx.parallel is not None:
        from repro.engine.parallel.exchange import Gather
        inserted = isinstance(plan.root, Gather)
        report.add(StageRecord(
            "parallelize", tree="",
            note=(f"threshold={ctx.parallel.threshold}; "
                  + ("exchanges inserted" if inserted
                     else "below threshold, serial plan kept"))))

    # -- codegen: fuse pipeline segments into columnar closures --------
    if codegen_active:
        record = StageRecord("codegen", tree="")
        with _StageTimer(record):
            from repro.engine.codegen import compile_codegen
            plan = compile_codegen(plan, semiring=semiring)
            record.note = (f"{len(plan.segments)} fused segment(s), "
                           f"{len(plan.barriers)} barrier leaf(s)")
            if trees:
                record.tree = plan.render()
        report.add(record)
    elif ctx.engine == "codegen":
        report.add(StageRecord(
            "codegen", tree="",
            note=(f"skipped (codegen pass inactive at opt-level "
                  f"{config.opt_level}); streaming plan kept")))

    if key is not None:
        ctx.cache.put(key, plan)
        if ctx.engine_stats is not None:
            ctx.engine_stats.cache_misses += 1
    if ctx.engine_stats is not None:
        ctx.engine_stats.lowerings += 1
    return CompiledPlan(source=expr, logical=logical, physical=plan,
                        engine=ctx.engine, config=config, report=report)


def _fixpoint_stage(name: str, rules, expr: Expr, config: PassConfig,
                    governor, report: PlanReport,
                    trees: bool) -> Expr:
    """Run one rule-fixpoint stage and record what it did."""
    record = StageRecord(name, tree="")
    with _StageTimer(record):
        if not rules:
            record.note = ("skipped (no active rules at "
                           f"opt-level {config.opt_level})")
            result = expr
        else:
            rewriter = FixpointRewriter(
                rules, max_passes=config.max_rewrite_passes,
                governor=governor, firings=record.firings)
            result = rewriter.rewrite(expr)
            record.converged = rewriter.converged
            record.cost = estimated_cost(result)
        if trees:
            record.tree = repr(result)
            if record.cost is None:
                record.cost = estimated_cost(result)
    report.add(record)
    return result
