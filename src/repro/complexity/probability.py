"""Asymptotic probabilities and the failure of the 0-1 law (Section 4).

Boolean relational-algebra queries without constants obey a 0-1 law:
their probability over random structures of size ``n`` tends to 0 or 1.
Example 4.2 shows BALG^1 breaks this: the query "card(R) > card(S)" has
asymptotic probability 1/2 (by [FGT93], properties expressible with
limited Rescher quantifiers have asymptotic probability 0, 1/2, or 1).

This module estimates asymptotic probabilities by Monte-Carlo sampling
over the uniform distribution on instances: every atom of the domain
``{0..n-1}`` enters each unary relation independently with probability
1/2 (the distribution underlying ``mu_n``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.bag import Bag, Tup

__all__ = [
    "random_unary_relation", "random_graph", "ProbabilityEstimate",
    "estimate_probability", "probability_series",
]


def random_unary_relation(n: int, rng: random.Random) -> Bag:
    """A uniform random subset of ``{0..n-1}`` as a bag of 1-tuples
    (duplicate-free: these are the *relations* of Example 4.2)."""
    return Bag([Tup(i) for i in range(n) if rng.random() < 0.5])


def random_graph(n: int, rng: random.Random) -> Bag:
    """A uniform random directed graph on ``{0..n-1}`` as a bag of
    edges (each of the n^2 possible edges present with probability
    1/2 — the mu_n distribution of Section 4)."""
    return Bag([Tup(i, j) for i in range(n) for j in range(n)
                if rng.random() < 0.5])


@dataclass
class ProbabilityEstimate:
    """A Monte-Carlo estimate of mu_n(P) with its standard error."""

    n: int
    trials: int
    successes: int

    @property
    def probability(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def standard_error(self) -> float:
        p = self.probability
        return (p * (1 - p) / self.trials) ** 0.5 if self.trials else 0.0


def estimate_probability(
        property_holds: Callable[..., bool],
        samplers: Sequence[Callable[[int, random.Random], Bag]],
        n: int, trials: int, seed: int = 0) -> ProbabilityEstimate:
    """Estimate ``mu_n`` of a boolean property by sampling.

    ``samplers`` draws one bag per relation symbol; ``property_holds``
    receives the sampled bags positionally.
    """
    rng = random.Random(seed)
    successes = 0
    for _ in range(trials):
        sample = [draw(n, rng) for draw in samplers]
        if property_holds(*sample):
            successes += 1
    return ProbabilityEstimate(n=n, trials=trials, successes=successes)


def probability_series(
        property_holds: Callable[..., bool],
        samplers: Sequence[Callable[[int, random.Random], Bag]],
        sizes: Sequence[int], trials: int,
        seed: int = 0) -> List[ProbabilityEstimate]:
    """Estimate mu_n for a sweep of domain sizes (one row per n)."""
    return [estimate_probability(property_holds, samplers, n, trials,
                                 seed=seed + n)
            for n in sizes]
