"""The Section 6 hierarchy constructions, as expression builders.

Theorems 6.1/6.2 and Propositions 6.3/6.4 all hinge on counting how
many *nested* powerset (or powerbag) applications a construction
spends to reach a given hyperexponential level:

* BALG^3:   ``E(B) = N(P(P(N(B))))`` doubles once per two powersets,
  so ``D(B) = P(E^i(B))`` spends ``2i + 1`` and simulating a machine
  spends ``2i + 2`` (Theorem 6.2);
* BALG^k:   ``E(B) = N(P^{k-1}(N(B)))`` exploits ``k - 1`` consecutive
  powersets, reaching hyper((k-2)i) with ``(k-1)i + 2`` (Prop 6.3);
* with the powerbag, a single ``E(B) = N(Pb(B))`` doubles, so level i
  costs ``i + 2`` (Prop 6.4).

This module builds those expressions programmatically so their power
nesting can be *measured* (it is a syntactic quantity) and, at tiny
sizes, their semantics checked: ``E`` really doubles / towers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.bag import Bag, Tup
from repro.core.derived import project_expr
from repro.core.errors import BagTypeError
from repro.core.expr import (
    Cartesian, Const, Expr, Powerbag, Powerset, Var,
)
from repro.core.fragments import power_nesting

__all__ = [
    "normalize_expr", "doubling_expr_balg3", "doubling_expr_balgk",
    "doubling_expr_powerbag", "domain_expr_for_level",
    "HierarchyConstruction", "BALG3", "BALGK", "POWERBAG",
    "nesting_budget", "verify_nesting",
]

#: The marker atom of the index bags (the paper's ``a``).
MARKER = "a"


def normalize_expr(operand: Expr) -> Expr:
    """``N(B) = pi_1([[[a]]] x B)``: replace every element by the
    marker tuple, keeping the cardinality.

    As with ``count`` (Section 3), elements that are not tuples — the
    bags a powerset emits — are first wrapped into 1-tuples with
    ``MAP tau`` so the product is well-typed.
    """
    from repro.core.expr import Lam, Map, Tupling, Var as _Var
    wrapped = Map(Lam("·w", Tupling(_Var("·w"))), operand)
    return project_expr(
        Cartesian(Const(Bag.of(Tup(MARKER))), wrapped), 1)


def doubling_expr_balg3(operand: Expr) -> Expr:
    """Theorem 6.1's ``E(B) = N(P(P(N(B))))``: from ``n`` markers to
    ``2^(n+1)`` (two consecutive powersets buy one exponential)."""
    return normalize_expr(Powerset(Powerset(normalize_expr(operand))))


def doubling_expr_balgk(operand: Expr, k: int) -> Expr:
    """Proposition 6.3's ``E(B) = N(P^{k-1}(N(B)))`` for BALG^k."""
    if k < 3:
        raise BagTypeError("the BALG^k construction needs k >= 3")
    core = normalize_expr(operand)
    for _ in range(k - 1):
        core = Powerset(core)
    return normalize_expr(core)


def doubling_expr_powerbag(operand: Expr) -> Expr:
    """Proposition 6.4's ``E(B) = N(Pb(B))``: the powerbag doubles in
    a single application (2^n subbags with duplicates)."""
    return normalize_expr(Powerbag(operand))


@dataclass(frozen=True)
class HierarchyConstruction:
    """One rung-building recipe with its paper-accounted costs."""

    name: str
    #: builds E from an operand expression
    doubling: Callable[[Expr], Expr]
    #: powersets (or powerbags) spent per E application
    per_level: int
    #: paper statement the accounting comes from
    statement: str


BALG3 = HierarchyConstruction(
    name="BALG^3 (Theorem 6.2)",
    doubling=doubling_expr_balg3,
    per_level=2,
    statement="hyper(i)-time needs 2i + 2 nested powersets",
)

BALGK: Callable[[int], HierarchyConstruction] = lambda k: \
    HierarchyConstruction(
        name=f"BALG^{k} (Proposition 6.3)",
        doubling=lambda operand: doubling_expr_balgk(operand, k),
        per_level=k - 1,
        statement=f"hyper((k-2)i)-time needs (k-1)i + 2 nested "
                  "powersets",
    )

POWERBAG = HierarchyConstruction(
    name="BALG + Pb (Proposition 6.4)",
    doubling=doubling_expr_powerbag,
    per_level=1,
    statement="hyper(i)-time needs i + 2 nested powerbags",
)


def domain_expr_for_level(construction: HierarchyConstruction,
                          level: int,
                          input_name: str = "B") -> Expr:
    """``D(B) = P(E^level(N(B)))`` for the given construction; its
    power nesting is ``per_level * level + 1`` and the machine guess
    would add one more."""
    if level < 0:
        raise BagTypeError("level must be >= 0")
    core = normalize_expr(Var(input_name))
    for _ in range(level):
        core = construction.doubling(core)
    return Powerset(core)


def nesting_budget(construction: HierarchyConstruction,
                   level: int) -> int:
    """The paper's accounting: nested power operators used by the full
    machine simulation at this level (domain + one guessing P)."""
    return construction.per_level * level + 2


def verify_nesting(construction: HierarchyConstruction,
                   levels: List[int]) -> List[tuple]:
    """Measure the syntactic power nesting of the generated
    constructions against the accounting; returns rows
    (level, measured, predicted)."""
    rows = []
    for level in levels:
        domain = domain_expr_for_level(construction, level)
        guess = Powerset(domain)
        measured = power_nesting(guess)
        predicted = nesting_budget(construction, level)
        rows.append((level, measured, predicted))
    return rows
