"""Complexity instrumentation: the quantitative side of the paper.

* :mod:`repro.complexity.polynomials` — the symbolic counting lemma of
  Propositions 4.1/4.5 (inexpressibility of ``eps`` and ``bag-even`` in
  BALG^1);
* :mod:`repro.complexity.growth` — the duplicate-explosion closed forms
  of Proposition 3.2 and Theorem 5.5;
* :mod:`repro.complexity.probability` — Monte-Carlo asymptotic
  probabilities (Example 4.2, failure of the 0-1 law);
* :mod:`repro.complexity.profile` — space-bound measurements for
  Theorems 4.4 (LOGSPACE) and 5.1 (PSPACE).
"""

from repro.complexity.hierarchy import (
    BALG3, BALGK, POWERBAG, HierarchyConstruction,
    domain_expr_for_level, nesting_budget, verify_nesting,
)
from repro.complexity.growth import (
    GrowthStep, delta2_p2_occurrences, delta_p_occurrences,
    delta_pb_occurrences, max_multiplicity, measure_delta2_p2,
    measure_delta_p, measure_delta_pb, uniform_bag,
)
from repro.complexity.polynomials import (
    CountingAnalysis, Polynomial, analyze, refute_bag_even,
    refute_dedup, single_constant_input,
)
from repro.complexity.probability import (
    ProbabilityEstimate, estimate_probability, probability_series,
    random_graph, random_unary_relation,
)
from repro.complexity.profile import (
    ProfileRow, fit_exponent_of_two, fit_power_law, profile_query,
    profile_sweep,
)

__all__ = [
    "BALG3", "BALGK", "POWERBAG", "HierarchyConstruction",
    "domain_expr_for_level", "nesting_budget", "verify_nesting",
    "GrowthStep", "delta2_p2_occurrences", "delta_p_occurrences",
    "delta_pb_occurrences", "max_multiplicity", "measure_delta2_p2",
    "measure_delta_p", "measure_delta_pb", "uniform_bag",
    "CountingAnalysis", "Polynomial", "analyze", "refute_bag_even",
    "refute_dedup", "single_constant_input",
    "ProbabilityEstimate", "estimate_probability", "probability_series",
    "random_graph", "random_unary_relation",
    "ProfileRow", "fit_exponent_of_two", "fit_power_law",
    "profile_query", "profile_sweep",
]
