"""Evaluation profiling: the space-bound experiments of Theorems 4.4
and 5.1.

Theorem 4.4 (BALG^1 in LOGSPACE) rests on the multiplicities of all
intermediate bags staying *polynomial* in the input size, so their
counters fit in O(log n) bits.  Theorem 5.1 (BALG^2 in PSPACE) rests on
multiplicities staying *single-exponential*, so the counters fit in
polynomially many bits.  This module measures exactly those quantities
over input sweeps and fits the growth law, turning both theorems into
falsifiable experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from repro.core.bag import Bag
from repro.core.eval import EvalStats, Evaluator
from repro.core.expr import Expr

__all__ = [
    "ProfileRow", "profile_query", "profile_sweep", "fit_power_law",
    "fit_exponent_of_two",
]


@dataclass
class ProfileRow:
    """One point of an input-size sweep."""

    input_size: int
    peak_multiplicity: int
    peak_encoding_size: int
    peak_distinct: int
    counter_bits: int  # bits needed for the largest multiplicity

    @classmethod
    def from_stats(cls, input_size: int,
                   stats: EvalStats) -> "ProfileRow":
        multiplicity = max(stats.peak_multiplicity, 1)
        return cls(
            input_size=input_size,
            peak_multiplicity=stats.peak_multiplicity,
            peak_encoding_size=stats.peak_encoding_size,
            peak_distinct=stats.peak_distinct,
            counter_bits=multiplicity.bit_length(),
        )


def profile_query(expr: Expr, database: Mapping[str, Bag],
                  input_size: int,
                  powerset_budget: Optional[int] = None) -> ProfileRow:
    """Evaluate once and report the space-relevant peaks."""
    evaluator = Evaluator(powerset_budget=powerset_budget)
    evaluator.run(expr, database)
    return ProfileRow.from_stats(input_size, evaluator.stats)


def profile_sweep(
        make_query: Callable[[int], Expr],
        make_database: Callable[[int], Mapping[str, Bag]],
        sizes: Sequence[int],
        powerset_budget: Optional[int] = None) -> List[ProfileRow]:
    """Profile a query family over an input-size sweep.

    ``make_query`` may ignore its argument (a fixed query) or build a
    size-dependent one; ``make_database`` builds the instance of size
    ``n``.
    """
    rows = []
    for n in sizes:
        database = make_database(n)
        input_size = sum(_bag_size(bag) for bag in database.values())
        evaluator = Evaluator(powerset_budget=powerset_budget)
        evaluator.run(make_query(n), database)
        rows.append(ProfileRow.from_stats(input_size, evaluator.stats))
    return rows


def _bag_size(bag: Bag) -> int:
    from repro.core.database import encoding_size
    return encoding_size(bag)


def fit_power_law(rows: Sequence[ProfileRow]) -> float:
    """Least-squares slope of log(peak multiplicity) vs log(input size).

    A BALG^1 query family must produce a finite slope (the polynomial
    degree of the multiplicity growth — Theorem 4.4's invariant).
    """
    points = [(math.log(row.input_size), math.log(row.peak_multiplicity))
              for row in rows
              if row.input_size > 1 and row.peak_multiplicity > 0]
    return _slope(points)


def fit_exponent_of_two(rows: Sequence[ProfileRow]) -> float:
    """Least-squares slope of log2(peak multiplicity) vs input size.

    For the P-heavy BALG^2 queries of Theorem 5.1 the multiplicities
    grow like 2^{poly(n)}; on a linear family the slope is the
    constant of the exponent.
    """
    points = [(float(row.input_size),
               math.log2(max(row.peak_multiplicity, 1)))
              for row in rows]
    return _slope(points)


def _slope(points: Sequence[tuple]) -> float:
    if len(points) < 2:
        return 0.0
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return sxy / sxx
