"""Duplicate-growth machinery for Proposition 3.2 and Theorem 6.2.

Proposition 3.2 quantifies the explosion of duplicates created by
alternating powerset and bag-destroy:

* for a bag with ``k`` distinct constants, ``m`` occurrences each,
  ``delta(P(B))`` holds ``m * (m+1)^k / 2`` occurrences of each
  constant — exponential in ``k``, but *polynomial in the previous
  multiplicity* from the second application on;
* ``delta(delta(P(P(B))))`` holds ``2^((m+1)^k - 2) * (m+1)^k * m``
  occurrences — an extra exponential at *every* application.

This asymmetry (one powerset per destroy: single exponential total; two
powersets back-to-back: a fresh exponential per round) drives the
PSPACE bound of Theorem 5.1 and the power-nesting hierarchy of
Theorem 6.2.  The functions here compute the closed forms and measure
the interpreter against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bag import Bag
from repro.core.ops import bag_destroy, powerbag, powerset

__all__ = [
    "uniform_bag", "delta_p_occurrences", "delta2_p2_occurrences",
    "delta_pb_occurrences", "GrowthStep", "measure_delta_p",
    "measure_delta2_p2", "measure_delta_pb", "max_multiplicity",
]


def uniform_bag(k: int, m: int) -> Bag:
    """The Prop 3.2 input: ``k`` distinct constants with ``m``
    occurrences of each (constants ``c0 .. c(k-1)``)."""
    return Bag.from_counts({f"c{i}": m for i in range(k)})


def max_multiplicity(bag: Bag) -> int:
    """Largest multiplicity of any element (0 on the empty bag)."""
    if bag.is_empty():
        return 0
    return max(count for _, count in bag.items())


# ----------------------------------------------------------------------
# Closed forms (the claim inside the proof of Proposition 3.2)
# ----------------------------------------------------------------------

def delta_p_occurrences(m: int, k: int) -> int:
    """Occurrences of each constant in ``delta(P(B))`` for the uniform
    bag: ``m * (m+1)^k / 2``.

    Derivation: ``P(B)`` holds ``(m+1)^k`` distinct subbags; summing the
    ``c_i``-count over all subbags gives ``(m+1)^(k-1) * (0+1+..+m)``
    ``= (m+1)^(k-1) * m(m+1)/2 = m (m+1)^k / 2`` — "each copy
    participates in half of the bags" in the paper's phrasing.
    """
    if k < 1 or m < 0:
        raise ValueError("need k >= 1 distinct constants and m >= 0")
    return m * (m + 1) ** k // 2


def delta2_p2_occurrences(m: int, k: int) -> int:
    """Occurrences of each constant in ``delta(delta(P(P(B))))``:
    ``2^((m+1)^k - 2) * (m+1)^k * m``.

    ``P(P(B))`` holds ``2^((m+1)^k)`` sub-bags of the (duplicate-free)
    ``P(B)``; each inner subbag participates in half of them, and then
    each constant occurrence in half again.
    """
    if k < 1 or m < 0:
        raise ValueError("need k >= 1 distinct constants and m >= 0")
    inner = (m + 1) ** k
    return 2 ** (inner - 2) * inner * m


def delta_pb_occurrences(m: int, k: int) -> int:
    """Occurrences of each constant in ``delta(Pb(B))``: with the
    powerbag every one of the ``2^(km)`` (tagged) subbags is kept, and
    each of the ``km`` occurrences participates in half of them, so
    each *constant* collects ``m * 2^(km - 1)`` occurrences —
    exponential in the input size at *every* application, which is the
    Theorem 5.5 blow-up."""
    if k < 1 or m < 0:
        raise ValueError("need k >= 1 distinct constants and m >= 0")
    total = k * m
    if total == 0:
        return 0
    return m * 2 ** (total - 1)


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------

@dataclass
class GrowthStep:
    """One application of an operator pipeline: the measured peak
    multiplicity and the bag size after the step."""

    iteration: int
    max_multiplicity: int
    cardinality: int
    distinct: int


def measure_delta_p(bag: Bag, iterations: int,
                    budget: Optional[int] = None) -> List[GrowthStep]:
    """Apply ``delta . P`` repeatedly, recording multiplicities."""
    steps = []
    current = bag
    for iteration in range(1, iterations + 1):
        current = bag_destroy(powerset(current, budget=budget))
        steps.append(GrowthStep(iteration, max_multiplicity(current),
                                current.cardinality,
                                current.distinct_count))
    return steps


def measure_delta2_p2(bag: Bag, iterations: int,
                      budget: Optional[int] = None) -> List[GrowthStep]:
    """Apply ``delta . delta . P . P`` repeatedly (the hyperexponential
    pipeline of Prop 3.2)."""
    steps = []
    current = bag
    for iteration in range(1, iterations + 1):
        current = bag_destroy(bag_destroy(
            powerset(powerset(current, budget=budget), budget=budget)))
        steps.append(GrowthStep(iteration, max_multiplicity(current),
                                current.cardinality,
                                current.distinct_count))
    return steps


def measure_delta_pb(bag: Bag, iterations: int,
                     budget: Optional[int] = None) -> List[GrowthStep]:
    """Apply ``delta . Pb`` repeatedly (the Theorem 5.5 pipeline)."""
    steps = []
    current = bag
    for iteration in range(1, iterations + 1):
        current = bag_destroy(powerbag(current, budget=budget))
        steps.append(GrowthStep(iteration, max_multiplicity(current),
                                current.cardinality,
                                current.distinct_count))
    return steps
