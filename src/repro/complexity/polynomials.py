"""The polynomial counting lemma of Propositions 4.1 and 4.5, symbolic.

The inexpressibility proofs of Section 4 rest on one claim: for every
``BALG^1`` expression ``e`` over a single bag variable, and for every
tuple ``t``, there are a number ``N_t`` and a polynomial ``P_t`` such
that on the input ``B_n`` (``n`` copies of the 1-tuple ``[a]``), the
multiplicity of ``t`` in ``e(B_n)`` equals ``P_t(n)`` for all
``n > N_t`` — and ``P_t`` has zero constant term whenever ``a`` occurs
in ``t``.

This module *implements the proof* as a structural recursion over the
AST: :func:`analyze` computes, for a given expression, the exact
polynomials and a sound threshold.  Consequences become decidable
checks:

* ``e`` cannot be duplicate elimination (Prop 4.1): that would force
  ``P_[a]`` to be the constant 1, contradicting the zero constant term;
* ``e`` cannot be the ``bag-even`` query (Prop 4.5): a polynomial takes
  the value 0 infinitely often only if it is identically 0, and equals
  ``n`` infinitely often only if it is identically ``n``.

The analysis is validated against the evaluator by property tests:
``P_t(n)`` must equal the actual multiplicity for ``n > N_t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Any, Dict, List, Optional, Set, Tuple as PyTuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Select, Subtraction, Tupling, Var,
)

__all__ = [
    "Polynomial", "CountingAnalysis", "analyze", "single_constant_input",
    "refute_dedup", "refute_bag_even", "INPUT_ATOM",
]


class Polynomial:
    """A univariate polynomial with integer coefficients.

    Coefficients may be negative internally (subtraction of counting
    polynomials), but a *counting* polynomial reported by the analysis
    is always eventually non-negative.
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: Optional[Dict[int, int]] = None):
        clean = {}
        for degree, coeff in (coeffs or {}).items():
            if coeff != 0:
                if degree < 0:
                    raise ValueError("degrees must be non-negative")
                clean[degree] = coeff
        self._coeffs = clean

    # -- constructors ---------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        return cls({0: value})

    @classmethod
    def x(cls) -> "Polynomial":
        return cls({1: 1})

    # -- inspection -----------------------------------------------------

    def coefficients(self) -> Dict[int, int]:
        return dict(self._coeffs)

    @property
    def degree(self) -> int:
        """Degree; -1 for the zero polynomial."""
        return max(self._coeffs, default=-1)

    @property
    def leading_coefficient(self) -> int:
        return self._coeffs.get(self.degree, 0)

    @property
    def constant_term(self) -> int:
        """The ``k0`` of the claim."""
        return self._coeffs.get(0, 0)

    def is_zero(self) -> bool:
        return not self._coeffs

    def __call__(self, n: int) -> int:
        return sum(coeff * n ** degree
                   for degree, coeff in self._coeffs.items())

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        coeffs = dict(self._coeffs)
        for degree, coeff in other._coeffs.items():
            coeffs[degree] = coeffs.get(degree, 0) + coeff
        return Polynomial(coeffs)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        coeffs = dict(self._coeffs)
        for degree, coeff in other._coeffs.items():
            coeffs[degree] = coeffs.get(degree, 0) - coeff
        return Polynomial(coeffs)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        coeffs: Dict[int, int] = {}
        for d1, c1 in self._coeffs.items():
            for d2, c2 in other._coeffs.items():
                coeffs[d1 + d2] = coeffs.get(d1 + d2, 0) + c1 * c2
        return Polynomial(coeffs)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Polynomial)
                and self._coeffs == other._coeffs)

    def __hash__(self) -> int:
        return hash(frozenset(self._coeffs.items()))

    # -- eventual behaviour ----------------------------------------------

    def eventually_positive(self) -> bool:
        """Does ``P(n) > 0`` hold for all large ``n``?"""
        return self.leading_coefficient > 0

    def sign_stability_bound(self) -> int:
        """An ``N`` beyond which the sign of ``P(n)`` never changes.

        Uses the Cauchy root bound: every real root has absolute value
        below ``1 + max|c_i| / |c_lead|``.
        """
        if self.is_zero():
            return 0
        lead = abs(self.leading_coefficient)
        biggest = max(abs(coeff) for coeff in self._coeffs.values())
        return 1 + (biggest + lead - 1) // lead  # ceil(1 + biggest/lead)

    def __repr__(self) -> str:
        if self.is_zero():
            return "0"
        parts = []
        for degree in sorted(self._coeffs, reverse=True):
            coeff = self._coeffs[degree]
            if degree == 0:
                parts.append(f"{coeff}")
            elif degree == 1:
                parts.append(f"{coeff}n" if coeff != 1 else "n")
            else:
                parts.append(f"{coeff}n^{degree}"
                             if coeff != 1 else f"n^{degree}")
        return " + ".join(parts)


ZERO = Polynomial()
ONE = Polynomial.constant(1)

#: The distinguished constant of the ``B_n`` input family.
INPUT_ATOM = "a"


def single_constant_input(n: int, atom: Any = INPUT_ATOM) -> Bag:
    """The input family ``B_n``: ``n`` occurrences of the 1-tuple
    ``[atom]`` and nothing else (Prop 4.1)."""
    return Bag.from_counts({Tup(atom): n}) if n else Bag()


@dataclass
class CountingAnalysis:
    """Result of the symbolic analysis of one expression.

    ``polynomials`` maps each potentially-occurring tuple to its
    counting polynomial; absent tuples count zero.  ``threshold`` is a
    sound ``N``: for every ``n > threshold`` and every tuple ``t``,
    ``multiplicity of t in e(B_n) = polynomials.get(t, 0)(n)``.
    """

    arity: int
    polynomials: Dict[Tup, Polynomial] = field(default_factory=dict)
    threshold: int = 0

    def polynomial_for(self, candidate: Tup) -> Polynomial:
        return self.polynomials.get(candidate, ZERO)

    def support(self) -> Set[Tup]:
        return {candidate for candidate, poly in self.polynomials.items()
                if not poly.is_zero()}

    def verify_claim_invariant(self, atom: Any = INPUT_ATOM) -> bool:
        """Check the claim's side condition: ``k0 = 0`` whenever the
        input constant occurs in the tuple."""
        for candidate, poly in self.polynomials.items():
            if atom in candidate.items() and poly.constant_term != 0:
                return False
        return True


def analyze(expr: Expr, input_name: str = "B",
            atom: Any = INPUT_ATOM) -> CountingAnalysis:
    """Run the counting-lemma recursion on a BALG^1 expression.

    Supported nodes follow the proof of Prop 4.1 (with the Prop 4.5
    extension for ``eps`` and the [Alb91] reductions for maximal union
    and intersection): variables, bag constants, additive union,
    subtraction, maximal union, intersection, Cartesian product, MAP
    (projections / constant attributes), selection (on tuples), and
    duplicate elimination.
    """
    analysis = _analyze(expr, input_name, atom)
    return analysis


def _analyze(expr: Expr, input_name: str, atom: Any) -> CountingAnalysis:
    if isinstance(expr, Var):
        if expr.name != input_name:
            raise BagTypeError(
                f"analysis is over the single input {input_name!r}; "
                f"found variable {expr.name!r}")
        return CountingAnalysis(
            arity=1, polynomials={Tup(atom): Polynomial.x()}, threshold=0)

    if isinstance(expr, Const):
        return _analyze_const(expr, atom)

    if isinstance(expr, AdditiveUnion):
        left = _analyze(expr.left, input_name, atom)
        right = _analyze(expr.right, input_name, atom)
        _require_same_arity(left, right, "(+)")
        polys = dict(left.polynomials)
        for candidate, poly in right.polynomials.items():
            polys[candidate] = polys.get(candidate, ZERO) + poly
        return CountingAnalysis(left.arity, polys,
                                max(left.threshold, right.threshold))

    if isinstance(expr, Subtraction):
        return _analyze_subtraction(expr, input_name, atom)

    if isinstance(expr, MaxUnion):
        return _analyze_extremum(expr, input_name, atom, want_max=True)

    if isinstance(expr, Intersection):
        return _analyze_extremum(expr, input_name, atom, want_max=False)

    if isinstance(expr, Cartesian):
        left = _analyze(expr.left, input_name, atom)
        right = _analyze(expr.right, input_name, atom)
        polys: Dict[Tup, Polynomial] = {}
        for t1, p1 in left.polynomials.items():
            for t2, p2 in right.polynomials.items():
                polys[t1.concat(t2)] = (
                    polys.get(t1.concat(t2), ZERO) + p1 * p2)
        return CountingAnalysis(left.arity + right.arity, polys,
                                max(left.threshold, right.threshold))

    if isinstance(expr, Map):
        inner = _analyze(expr.operand, input_name, atom)
        polys: Dict[Tup, Polynomial] = {}
        # The output arity is syntactic (the lambda builds a tuple);
        # inferring it from the images would fail on empty supports
        # such as MAP over B - B.
        if isinstance(expr.lam.body, Tupling):
            arity = len(expr.lam.body.parts)
        elif inner.polynomials:
            sample = next(iter(inner.polynomials))
            arity = _apply_tuple_lambda(expr.lam, sample).arity
        else:
            raise BagTypeError(
                "cannot determine the output arity of a MAP whose "
                "lambda is not a tupling and whose operand support is "
                "empty")
        for source, poly in inner.polynomials.items():
            image = _apply_tuple_lambda(expr.lam, source)
            polys[image] = polys.get(image, ZERO) + poly
        return CountingAnalysis(arity, polys, inner.threshold)

    if isinstance(expr, Select):
        inner = _analyze(expr.operand, input_name, atom)
        polys = {}
        for source, poly in inner.polynomials.items():
            lhs = _apply_object_lambda(expr.left, source)
            rhs = _apply_object_lambda(expr.right, source)
            if _selection_holds(expr.op, lhs, rhs):
                polys[source] = poly
        return CountingAnalysis(inner.arity, polys, inner.threshold)

    if isinstance(expr, Dedup):
        inner = _analyze(expr.operand, input_name, atom)
        polys = {}
        threshold = inner.threshold
        for source, poly in inner.polynomials.items():
            threshold = max(threshold, poly.sign_stability_bound())
            if poly.eventually_positive():
                polys[source] = ONE
        return CountingAnalysis(inner.arity, polys, threshold)

    raise BagTypeError(
        f"the counting lemma does not cover operator "
        f"{type(expr).__name__} (it is not a BALG^1 operator)")


def _analyze_const(expr: Const, atom: Any) -> CountingAnalysis:
    value = expr.value
    if not isinstance(value, Bag):
        raise BagTypeError(
            "constants in an analysed expression must be bags of flat "
            f"tuples, got {value!r}")
    polys: Dict[Tup, Polynomial] = {}
    arity: Optional[int] = None
    for element, count in value.items():
        if not isinstance(element, Tup):
            raise BagTypeError(
                "bag constants must contain flat tuples for the analysis")
        if arity is None:
            arity = element.arity
        polys[element] = Polynomial.constant(count)
    if arity is None:
        raise BagTypeError(
            "empty-bag constants carry no arity; use a typed constant")
    return CountingAnalysis(arity, polys, 0)


def _analyze_subtraction(expr: Subtraction, input_name: str,
                         atom: Any) -> CountingAnalysis:
    left = _analyze(expr.left, input_name, atom)
    right = _analyze(expr.right, input_name, atom)
    _require_same_arity(left, right, "-")
    polys: Dict[Tup, Polynomial] = {}
    threshold = max(left.threshold, right.threshold)
    for candidate in set(left.polynomials) | set(right.polynomials):
        difference = (left.polynomial_for(candidate)
                      - right.polynomial_for(candidate))
        threshold = max(threshold, difference.sign_stability_bound())
        if difference.eventually_positive():
            polys[candidate] = difference
    return CountingAnalysis(left.arity, polys, threshold)


def _analyze_extremum(expr: Expr, input_name: str, atom: Any,
                      want_max: bool) -> CountingAnalysis:
    """Maximal union / intersection via the eventual comparison of the
    two polynomials (the [Alb91] reduction to (+) and -)."""
    left = _analyze(expr.left, input_name, atom)
    right = _analyze(expr.right, input_name, atom)
    _require_same_arity(left, right, "u/n")
    polys: Dict[Tup, Polynomial] = {}
    threshold = max(left.threshold, right.threshold)
    for candidate in set(left.polynomials) | set(right.polynomials):
        lpoly = left.polynomial_for(candidate)
        rpoly = right.polynomial_for(candidate)
        difference = lpoly - rpoly
        threshold = max(threshold, difference.sign_stability_bound())
        left_wins = difference.eventually_positive() or difference.is_zero()
        chosen = (lpoly if left_wins == want_max else rpoly)
        if not chosen.is_zero():
            polys[candidate] = chosen
    return CountingAnalysis(left.arity, polys, threshold)


def _require_same_arity(left: CountingAnalysis, right: CountingAnalysis,
                        op: str) -> None:
    if left.arity != right.arity:
        raise BagTypeError(
            f"{op}: operand arities differ ({left.arity} vs "
            f"{right.arity})")


# ----------------------------------------------------------------------
# Symbolic application of the restricted lambdas of BALG^1
# ----------------------------------------------------------------------

def _apply_object_lambda(lam: Lam, argument: Tup) -> Any:
    """Evaluate a tuple-level lambda body on a concrete tuple.

    BALG^1 lambdas can only project attributes, build tuples, and
    mention constants (the proof of Prop 4.2 relies on exactly this).
    """
    return _eval_object(lam.body, lam.param, argument)


def _apply_tuple_lambda(lam: Lam, argument: Tup) -> Tup:
    image = _apply_object_lambda(lam, argument)
    if not isinstance(image, Tup):
        raise BagTypeError(
            "MAP lambdas in the analysis must produce tuples, got "
            f"{image!r}")
    return image


def _eval_object(body: Expr, param: str, argument: Tup) -> Any:
    if isinstance(body, Var):
        if body.name != param:
            raise BagTypeError(
                f"lambda body mentions foreign variable {body.name!r}")
        return argument
    if isinstance(body, Const):
        return body.value
    if isinstance(body, Attribute):
        operand = _eval_object(body.operand, param, argument)
        if not isinstance(operand, Tup):
            raise BagTypeError("attribute projection of a non-tuple")
        return operand.attribute(body.index)
    if isinstance(body, Tupling):
        return Tup(*(_eval_object(part, param, argument)
                     for part in body.parts))
    raise BagTypeError(
        f"lambda bodies in the analysis are restricted to projections, "
        f"tupling and constants; found {type(body).__name__}")


def _selection_holds(op: str, lhs: Any, rhs: Any) -> bool:
    from repro.core.expr import _compare
    return _compare(op, lhs, rhs)


# ----------------------------------------------------------------------
# Consequences: the inexpressibility verdicts
# ----------------------------------------------------------------------

def refute_dedup(expr: Expr, input_name: str = "B",
                 atom: Any = INPUT_ATOM) -> Optional[int]:
    """Machine-checked Prop 4.1 for one candidate expression.

    Duplicate elimination requires multiplicity exactly 1 of ``[a]`` in
    the output for every ``n >= 1``.  A counting polynomial equals 1 on
    infinitely many points only if it *is* the constant 1 — which the
    zero-constant-term invariant of the claim rules out for tuples
    containing the input constant.  Returns a concrete witness ``n``
    (beyond the threshold) where ``e(B_n)`` provably disagrees with
    ``eps(B_n)``, or ``None`` when the polynomial is the constant 1 on
    the target tuple (then the analysis alone cannot refute — an
    expression *using* eps itself reaches this case).
    """
    analysis = analyze(expr, input_name, atom)
    poly = analysis.polynomial_for(Tup(atom))
    if poly == ONE:
        return None
    # Find n > threshold with P(n) != 1: at most deg+1 points can give
    # P(n) = 1, so scanning deg+2 points suffices.
    n = analysis.threshold + 1
    while poly(n) == 1:
        n += 1
    return n


def refute_bag_even(expr: Expr, input_name: str = "B",
                    atom: Any = INPUT_ATOM) -> int:
    """Machine-checked Prop 4.5 for one candidate expression.

    ``bag-even`` needs multiplicity of ``[a]`` equal to ``n`` for even
    ``n`` and 0 for odd ``n``.  No polynomial does both on large
    inputs: the identity is nonzero on large odd ``n``, and anything
    else misses ``n`` on some large even ``n``.  Returns a concrete
    witness ``n`` where ``e(B_n)`` disagrees with ``bag-even(B_n)``.
    """
    analysis = analyze(expr, input_name, atom)
    poly = analysis.polynomial_for(Tup(atom))
    n = analysis.threshold + 1
    while True:
        expected = n if n % 2 == 0 else 0
        if poly(n) != expected:
            return n
        n += 1
