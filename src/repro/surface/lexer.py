"""Tokenizer for the surface syntax of algebra expressions.

The surface language is an ASCII rendering of the paper's notation::

    P(B)                      powerset
    Pb(B)                     powerbag
    delta(B)                  bag-destroy
    eps(B)                    duplicate elimination
    beta(e)                   bagging
    tau(e1, e2)               tupling
    alpha2(e)                 attribute projection
    pi[1,4](B)                projection map
    map[x: tau(alpha2(x))](B) restructuring
    sigma[x: alpha1(x) = 'a'](B)   selection
    A (+) B | A - B | A u B | A n B | A x B    the binary operators
    {{ 'a', 'a', ['b','c'] }} bag literal
    ['a', 'b']                tuple literal
    'a', 42                   atom literals
    ifp[X: body; seed]        inflationary fixpoint (extension)

Identifiers not matching a keyword are variables (database bag names or
lambda parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved operator keywords of the surface syntax.
KEYWORDS = frozenset({
    "P", "Pb", "delta", "eps", "beta", "tau", "alpha", "pi", "map",
    "sigma", "ifp", "nest", "unnest", "u", "n", "x",
})

_PUNCTUATION = {
    "(+)": "ADDUNION",
    "!=": "NE",
    "<=": "LE",
    "{{": "LBAG",
    "}}": "RBAG",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ",": "COMMA",
    ":": "COLON",
    ";": "SEMI",
    "-": "MINUS",
    "=": "EQ",
    "<": "LT",
}

#: Longest-match ordering for punctuation.
_PUNCT_ORDER = sorted(_PUNCTUATION, key=len, reverse=True)


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind, its text, and its source offset."""

    kind: str
    text: str
    position: int


def tokenize(source: str) -> List[Token]:
    """Tokenize a surface-syntax expression.

    Raises :class:`ParseError` on unrecognised characters or unclosed
    string literals.
    """
    tokens: List[Token] = []
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char in " \t\r\n":
            position += 1
            continue
        matched = _match_punctuation(source, position)
        if matched is not None:
            kind, text = matched
            tokens.append(Token(kind, text, position))
            position += len(text)
            continue
        if char == "'":
            text, consumed = _scan_string(source, position)
            tokens.append(Token("STRING", text, position))
            position += consumed
            continue
        if char.isdigit():
            start = position
            while position < length and source[position].isdigit():
                position += 1
            tokens.append(Token("INT", source[start:position], start))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
            word = source[start:position]
            # "alpha3" style: keyword fused with an index
            if word.startswith("alpha") and word[5:].isdigit():
                tokens.append(Token("ALPHA", word, start))
            elif word in KEYWORDS:
                tokens.append(Token("KEYWORD", word, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        raise ParseError(f"unexpected character {char!r}", position,
                         source)
    tokens.append(Token("EOF", "", length))
    return tokens


def _match_punctuation(source: str, position: int):
    for text in _PUNCT_ORDER:
        if source.startswith(text, position):
            return _PUNCTUATION[text], text
    return None


def _scan_string(source: str, position: int):
    """Scan a single-quoted atom literal; returns (content, consumed)."""
    end = position + 1
    while end < len(source) and source[end] != "'":
        end += 1
    if end >= len(source):
        raise ParseError("unclosed string literal", position, source)
    return source[position + 1:end], end - position + 1
