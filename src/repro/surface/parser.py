"""Recursive-descent parser for the surface syntax.

Grammar (binary operators listed loosest-first; all left-associative)::

    expr      := sum
    sum       := extreme (('(+)' | '-') extreme)*
    extreme   := product (('u' | 'n') product)*
    product   := unary ('x' unary)*
    unary     := 'P' '(' expr ')' | 'Pb' '(' expr ')'
               | 'delta' '(' expr ')' | 'eps' '(' expr ')'
               | 'beta' '(' expr ')' | 'tau' '(' args ')'
               | ALPHA '(' expr ')'                 -- alphaN
               | 'pi' '[' INT (',' INT)* ']' '(' expr ')'
               | 'map' '[' IDENT ':' expr ']' '(' expr ')'
               | 'sigma' '[' IDENT ':' expr cmp expr ']' '(' expr ')'
               | 'ifp' '[' IDENT ':' expr ';' expr ']'
               | literal | IDENT | '(' expr ')'
    cmp       := '=' | '!=' | '<=' | '<'
    literal   := '{{' [expr (',' expr)*] '}}'       -- bag (of literals)
               | '[' [expr (',' expr)*] ']'         -- tuple literal
               | STRING | INT

Bag and tuple literals must be ground (no variables inside) — they
become :class:`~repro.core.expr.Const` nodes.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.bag import Bag, Tup
from repro.core.derived import project_expr
from repro.core.errors import ParseError
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)
from repro.machines.ifp import Ifp
from repro.surface.lexer import Token, tokenize

__all__ = ["parse"]

_CMP_TOKENS = {"EQ": "eq", "NE": "ne", "LE": "le", "LT": "lt"}


def parse(source: str) -> Expr:
    """Parse a surface-syntax expression into an AST.

    >>> parse("pi[1](sigma[t: alpha1(t) = 'a'](B))")  # doctest: +SKIP
    """
    parser = _Parser(tokenize(source), source)
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr


class _Parser:
    def __init__(self, tokens: List[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {actual.text or 'EOF'!r}",
                actual.position, self._source)
        return token

    # -- grammar ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_sum()

    def parse_sum(self) -> Expr:
        left = self.parse_extreme()
        while True:
            if self.accept("ADDUNION"):
                left = AdditiveUnion(left, self.parse_extreme())
            elif self.accept("MINUS"):
                left = Subtraction(left, self.parse_extreme())
            else:
                return left

    def parse_extreme(self) -> Expr:
        left = self.parse_product()
        while True:
            if self.accept("KEYWORD", "u"):
                left = MaxUnion(left, self.parse_product())
            elif self.accept("KEYWORD", "n"):
                left = Intersection(left, self.parse_product())
            else:
                return left

    def parse_product(self) -> Expr:
        left = self.parse_unary()
        while self.accept("KEYWORD", "x"):
            left = Cartesian(left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "KEYWORD":
            return self._parse_keyword()
        if token.kind == "ALPHA":
            self.advance()
            index = int(token.text[5:])
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            return Attribute(operand, index)
        if token.kind == "IDENT":
            self.advance()
            return Var(token.text)
        if token.kind in ("STRING", "INT", "LBAG", "LBRACKET"):
            return Const(self._parse_literal())
        if self.accept("LPAREN"):
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        raise ParseError(f"unexpected token {token.text!r}",
                         token.position, self._source)

    def _parse_keyword(self) -> Expr:
        token = self.advance()
        word = token.text
        simple = {"P": Powerset, "Pb": Powerbag, "delta": BagDestroy,
                  "eps": Dedup, "beta": Bagging}
        if word in simple:
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            return simple[word](operand)
        if word == "tau":
            self.expect("LPAREN")
            parts = [self.parse_expr()]
            while self.accept("COMMA"):
                parts.append(self.parse_expr())
            self.expect("RPAREN")
            return Tupling(*parts)
        if word in ("nest", "unnest"):
            from repro.core.nest import Nest, Unnest
            self.expect("LBRACKET")
            indices = [int(self.expect("INT").text)]
            while self.accept("COMMA"):
                indices.append(int(self.expect("INT").text))
            self.expect("RBRACKET")
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            if word == "nest":
                return Nest(operand, *indices)
            if len(indices) != 1:
                raise ParseError("unnest takes exactly one index",
                                 token.position, self._source)
            return Unnest(operand, indices[0])
        if word == "pi":
            self.expect("LBRACKET")
            indices = [int(self.expect("INT").text)]
            while self.accept("COMMA"):
                indices.append(int(self.expect("INT").text))
            self.expect("RBRACKET")
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            return project_expr(operand, *indices)
        if word == "map":
            self.expect("LBRACKET")
            param = self.expect("IDENT").text
            self.expect("COLON")
            body = self.parse_expr()
            self.expect("RBRACKET")
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            return Map(Lam(param, body), operand)
        if word == "sigma":
            self.expect("LBRACKET")
            param = self.expect("IDENT").text
            self.expect("COLON")
            left_body = self.parse_expr()
            comparator = self._parse_comparator()
            right_body = self.parse_expr()
            self.expect("RBRACKET")
            self.expect("LPAREN")
            operand = self.parse_expr()
            self.expect("RPAREN")
            return Select(Lam(param, left_body), Lam(param, right_body),
                          operand, op=comparator)
        if word == "ifp":
            self.expect("LBRACKET")
            param = self.expect("IDENT").text
            self.expect("COLON")
            body = self.parse_expr()
            self.expect("SEMI")
            seed = self.parse_expr()
            self.expect("RBRACKET")
            return Ifp(param, body, seed)
        raise ParseError(f"keyword {word!r} cannot start an expression",
                         token.position, self._source)

    def _parse_comparator(self) -> str:
        for kind, name in _CMP_TOKENS.items():
            if self.accept(kind):
                return name
        actual = self.peek()
        raise ParseError("expected a comparator (= != <= <)",
                         actual.position, self._source)

    # -- literals ----------------------------------------------------------

    def _parse_literal(self) -> Any:
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return token.text
        if token.kind == "INT":
            self.advance()
            return int(token.text)
        if self.accept("LBAG"):
            elements = []
            if self.peek().kind != "RBAG":
                elements.append(self._parse_literal())
                while self.accept("COMMA"):
                    elements.append(self._parse_literal())
            self.expect("RBAG")
            return Bag(elements)
        if self.accept("LBRACKET"):
            items = []
            if self.peek().kind != "RBRACKET":
                items.append(self._parse_literal())
                while self.accept("COMMA"):
                    items.append(self._parse_literal())
            self.expect("RBRACKET")
            return Tup(*items)
        raise ParseError(
            f"expected a literal, found {token.text!r}",
            token.position, self._source)
