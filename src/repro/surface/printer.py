"""Pretty-printer: AST back to parseable surface syntax.

``parse(to_text(expr))`` is the identity up to the projection sugar
(``pi[..]`` prints as the MAP it desugars to only when the MAP does not
match the projection shape).
"""

from __future__ import annotations

from typing import Any

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)

__all__ = ["to_text"]

_CMP_TEXT = {"eq": "=", "ne": "!=", "le": "<=", "lt": "<"}


def to_text(expr: Expr) -> str:
    """Render an expression in the parseable surface syntax."""
    return _render(expr)


def _render(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return _render_literal(expr.value)
    if isinstance(expr, AdditiveUnion):
        return f"({_render(expr.left)} (+) {_render(expr.right)})"
    if isinstance(expr, Subtraction):
        return f"({_render(expr.left)} - {_render(expr.right)})"
    if isinstance(expr, MaxUnion):
        return f"({_render(expr.left)} u {_render(expr.right)})"
    if isinstance(expr, Intersection):
        return f"({_render(expr.left)} n {_render(expr.right)})"
    if isinstance(expr, Cartesian):
        return f"({_render(expr.left)} x {_render(expr.right)})"
    if isinstance(expr, Powerset):
        return f"P({_render(expr.operand)})"
    if isinstance(expr, Powerbag):
        return f"Pb({_render(expr.operand)})"
    if isinstance(expr, BagDestroy):
        return f"delta({_render(expr.operand)})"
    if isinstance(expr, Dedup):
        return f"eps({_render(expr.operand)})"
    if isinstance(expr, Bagging):
        return f"beta({_render(expr.item)})"
    if isinstance(expr, Tupling):
        inner = ", ".join(_render(part) for part in expr.parts)
        return f"tau({inner})"
    if isinstance(expr, Attribute):
        return f"alpha{expr.index}({_render(expr.operand)})"
    if isinstance(expr, Map):
        projection = _as_projection(expr)
        if projection is not None:
            indices = ",".join(str(i) for i in projection)
            return f"pi[{indices}]({_render(expr.operand)})"
        param, body = _renamed(expr.lam.param, expr.lam.body)
        return (f"map[{param}: {_render(body)}]"
                f"({_render(expr.operand)})")
    if isinstance(expr, Select):
        comparator = _CMP_TEXT[expr.op]
        left_param, left_body = _renamed(expr.left.param,
                                         expr.left.body)
        right_param, right_body = _renamed(expr.right.param,
                                           expr.right.body)
        if left_param != right_param:
            # normalise both sides to the left parameter name
            from repro.planner.rewrites import substitute
            right_body = substitute(right_body, right_param,
                                    Var(left_param))
        return (f"sigma[{left_param}: {_render(left_body)} "
                f"{comparator} {_render(right_body)}]"
                f"({_render(expr.operand)})")
    from repro.core.nest import Nest, Unnest
    if isinstance(expr, Nest):
        listed = ",".join(str(i) for i in expr.indices)
        return f"nest[{listed}]({_render(expr.operand)})"
    if isinstance(expr, Unnest):
        return f"unnest[{expr.index}]({_render(expr.operand)})"
    # extension nodes (e.g. Ifp)
    from repro.machines.ifp import Ifp
    if isinstance(expr, Ifp):
        param, body = _renamed(expr.param, expr.body)
        return f"ifp[{param}: {_render(body)}; {_render(expr.seed)}]"
    raise BagTypeError(
        f"no surface form for node {type(expr).__name__}")


def _renamed(param: str, body: Expr):
    """The library's internal lambda names start with '·', which the
    lexer does not accept; rename binder *and* occurrences."""
    safe = param.replace("·", "v_")
    if safe == param:
        return param, body
    from repro.planner.rewrites import substitute
    return safe, substitute(body, param, Var(safe))


def _as_projection(expr: Map):
    """Detect ``MAP[lam t. tau(alpha_i1 t, ..., alpha_ik t)]`` and
    return the indices, else None."""
    body = expr.lam.body
    if not isinstance(body, Tupling) or not body.parts:
        return None
    indices = []
    for part in body.parts:
        if (isinstance(part, Attribute)
                and isinstance(part.operand, Var)
                and part.operand.name == expr.lam.param):
            indices.append(part.index)
        else:
            return None
    return indices


def _render_literal(value: Any) -> str:
    if isinstance(value, Bag):
        parts = []
        for element in sorted(value.distinct(), key=canonical_key):
            parts.extend([_render_literal(element)]
                         * value.multiplicity(element))
        return "{{" + ", ".join(parts) + "}}"
    if isinstance(value, Tup):
        inner = ", ".join(_render_literal(item) for item in value.items())
        return f"[{inner}]"
    if isinstance(value, str):
        if "'" in value:
            raise BagTypeError(
                "atom literals containing quotes have no surface form")
        return f"'{value}'"
    if isinstance(value, bool):
        raise BagTypeError("boolean atoms have no surface form")
    if isinstance(value, int):
        return str(value)
    raise BagTypeError(
        f"atom {value!r} has no surface form (use str or int atoms)")
