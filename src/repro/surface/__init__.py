"""Surface syntax: a parseable ASCII notation for algebra expressions."""

from repro.surface.lexer import Token, tokenize
from repro.surface.parser import parse
from repro.surface.printer import to_text

__all__ = ["Token", "tokenize", "parse", "to_text"]
