"""Compatibility shim — cardinality estimation now lives in
:mod:`repro.planner.stats`, the single estimator shared by rewrite
costing, EXPLAIN, and the engine's cost-based lowering
(``tests/test_planner.py`` asserts this module and the engine agree
operator by operator).  New code should import from ``repro.planner``.
"""

from __future__ import annotations

from repro.planner.stats import (
    DEFAULT_SELECTIVITY, BagStats, estimate, stats_of,
)

__all__ = ["BagStats", "stats_of", "estimate", "DEFAULT_SELECTIVITY"]
