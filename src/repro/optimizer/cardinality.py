"""Cardinality estimation for bag-algebra expressions.

A classical optimizer component adapted to bag semantics: given
per-relation statistics (total cardinality *with duplicates* and the
number of distinct elements — the two numbers that diverge exactly when
bags matter), estimate the same two numbers for every operator's
output.  The per-operator rules follow the multiplicity definitions of
Section 3:

=================  ==========================  =======================
operator           cardinality                 distinct
=================  ==========================  =======================
``B (+) B'``       ``c + c'``                  ``<= d + d'``
``B - B'``         ``<= c``                    ``<= d``
``B u B'``         ``<= c + c'``               ``<= d + d'``
``B n B'``         ``<= min(c, c')``           ``<= min(d, d')``
``B x B'``         ``c * c'``                  ``d * d'``
``MAP_f(B)``       ``c`` (exactly)             ``<= d``
``sigma(B)``       ``<= c`` (selectivity)      ``<= d``
``eps(B)``         ``d`` (exactly)             ``d``
``P(B)``           ``<= prod(c_i+1)``          same
``Pb(B)``          ``2^c``                     ``<= 2^c``
``delta(B)``       sum of inner cardinalities  —
=================  ==========================  =======================

Estimates are upper-bound flavoured (selections use a configurable
selectivity); tests check the *exact* rows (product, MAP, eps, Pb) and
that the bounds dominate the measured values on random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.bag import Bag
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, BagDestroy, Cartesian, Const, Dedup, Expr,
    Intersection, Map, MaxUnion, Powerbag, Powerset, Select,
    Subtraction, Var,
)

__all__ = ["BagStats", "stats_of", "estimate"]

#: Default fraction of members a selection is assumed to keep.
DEFAULT_SELECTIVITY = 0.5

#: Powerset/powerbag estimates above this are reported as infinity to
#: keep the arithmetic finite.
_CAP = float(10 ** 18)


@dataclass(frozen=True)
class BagStats:
    """The two numbers that describe a bag for estimation purposes."""

    cardinality: float      # with duplicates
    distinct: float

    def __post_init__(self):
        if self.cardinality < 0 or self.distinct < 0:
            raise BagTypeError("statistics must be non-negative")
        if self.distinct > self.cardinality:
            object.__setattr__(self, "distinct", self.cardinality)

    @property
    def average_multiplicity(self) -> float:
        if self.distinct == 0:
            return 0.0
        return self.cardinality / self.distinct


def stats_of(bag: Bag) -> BagStats:
    """Exact statistics of a concrete bag."""
    return BagStats(cardinality=float(bag.cardinality),
                    distinct=float(bag.distinct_count))


def estimate(expr: Expr, statistics: Mapping[str, BagStats],
             selectivity: float = DEFAULT_SELECTIVITY) -> BagStats:
    """Estimate output statistics of an expression bottom-up.

    ``statistics`` binds the relation variables.  Lambda-bound
    variables never appear at estimation positions (lambdas map
    objects, not bags), so any unbound name is an error.
    """
    if not 0 < selectivity <= 1:
        raise BagTypeError("selectivity must be in (0, 1]")
    return _estimate(expr, dict(statistics), selectivity)


def _estimate(expr: Expr, stats: Dict[str, BagStats],
              selectivity: float) -> BagStats:
    if isinstance(expr, Var):
        if expr.name not in stats:
            raise BagTypeError(
                f"no statistics for relation {expr.name!r}")
        return stats[expr.name]
    if isinstance(expr, Const):
        if isinstance(expr.value, Bag):
            return stats_of(expr.value)
        return BagStats(1.0, 1.0)

    if isinstance(expr, AdditiveUnion):
        left = _estimate(expr.left, stats, selectivity)
        right = _estimate(expr.right, stats, selectivity)
        return BagStats(left.cardinality + right.cardinality,
                        left.distinct + right.distinct)
    if isinstance(expr, MaxUnion):
        left = _estimate(expr.left, stats, selectivity)
        right = _estimate(expr.right, stats, selectivity)
        return BagStats(left.cardinality + right.cardinality,
                        left.distinct + right.distinct)
    if isinstance(expr, Subtraction):
        left = _estimate(expr.left, stats, selectivity)
        return left
    if isinstance(expr, Intersection):
        left = _estimate(expr.left, stats, selectivity)
        right = _estimate(expr.right, stats, selectivity)
        return BagStats(min(left.cardinality, right.cardinality),
                        min(left.distinct, right.distinct))
    if isinstance(expr, Cartesian):
        left = _estimate(expr.left, stats, selectivity)
        right = _estimate(expr.right, stats, selectivity)
        return BagStats(left.cardinality * right.cardinality,
                        left.distinct * right.distinct)
    if isinstance(expr, Map):
        inner = _estimate(expr.operand, stats, selectivity)
        return BagStats(inner.cardinality, inner.distinct)
    if isinstance(expr, Select):
        inner = _estimate(expr.operand, stats, selectivity)
        return BagStats(inner.cardinality * selectivity,
                        inner.distinct * selectivity)
    if isinstance(expr, Dedup):
        inner = _estimate(expr.operand, stats, selectivity)
        return BagStats(inner.distinct, inner.distinct)
    if isinstance(expr, Powerset):
        inner = _estimate(expr.operand, stats, selectivity)
        subbags = _powerset_size(inner)
        return BagStats(subbags, subbags)
    if isinstance(expr, Powerbag):
        inner = _estimate(expr.operand, stats, selectivity)
        total = min(_CAP, 2.0 ** min(inner.cardinality, 60.0)
                    if inner.cardinality <= 60 else _CAP)
        return BagStats(total, min(total, _powerset_size(inner)))
    if isinstance(expr, BagDestroy):
        inner = _estimate(expr.operand, stats, selectivity)
        # each of the inner bags contributes its own cardinality; with
        # no deeper statistics, assume inner bags the size of the
        # average multiplicity
        per_bag = max(1.0, inner.average_multiplicity)
        return BagStats(inner.cardinality * per_bag,
                        inner.distinct * per_bag)
    # unknown/extension operators: give up conservatively
    raise BagTypeError(
        f"no estimation rule for operator {type(expr).__name__}")


def _powerset_size(inner: BagStats) -> float:
    """``prod(c_i + 1)`` approximated as
    ``(avg multiplicity + 1)^distinct``, capped."""
    if inner.distinct == 0:
        return 1.0
    base = inner.average_multiplicity + 1.0
    if inner.distinct * _log2(base) > 60:
        return _CAP
    return base ** inner.distinct


def _log2(value: float) -> float:
    import math
    return math.log2(value) if value > 0 else 0.0
