"""The rewrite engine: bottom-up rule application to a fixpoint.

The engine is deliberately a plain term rewriter — the point of the
Section 3 discussion is that the classical selection-pushdown style of
optimization survives the move to bags (unlike conjunctive-query
minimization, which [CV93] shows does not), so the machinery mirrors a
textbook relational optimizer:

* rules run bottom-up over the AST;
* a pass that changed anything schedules another pass, up to a cap;
* when a schema is provided, the type checker supplies operand arities
  and the product-pushdown rule joins the set;
* :func:`estimated_cost` gives the cost model used by the ablation
  benchmark (number of operators weighted by their worst-case growth).
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, BagDestroy, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)
from repro.core.typecheck import TypeChecker
from repro.core.types import BagType, TupleType, Type
from repro.optimizer.rules import (
    DEFAULT_RULES, RewriteRule, make_push_selection_into_product,
)

__all__ = ["Optimizer", "optimize", "estimated_cost"]


class Optimizer:
    """Applies rewrite rules until no rule fires.

    Parameters
    ----------
    schema:
        Optional ``name -> Type`` mapping.  With a schema the engine
        can determine operand arities, enabling selection pushdown
        through Cartesian products.
    extra_rules:
        Additional rules appended after the defaults.
    max_passes:
        Safety cap on full bottom-up passes.
    """

    def __init__(self, schema: Optional[Mapping[str, Type]] = None,
                 extra_rules: Optional[List[RewriteRule]] = None,
                 max_passes: int = 50):
        self._schema = dict(schema.items()) if schema else None
        self._max_passes = max_passes
        self.rules: List[RewriteRule] = list(DEFAULT_RULES)
        if self._schema is not None:
            self.rules.append(
                make_push_selection_into_product(self._left_arity))
        if extra_rules:
            self.rules.extend(extra_rules)
        self.rewrites_applied = 0

    def _left_arity(self, operand: Expr) -> Optional[int]:
        """Arity of a product operand's tuples, via type inference."""
        if self._schema is None:
            return None
        try:
            inferred = TypeChecker().check(operand, self._schema)
        except Exception:
            return None
        if isinstance(inferred, BagType) and isinstance(
                inferred.element, TupleType):
            return inferred.element.arity
        return None

    def optimize(self, expr: Expr) -> Expr:
        """Rewrite to a fixpoint of the rule set."""
        current = expr
        for _ in range(self._max_passes):
            rewritten = self._pass(current)
            if rewritten == current:
                return current
            current = rewritten
        return current

    def _pass(self, expr: Expr) -> Expr:
        """One bottom-up pass: children first, then this node."""
        rebuilt = self._rebuild(expr)
        for rule in self.rules:
            replacement = rule(rebuilt)
            if replacement is not None and replacement != rebuilt:
                self.rewrites_applied += 1
                return replacement
        return rebuilt

    def _rebuild(self, expr: Expr) -> Expr:
        if isinstance(expr, (Var, Const)):
            return expr
        if isinstance(expr, (AdditiveUnion, Subtraction, MaxUnion,
                             Intersection)):
            return type(expr)(self._pass(expr.left),
                              self._pass(expr.right))
        if isinstance(expr, Cartesian):
            return Cartesian(self._pass(expr.left),
                             self._pass(expr.right))
        if isinstance(expr, Tupling):
            return Tupling(*(self._pass(part) for part in expr.parts))
        if isinstance(expr, Bagging):
            return Bagging(self._pass(expr.item))
        if isinstance(expr, Attribute):
            return Attribute(self._pass(expr.operand), expr.index)
        if isinstance(expr, (Powerset, Powerbag, BagDestroy, Dedup)):
            return type(expr)(self._pass(expr.operand))
        if isinstance(expr, Map):
            return Map(Lam(expr.lam.param, self._pass(expr.lam.body)),
                       self._pass(expr.operand))
        if isinstance(expr, Select):
            return Select(
                Lam(expr.left.param, self._pass(expr.left.body)),
                Lam(expr.right.param, self._pass(expr.right.body)),
                self._pass(expr.operand), op=expr.op)
        return expr  # extension nodes (e.g. Ifp) pass through untouched


def optimize(expr: Expr,
             schema: Optional[Mapping[str, Type]] = None) -> Expr:
    """One-shot convenience wrapper."""
    return Optimizer(schema=schema).optimize(expr)


#: Worst-case growth weights for the cost heuristic.  ``Unnest`` and
#: ``BagDestroy`` multiply cardinalities by nested-bag sizes (the
#: multiplicity blow-up the engine's scale kernels model), so they
#: weigh like small products; ``Nest`` only groups.
_NODE_WEIGHTS = {
    "Powerset": 100,
    "Powerbag": 200,
    "Cartesian": 10,
    "Unnest": 8,
    "BagDestroy": 5,
    "Nest": 3,
    "Map": 2,
    "Select": 1,
    "Dedup": 1,
    "AdditiveUnion": 1,
    "Subtraction": 1,
    "MaxUnion": 1,
    "Intersection": 1,
}


def estimated_cost(expr: Expr) -> int:
    """A static cost heuristic: operator count weighted by worst-case
    output growth.  Used to confirm that rewrites do not increase the
    estimate (and by how much they shrink it)."""
    return sum(_NODE_WEIGHTS.get(type(node).__name__, 1)
               for node in expr.walk())
