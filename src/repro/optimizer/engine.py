"""Compatibility shim — the rewrite engine is now the planner's
fixpoint pass manager (:mod:`repro.planner.manager`).

:class:`Optimizer` keeps the legacy surface (``schema`` /
``extra_rules`` / ``max_passes`` / ``rewrites_applied``) but delegates
the actual bottom-up fixpoint to
:class:`~repro.planner.manager.FixpointRewriter` over the planner's
named rule registry.  ``estimated_cost`` re-exports the shared cost
model from :mod:`repro.planner.stats`.  New code should drive
:func:`repro.planner.compile` directly.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.expr import Expr
from repro.core.typecheck import TypeChecker
from repro.core.types import BagType, TupleType, Type
from repro.planner.manager import FixpointRewriter
from repro.planner.rewrites import (
    ALL_RULES, RewriteRule, Rule, product_pushdown_rule,
)
from repro.planner.stats import estimated_cost

__all__ = ["Optimizer", "optimize", "estimated_cost"]


class Optimizer:
    """Applies rewrite rules until no rule fires.

    Parameters
    ----------
    schema:
        Optional ``name -> Type`` mapping.  With a schema the engine
        can determine operand arities, enabling selection pushdown
        through Cartesian products.
    extra_rules:
        Additional rules appended after the defaults.
    max_passes:
        Safety cap on full bottom-up passes.
    """

    def __init__(self, schema: Optional[Mapping[str, Type]] = None,
                 extra_rules: Optional[List[RewriteRule]] = None,
                 max_passes: int = 50):
        self._schema = dict(schema.items()) if schema else None
        self._max_passes = max_passes
        self.rules: List[RewriteRule] = [rule.fn for rule in ALL_RULES]
        self._named: List[Rule] = list(ALL_RULES)
        if self._schema is not None:
            pushdown = product_pushdown_rule(self._left_arity)
            self.rules.append(pushdown.fn)
            self._named.append(pushdown)
        if extra_rules:
            for index, fn in enumerate(extra_rules):
                self.rules.append(fn)
                self._named.append(Rule(
                    name=getattr(fn, "__name__", f"extra-{index}"),
                    fn=fn, stage="rewrite",
                    side_condition="caller-supplied rule; soundness "
                                   "is the caller's obligation"))
        self.rewrites_applied = 0

    def _left_arity(self, operand: Expr) -> Optional[int]:
        """Arity of a product operand's tuples, via type inference."""
        if self._schema is None:
            return None
        try:
            inferred = TypeChecker().check(operand, self._schema)
        except Exception:
            return None
        if isinstance(inferred, BagType) and isinstance(
                inferred.element, TupleType):
            return inferred.element.arity
        return None

    def optimize(self, expr: Expr) -> Expr:
        """Rewrite to a fixpoint of the rule set."""
        rewriter = FixpointRewriter(self._named,
                                    max_passes=self._max_passes)
        result = rewriter.rewrite(expr)
        self.rewrites_applied += rewriter.rewrites_applied
        return result


def optimize(expr: Expr,
             schema: Optional[Mapping[str, Type]] = None) -> Expr:
    """One-shot convenience wrapper."""
    return Optimizer(schema=schema).optimize(expr)
