"""Compatibility shim — the rewrite rules now live in
:mod:`repro.planner.rewrites`.

The planner's :class:`~repro.planner.rewrites.Rule` objects carry the
name, pipeline stage, and bag-semantics side condition of each
rewrite; this module re-exports the bare rule *functions* plus the
legacy ``DEFAULT_RULES`` list for callers written against the pre-
planner surface.  New code should import from ``repro.planner``.
"""

from __future__ import annotations

from typing import List

from repro.planner.rewrites import (
    RewriteRule, cancel_attribute_of_tupling, collapse_dedup,
    drop_neutral_elements, fold_constants, fuse_maps,
    idempotent_extremes, make_push_selection_into_product,
    push_selection_into_product, push_selection_into_union,
    push_selection_through_map, self_subtraction, substitute,
)

__all__ = ["RewriteRule", "substitute", "DEFAULT_RULES",
           "fold_constants", "drop_neutral_elements",
           "idempotent_extremes", "self_subtraction",
           "cancel_attribute_of_tupling",
           "collapse_dedup", "fuse_maps", "push_selection_through_map",
           "push_selection_into_union",
           "push_selection_into_product"]

#: The legacy default rule set, ordered cheap-first (the planner runs
#: the same functions, split into its normalize and rewrite stages).
DEFAULT_RULES: List[RewriteRule] = [
    fold_constants,
    drop_neutral_elements,
    idempotent_extremes,
    self_subtraction,
    collapse_dedup,
    fuse_maps,
    cancel_attribute_of_tupling,
    push_selection_through_map,
    push_selection_into_union,
]
