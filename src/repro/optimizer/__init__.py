"""Algebraic rewrite rules, cardinality estimation, and the
optimization engine (Section 3)."""

from repro.optimizer.cardinality import BagStats, estimate, stats_of
from repro.optimizer.engine import Optimizer, estimated_cost, optimize
from repro.optimizer.explain import PlanNode, build_plan, explain
from repro.optimizer.rules import (
    DEFAULT_RULES, RewriteRule, cancel_attribute_of_tupling,
    collapse_dedup, drop_neutral_elements,
    fold_constants, fuse_maps, idempotent_extremes,
    make_push_selection_into_product, push_selection_into_product,
    push_selection_into_union, push_selection_through_map, self_subtraction, substitute,
)

__all__ = [
    "BagStats", "estimate", "stats_of",
    "PlanNode", "build_plan", "explain",
    "Optimizer", "estimated_cost", "optimize",
    "DEFAULT_RULES", "RewriteRule", "cancel_attribute_of_tupling",
    "collapse_dedup",
    "drop_neutral_elements", "fold_constants", "fuse_maps",
    "idempotent_extremes", "make_push_selection_into_product",
    "push_selection_into_product", "push_selection_into_union",
    "push_selection_through_map",
    "self_subtraction", "substitute",
]
