"""Algebraic rewrite rules, cardinality estimation, and the
optimization engine (Section 3).

Most of this package is a compatibility surface over
:mod:`repro.planner` (rewrites, stats); only the logical EXPLAIN tree
(:mod:`repro.optimizer.explain`) and the legacy :class:`Optimizer`
driver are first-class here.  The package re-exports exactly the
names external callers still import; everything else lives on the
submodules (``repro.optimizer.cardinality``,
``repro.optimizer.rules``) or, for new code, on ``repro.planner``.
"""

from repro.optimizer.cardinality import estimate, stats_of
from repro.optimizer.engine import Optimizer, estimated_cost, optimize
from repro.optimizer.explain import build_plan, explain
from repro.optimizer.rules import (
    cancel_attribute_of_tupling, collapse_dedup,
    drop_neutral_elements, fold_constants, fuse_maps,
    idempotent_extremes, push_selection_into_union,
    push_selection_through_map, self_subtraction, substitute,
)

__all__ = [
    "estimate", "stats_of",
    "build_plan", "explain",
    "Optimizer", "estimated_cost", "optimize",
    "cancel_attribute_of_tupling", "collapse_dedup",
    "drop_neutral_elements", "fold_constants", "fuse_maps",
    "idempotent_extremes", "push_selection_into_union",
    "push_selection_through_map",
    "self_subtraction", "substitute",
]
