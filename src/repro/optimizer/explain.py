"""EXPLAIN for bag-algebra expressions.

Combines the static analyses the library already has — type inference,
fragment measures, and cardinality estimation — into one annotated plan
tree, the way a database EXPLAIN does:

>>> print(explain(query, schema, statistics))        # doctest: +SKIP
Select [{{[U,U]}}]  est card 8.0 / distinct 4.0
  Cartesian [{{[U,U]}}]  est card 16.0 / distinct 8.0
    Var A [{{[U]}}]  est card 4.0 / distinct 2.0
    Var B [{{[U]}}]  est card 4.0 / distinct 4.0

Statistics are optional; without them the tree still shows types and
the per-node fragment information.  The CLI exposes this as
``:explain``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.errors import BagTypeError
from repro.core.expr import Const, Expr, Var
from repro.core.typecheck import TypeChecker
from repro.core.types import Type
from repro.optimizer.cardinality import BagStats, estimate

__all__ = ["explain", "PlanNode", "build_plan"]


class PlanNode:
    """One annotated node of the plan tree."""

    def __init__(self, expr: Expr, inferred: Optional[Type],
                 stats: Optional[BagStats],
                 children: List["PlanNode"]):
        self.expr = expr
        self.inferred = inferred
        self.stats = stats
        self.children = children

    def label(self) -> str:
        name = type(self.expr).__name__
        if isinstance(self.expr, Var):
            name = f"Var {self.expr.name}"
        elif isinstance(self.expr, Const):
            name = "Const"
        parts = [name]
        if self.inferred is not None:
            parts.append(f"[{self.inferred!r}]")
        if self.stats is not None:
            parts.append(f"est card {self.stats.cardinality:g} / "
                         f"distinct {self.stats.distinct:g}")
        return "  ".join(parts)

    def render(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def build_plan(expr: Expr,
               schema: Optional[Mapping[str, Type]] = None,
               statistics: Optional[Mapping[str, BagStats]] = None,
               selectivity: float = 0.5) -> PlanNode:
    """Annotate an expression tree with types and estimates.

    Lambda bodies are *not* descended into (they are per-member object
    computations, not bag-producing plan steps); the plan follows the
    dataflow children only.
    """
    type_index = {}
    if schema is not None:
        checker = TypeChecker()
        try:
            checker.check(expr, schema)
            for node, inferred in checker.annotations:
                type_index.setdefault(id(node), inferred)
        except BagTypeError:
            pass  # untypeable: plan still renders without types

    def annotate(node: Expr) -> PlanNode:
        stats: Optional[BagStats] = None
        if statistics is not None:
            try:
                stats = estimate(node, statistics,
                                 selectivity=selectivity)
            except BagTypeError:
                stats = None
        bodies = _lambda_bodies(node)
        dataflow_children = [child for child in node.children()
                             if all(child is not body
                                    for body in bodies)]
        return PlanNode(node, type_index.get(id(node)), stats,
                        [annotate(child) for child in
                         dataflow_children])

    return annotate(expr)


def _lambda_bodies(node: Expr):
    return tuple(lam.body for lam in node.lambdas())


def explain(expr: Expr,
            schema: Optional[Mapping[str, Type]] = None,
            statistics: Optional[Mapping[str, BagStats]] = None,
            selectivity: float = 0.5) -> str:
    """Render the annotated plan tree as text."""
    return build_plan(expr, schema, statistics,
                      selectivity=selectivity).render()
