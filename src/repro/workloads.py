"""Workload generators for experiments, tests, and demos.

Every quantitative experiment in the repository draws its inputs from
one of a handful of input families; this module is their single home,
so sweeps are reproducible (explicit seeds) and the families are
documented in one place:

* :func:`single_constant_family` — the ``B_n`` of Proposition 4.1;
* :func:`uniform_family` — the k-constants-times-m of Proposition 3.2;
* :func:`random_relation` / :func:`random_multigraph` — the Example
  4.1/4.2 inputs;
* :func:`order_book` — a duplicate-rich business-flavoured table for
  the SQL and aggregate demos;
* :func:`integer_bags` — integers-as-bags samples for the aggregate
  experiments;
* :func:`star_graph_database` — the Fig. 1 edge bags keyed for direct
  use with the evaluator.

The generators that can produce large outputs accept an optional
:class:`~repro.guard.ResourceGovernor` and tick it once per generated
element, so a sweep driving them with hostile parameters hits its step
budget or deadline instead of exhausting memory.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup
from repro.core.derived import int_as_bag
from repro.core.errors import BagTypeError
from repro.games.star_graphs import build_star_graphs, edge_bag

__all__ = [
    "single_constant_family", "uniform_family", "random_relation",
    "random_multigraph", "order_book", "integer_bags",
    "star_graph_database",
]


def single_constant_family(n: int, atom: str = "a") -> Bag:
    """``B_n``: n occurrences of the 1-tuple [atom] (Prop 4.1)."""
    if n < 0:
        raise BagTypeError("n must be >= 0")
    return Bag.from_counts({Tup(atom): n}) if n else Bag()


def uniform_family(k: int, m: int) -> Bag:
    """``k`` distinct constants with ``m`` occurrences each — the
    Proposition 3.2 input."""
    if k < 1 or m < 0:
        raise BagTypeError("need k >= 1 and m >= 0")
    return Bag.from_counts({f"c{i}": m for i in range(k)})


def random_relation(n_atoms: int, arity: int = 1,
                    seed: int = 0,
                    density: float = 0.5,
                    governor=None) -> Bag:
    """A uniformly random *relation* (duplicate-free bag of flat
    tuples) over the domain ``{0..n_atoms-1}``.

    The candidate space is ``n_atoms ** arity`` — governable, since a
    careless sweep can make it astronomical.
    """
    rng = random.Random(seed)
    members = []
    domain = range(n_atoms)

    def tuples(prefix: Tuple[int, ...]):
        if len(prefix) == arity:
            if governor is not None:
                governor.tick()
            if rng.random() < density:
                members.append(Tup(*prefix))
            return
        for value in domain:
            tuples(prefix + (value,))

    tuples(())
    return Bag(members)


def random_multigraph(nodes: int, edges: int, seed: int = 0,
                      governor=None) -> Bag:
    """A random directed multigraph: ``edges`` draws with replacement,
    so parallel edges (duplicates) occur — the bag-sensitive input of
    Example 4.1."""
    rng = random.Random(seed)
    members = []
    for _ in range(edges):
        if governor is not None:
            governor.tick()
        members.append(Tup(rng.randrange(nodes), rng.randrange(nodes)))
    return Bag(members)


#: The item and customer pools of the order-book family.
_ITEMS = ("book", "pen", "ink", "desk", "lamp")
_CUSTOMERS = ("ann", "bob", "cid", "eve")


def order_book(n_orders: int, seed: int = 0,
               customers: Sequence[str] = _CUSTOMERS,
               items: Sequence[str] = _ITEMS,
               governor=None) -> Bag:
    """A sales table with natural duplicates (the same customer buying
    the same item repeatedly) — the SQL/aggregates workload."""
    rng = random.Random(seed)
    customers = list(customers)
    items = list(items)
    members = []
    for _ in range(n_orders):
        if governor is not None:
            governor.tick()
        members.append(Tup(rng.choice(customers), rng.choice(items)))
    return Bag(members)


def integer_bags(values: Sequence[int]) -> Bag:
    """A bag of integers-as-bags (Section 3's encoding), ready for the
    sum/average expressions.

    Equal integers collapse into multiplicities of the same inner bag
    — which is precisely how the encoding is meant to behave.
    """
    return Bag([int_as_bag(value) for value in values])


def star_graph_database(n: int) -> Dict[str, Bag]:
    """Both Fig. 1 edge bags, keyed ``G`` (balanced) and ``Gp``
    (in-degree heavy), plus the centre under ``alpha`` as a singleton
    1-tuple bag for convenience."""
    pair = build_star_graphs(n)
    return {
        "G": edge_bag(pair.balanced),
        "Gp": edge_bag(pair.unbalanced),
        "alpha": Bag.of(Tup(pair.center)),
    }
