"""Typed loaders and the on-disk value encoding of workspaces.

Relations on disk are JSON documents holding ``(value, count)`` pairs
in canonical order.  The encoding is the minimal bijection between the
complex-object fragment workspaces support and JSON:

* atoms (``str`` / ``int`` / ``float`` / ``bool``) encode as
  themselves;
* :class:`~repro.core.bag.Tup` encodes as a JSON array of encoded
  attributes;
* a nested :class:`~repro.core.bag.Bag` encodes as
  ``{"bag": [[encoded, count], ...]}`` (canonically ordered), so
  nest/powerset outputs can round-trip too.

CSV is the typed front door for external data: a
:class:`ColumnSpec` list says how to parse each column, duplicates in
the file accumulate multiplicity (CSV rows are a bag, not a set).
JSON input accepts either the workspace's own ``{"rows": [[value,
count], ...]}`` shape or a bare array of rows.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import BagTypeError

__all__ = ["ColumnSpec", "parse_columns", "load_csv", "load_json",
           "encode_value", "decode_value", "encode_rows",
           "decode_rows"]

#: Column type name -> parser for CSV cells.
_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": lambda text: text.strip().lower() in ("1", "true", "t",
                                                  "yes"),
}


@dataclass(frozen=True)
class ColumnSpec:
    """One typed column of a loaded relation."""

    name: str
    type: str = "str"

    def __post_init__(self):
        if self.type not in _PARSERS:
            raise BagTypeError(
                f"unknown column type {self.type!r} "
                f"(choices: {sorted(_PARSERS)})")

    def parse(self, text: str) -> Any:
        return _PARSERS[self.type](text)


def parse_columns(spec: str) -> Tuple[ColumnSpec, ...]:
    """Parse ``"id:int,name:str"`` into column specs (type defaults
    to ``str``)."""
    columns: List[ColumnSpec] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, type_name = part.split(":", 1)
            columns.append(ColumnSpec(name.strip(), type_name.strip()))
        else:
            columns.append(ColumnSpec(part))
    if not columns:
        raise BagTypeError(f"no columns in spec {spec!r}")
    return tuple(columns)


# ----------------------------------------------------------------------
# Value encoding (complex object <-> JSON)
# ----------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode one complex object into its JSON form."""
    if isinstance(value, Tup):
        return [encode_value(item) for item in value.items()]
    if isinstance(value, Bag):
        return {"bag": encode_rows(value)}
    if isinstance(value, (bool, int, float, str)):
        return value
    raise BagTypeError(
        f"cannot persist value of type {type(value).__name__}")


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(encoded, list):
        return Tup(*(decode_value(item) for item in encoded))
    if isinstance(encoded, dict):
        if set(encoded) != {"bag"}:
            raise BagTypeError(
                f"malformed encoded value: {sorted(encoded)!r}")
        return decode_rows(encoded["bag"])
    if isinstance(encoded, (bool, int, float, str)):
        return encoded
    raise BagTypeError(
        f"cannot decode value of type {type(encoded).__name__}")


def encode_rows(bag: Bag) -> List[List[Any]]:
    """A bag as a canonically-ordered ``[[value, count], ...]`` list —
    the ordering (not insertion order) is what makes same-seed
    workspaces byte-identical."""
    ordered = sorted(bag.items(), key=lambda pair: canonical_key(pair[0]))
    return [[encode_value(value), count] for value, count in ordered]


def decode_rows(rows: Iterable[Sequence[Any]]) -> Bag:
    counts = {}
    for entry in rows:
        if len(entry) != 2:
            raise BagTypeError(f"malformed row entry {entry!r}")
        encoded, count = entry
        value = decode_value(encoded)
        counts[value] = counts.get(value, 0) + int(count)
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# File loaders
# ----------------------------------------------------------------------

def load_csv(path: str, columns: Optional[Sequence[ColumnSpec]] = None,
             delimiter: str = ",", header: Optional[bool] = None
             ) -> Tuple[Bag, Tuple[ColumnSpec, ...]]:
    """Load a CSV file into a bag of tuples.

    Without explicit ``columns`` the first row is taken as a header of
    ``str``-typed column names; with them, ``header`` controls whether
    a first row is skipped (default: no).  Duplicate rows accumulate
    multiplicity.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if columns is None:
        if not rows:
            raise BagTypeError(f"empty CSV file {path!r} needs "
                               "explicit columns")
        columns = tuple(ColumnSpec(name.strip()) for name in rows[0])
        rows = rows[1:]
    else:
        columns = tuple(columns)
        if header:
            rows = rows[1:]
    counts = {}
    for line, row in enumerate(rows, start=1):
        if not row:
            continue
        if len(row) != len(columns):
            raise BagTypeError(
                f"{path}:{line}: expected {len(columns)} columns, "
                f"got {len(row)}")
        value = Tup(*(spec.parse(cell)
                      for spec, cell in zip(columns, row)))
        counts[value] = counts.get(value, 0) + 1
    return Bag.from_counts(counts), columns


def load_json(path: str) -> Bag:
    """Load a JSON relation: the workspace's ``{"rows": [[value,
    count], ...]}`` shape, or a bare array of rows (each row a scalar
    atom or an array-encoded tuple, multiplicity one each)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict) and "rows" in document:
        return decode_rows(document["rows"])
    if isinstance(document, list):
        counts = {}
        for entry in document:
            value = decode_value(entry)
            counts[value] = counts.get(value, 0) + 1
        return Bag.from_counts(counts)
    raise BagTypeError(
        f"{path}: expected a rows document or an array of rows")
