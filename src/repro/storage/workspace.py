"""Workspaces: named on-disk collections of relations + their catalog.

A workspace is one directory::

    <root>/
      workspace.json            # manifest: format, name, relation files
      catalog.json              # the statistics catalog (after ANALYZE)
      relations/<name>.json     # canonical {"rows": [[value, count]]}

Every file is sorted, canonical JSON with no timestamps, so the same
seed produces *byte-identical* workspaces (pinned by
``tests/test_storage.py``) and reruns are diffable.  Relations load
lazily and cache in memory; ``analyze()`` is the one deliberate
full-scan pass, refreshing the catalog and persisting it.

The workspace is what the execution entry points accept as a
``catalog=`` argument — it forwards the planner protocol
(``planner_stats`` / ``selectivity_oracle``) to its catalog, so
``PlanContext.capture`` compiles against persisted statistics without
touching the bound bags.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bag import Bag
from repro.core.errors import BagTypeError
from repro.storage.catalog import Catalog, PlannerStats, RelationEntry
from repro.storage.generate import RelationSpec, synthesize_bag
from repro.storage.loaders import (
    ColumnSpec, decode_rows, encode_rows, load_csv, load_json,
)

__all__ = ["Workspace", "FORMAT_VERSION"]

FORMAT_VERSION = 1
_MANIFEST = "workspace.json"
_CATALOG = "catalog.json"
_RELATION_DIR = "relations"


def _dump(document: Any, path: str) -> None:
    rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered)


def _load(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class Workspace:
    """One on-disk workspace; create with :meth:`create` or attach to
    an existing directory with :meth:`open`."""

    def __init__(self, root: str, manifest: Dict[str, Any],
                 catalog: Catalog):
        self.root = os.path.abspath(root)
        self._manifest = manifest
        self._catalog = catalog
        self._bags: Dict[str, Bag] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, root: str,
               name: Optional[str] = None) -> "Workspace":
        """Initialise an empty workspace directory (idempotent on an
        empty or not-yet-workspace directory; refuses to clobber an
        existing manifest)."""
        root = os.path.abspath(root)
        manifest_path = os.path.join(root, _MANIFEST)
        if os.path.exists(manifest_path):
            raise BagTypeError(
                f"{root} already holds a workspace; open it instead")
        os.makedirs(os.path.join(root, _RELATION_DIR), exist_ok=True)
        manifest = {
            "format": FORMAT_VERSION,
            "name": name if name else os.path.basename(root),
            "relations": {},
        }
        workspace = cls(root, manifest, Catalog())
        workspace._save_manifest()
        return workspace

    @classmethod
    def open(cls, root: str) -> "Workspace":
        root = os.path.abspath(root)
        manifest_path = os.path.join(root, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise BagTypeError(f"{root} is not a workspace "
                               f"(no {_MANIFEST})")
        manifest = _load(manifest_path)
        if manifest.get("format") != FORMAT_VERSION:
            raise BagTypeError(
                f"workspace format {manifest.get('format')!r} "
                f"unsupported (this build reads {FORMAT_VERSION})")
        catalog_path = os.path.join(root, _CATALOG)
        catalog = (Catalog.from_document(_load(catalog_path))
                   if os.path.exists(catalog_path) else Catalog())
        return cls(root, manifest, catalog)

    # -- identity -------------------------------------------------------

    @property
    def name(self) -> str:
        return self._manifest["name"]

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._manifest["relations"]))

    # -- relations ------------------------------------------------------

    def save_relation(self, name: str, bag: Bag,
                      columns: Optional[Sequence[ColumnSpec]] = None
                      ) -> None:
        """Persist one relation (canonical row order) and record it in
        the manifest.  Statistics are *not* refreshed — run
        :meth:`analyze`."""
        if not name or "/" in name or name.startswith("."):
            raise BagTypeError(f"bad relation name {name!r}")
        path = os.path.join(self.root, _RELATION_DIR, f"{name}.json")
        _dump({"name": name, "rows": encode_rows(bag)}, path)
        self._manifest["relations"][name] = {
            "file": f"{_RELATION_DIR}/{name}.json",
            "columns": ([[spec.name, spec.type] for spec in columns]
                        if columns else None),
        }
        self._bags[name] = bag
        self._save_manifest()

    def load_relation(self, name: str) -> Bag:
        cached = self._bags.get(name)
        if cached is not None:
            return cached
        meta = self._manifest["relations"].get(name)
        if meta is None:
            raise BagTypeError(f"workspace {self.name!r} has no "
                               f"relation {name!r}")
        document = _load(os.path.join(self.root, meta["file"]))
        bag = decode_rows(document["rows"])
        self._bags[name] = bag
        return bag

    def columns_of(self, name: str) -> Optional[Tuple[ColumnSpec, ...]]:
        meta = self._manifest["relations"].get(name)
        if meta is None or not meta.get("columns"):
            return None
        return tuple(ColumnSpec(cname, ctype)
                     for cname, ctype in meta["columns"])

    def database(self) -> Dict[str, Bag]:
        """All relations as a bindings mapping, ready for
        ``evaluate(expr, workspace.database(), catalog=workspace)``."""
        return {name: self.load_relation(name)
                for name in self.relation_names()}

    # -- ingestion ------------------------------------------------------

    def import_csv(self, name: str, path: str,
                   columns: Optional[Sequence[ColumnSpec]] = None,
                   delimiter: str = ",",
                   header: Optional[bool] = None) -> Bag:
        bag, resolved = load_csv(path, columns=columns,
                                 delimiter=delimiter, header=header)
        self.save_relation(name, bag, columns=resolved)
        return bag

    def import_json(self, name: str, path: str) -> Bag:
        bag = load_json(path)
        self.save_relation(name, bag)
        return bag

    def generate(self, specs: Sequence[RelationSpec],
                 seed: int) -> Dict[str, Bag]:
        """Synthesize and persist one bag per spec (see
        :mod:`repro.storage.generate`)."""
        out = {}
        for spec in specs:
            bag = synthesize_bag(spec, seed)
            self.save_relation(spec.name, bag)
            out[spec.name] = bag
        return out

    # -- statistics -----------------------------------------------------

    def analyze(self, names: Optional[Sequence[str]] = None
                ) -> Tuple[RelationEntry, ...]:
        """ANALYZE: scan the named relations (default all), refresh
        the catalog, persist it."""
        targets = (tuple(names) if names is not None
                   else self.relation_names())
        entries = []
        for name in targets:
            bag = self.load_relation(name)
            entries.append(self._catalog.analyze_bag(
                name, bag, columns=self.columns_of(name)))
        self.save_catalog()
        return tuple(entries)

    def save_catalog(self) -> None:
        _dump(self._catalog.to_document(),
              os.path.join(self.root, _CATALOG))

    def absorb_feedback(self, observed: Mapping[str, float],
                        **kwargs) -> List[str]:
        """Catalog feedback absorption + persistence; returns the
        updated relation names (see :meth:`Catalog.absorb`)."""
        updated = self._catalog.absorb(observed, **kwargs)
        if updated:
            self.save_catalog()
        return updated

    # -- planner protocol (forwarded to the catalog) --------------------

    def planner_stats(self, name: str) -> Optional[PlannerStats]:
        return self._catalog.planner_stats(name)

    def selectivity_oracle(self):
        return self._catalog.selectivity_oracle()

    # -- reporting ------------------------------------------------------

    def describe(self) -> str:
        lines = [f"workspace {self.name}  ({self.root})"]
        for name in self.relation_names():
            entry = self._catalog.get(name)
            if entry is None:
                lines.append(f"  {name}: not analyzed")
                continue
            arity = entry.arity if entry.arity is not None else "?"
            lines.append(
                f"  {name}: card {entry.cardinality:g}, distinct "
                f"{entry.distinct:g}, arity {arity}, "
                f"epoch {entry.epoch}")
        return "\n".join(lines)

    # -- internals ------------------------------------------------------

    def _save_manifest(self) -> None:
        _dump(self._manifest, os.path.join(self.root, _MANIFEST))

    def __repr__(self) -> str:
        return (f"Workspace({self.name!r}, "
                f"{len(self._manifest['relations'])} relations)")
