"""``python -m repro workspace ...`` — the storage subcommands.

::

    python -m repro workspace create DIR --seed 7 \
        --relations "R:rows=1000,arity=2,skew=zipfian,s=1.3"
    python -m repro workspace load DIR --csv R=data.csv \
        --columns R=id:int,name:str
    python -m repro workspace analyze DIR
    python -m repro workspace ls DIR

``create`` synthesizes seeded relations (defaults to the two-relation
uniform+zipfian starter set) and runs ANALYZE unless ``--no-analyze``;
``load`` ingests CSV/JSON files with typed column schemas; ``analyze``
refreshes the catalog; ``ls`` prints the catalog's view.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.errors import ReproError
from repro.storage.generate import DEFAULT_SPECS, parse_relation_spec
from repro.storage.loaders import parse_columns
from repro.storage.workspace import Workspace

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro workspace",
        description="persistent workspaces + statistics catalog")
    sub = parser.add_subparsers(dest="command", required=True)

    create = sub.add_parser("create", help="create a workspace with "
                            "seeded synthetic relations")
    create.add_argument("dir", help="workspace directory")
    create.add_argument("--name", default=None)
    create.add_argument("--seed", type=int, default=0)
    create.add_argument(
        "--relations", action="append", default=[],
        metavar="SPEC",
        help="relation spec, e.g. "
             "'R:rows=1000,arity=2,distinct=100,skew=zipfian,s=1.3' "
             "(repeatable; default: a uniform R + zipfian S pair)")
    create.add_argument("--no-analyze", action="store_true",
                        help="skip the ANALYZE pass after generation")

    load = sub.add_parser("load", help="ingest CSV/JSON relations")
    load.add_argument("dir")
    load.add_argument("--csv", action="append", default=[],
                      metavar="NAME=PATH")
    load.add_argument("--json", action="append", default=[],
                      metavar="NAME=PATH")
    load.add_argument("--columns", action="append", default=[],
                      metavar="NAME=COLSPEC",
                      help="typed columns for a --csv relation, e.g. "
                           "'R=id:int,name:str'")
    load.add_argument("--no-analyze", action="store_true")

    analyze = sub.add_parser("analyze",
                             help="refresh catalog statistics")
    analyze.add_argument("dir")
    analyze.add_argument("names", nargs="*",
                         help="relations to analyze (default: all)")

    ls = sub.add_parser("ls", help="show the catalog's view")
    ls.add_argument("dir")
    return parser


def _split_assignment(text: str, flag: str):
    name, sep, value = text.partition("=")
    if not sep or not name or not value:
        raise ReproError(f"{flag} expects NAME=VALUE, got {text!r}")
    return name, value


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "create":
        workspace = Workspace.create(args.dir, name=args.name)
        specs = ([parse_relation_spec(text)
                  for text in args.relations]
                 if args.relations else list(DEFAULT_SPECS))
        workspace.generate(specs, seed=args.seed)
        if not args.no_analyze:
            workspace.analyze()
        print(workspace.describe())
        return 0
    if args.command == "load":
        workspace = (Workspace.open(args.dir)
                     if _is_workspace(args.dir)
                     else Workspace.create(args.dir))
        columns = {}
        for text in args.columns:
            name, spec = _split_assignment(text, "--columns")
            columns[name] = parse_columns(spec)
        loaded = []
        for text in args.csv:
            name, path = _split_assignment(text, "--csv")
            workspace.import_csv(name, path,
                                 columns=columns.get(name))
            loaded.append(name)
        for text in args.json:
            name, path = _split_assignment(text, "--json")
            workspace.import_json(name, path)
            loaded.append(name)
        if not loaded:
            print("error: nothing to load (use --csv/--json)",
                  file=sys.stderr)
            return 2
        if not args.no_analyze:
            workspace.analyze(loaded)
        print(workspace.describe())
        return 0
    if args.command == "analyze":
        workspace = Workspace.open(args.dir)
        workspace.analyze(args.names if args.names else None)
        print(workspace.describe())
        return 0
    if args.command == "ls":
        workspace = Workspace.open(args.dir)
        print(workspace.describe())
        return 0
    raise ReproError(f"unknown workspace command {args.command!r}")


def _is_workspace(path: str) -> bool:
    import os
    return os.path.exists(os.path.join(path, "workspace.json"))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
