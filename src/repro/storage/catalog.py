"""The statistics catalog: persisted per-relation schema + statistics.

One :class:`RelationEntry` per relation records the pair of numbers
that diverge exactly when bags matter — total cardinality *with
duplicates* and distinct count (PAPER.md §3) — plus the bag-specific
extras the estimator consumes: a multiplicity-skew histogram,
``avg_element_size`` for bag-valued members, and bounded per-column
most-common-value lists.

The catalog speaks the planner's protocol:

* :meth:`Catalog.planner_stats` answers
  :meth:`repro.planner.context.PlanContext.capture` without touching
  the bound bag (the zero-scan compile path — the scan counter in
  :mod:`repro.planner.stats` stays put);
* :meth:`Catalog.selectivity_oracle` turns the MCV lists into a
  per-predicate :data:`~repro.planner.stats.SelectivityFn`, replacing
  the flat ``DEFAULT_SELECTIVITY`` for ``alpha_i(t) = const`` and
  ``alpha_i(t) = alpha_j(t)`` selections over cataloged relations;
* :meth:`Catalog.absorb` folds observed cardinalities from
  :class:`~repro.engine.physical.EngineStats` back in (opt-in,
  bounded, dead-banded), bumping the per-relation *epoch* so every
  plan cached against the stale statistics is retired — epochs are
  part of the plan-cache key via
  :meth:`~repro.planner.context.PlanContext.stats_tag`.

``ANALYZE`` (:meth:`analyze_bag`) is the one deliberate full scan; it
ticks the same scan counter the memoized ``stats_of`` path uses, so
tests can assert exactly *where* bags get touched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.expr import Attribute, Const, Lam, Select, Var
from repro.planner.stats import BagStats, count_stats_scan
from repro.storage.loaders import (
    ColumnSpec, decode_value, encode_value,
)

__all__ = ["ColumnStats", "RelationEntry", "PlannerStats", "Catalog",
           "MCV_KEEP", "HISTOGRAM_KEEP", "FEEDBACK_DEADBAND"]

#: Most-common values kept per column.
MCV_KEEP = 8
#: Multiplicity classes kept in the skew histogram.
HISTOGRAM_KEEP = 32
#: Columns profiled per relation (wide tuples keep their first ones).
COLUMNS_PROFILED = 8
#: Relative cardinality drift below which feedback is ignored — keeps
#: epoch churn (and hence plan-cache invalidation) bounded.
FEEDBACK_DEADBAND = 0.05


@dataclass(frozen=True)
class ColumnStats:
    """Bounded statistics of one tuple attribute."""

    distinct: int
    #: ``(value, fraction-of-rows)`` for the most common values,
    #: most frequent first (canonical-key tie-break).
    mcv: Tuple[Tuple[Any, float], ...] = ()

    def eq_fraction(self, value: Any) -> float:
        """Estimated fraction of rows with this attribute value."""
        for candidate, fraction in self.mcv:
            if candidate == value:
                return fraction
        covered = sum(fraction for _, fraction in self.mcv)
        rest = max(0, self.distinct - len(self.mcv))
        if rest == 0:
            return 0.0
        return max(0.0, 1.0 - covered) / rest


@dataclass(frozen=True)
class RelationEntry:
    """Everything the catalog knows about one relation."""

    name: str
    cardinality: float
    distinct: float
    arity: Optional[int] = None
    avg_element_size: Optional[float] = None
    #: ``(multiplicity, number of distinct elements at it)``, sorted
    #: by multiplicity, bounded to the heaviest classes.
    mult_histogram: Tuple[Tuple[int, int], ...] = ()
    column_stats: Tuple[ColumnStats, ...] = ()
    columns: Optional[Tuple[ColumnSpec, ...]] = None
    #: Monotone statistics version; part of the plan-cache key.
    epoch: int = 1

    def bag_stats(self) -> BagStats:
        return BagStats(self.cardinality, self.distinct,
                        self.avg_element_size)


@dataclass(frozen=True)
class PlannerStats:
    """The planner protocol's answer shape (see
    :meth:`~repro.planner.context.PlanContext.capture`)."""

    bag_stats: BagStats
    arity: Optional[int]
    epoch: int


class Catalog:
    """An in-memory catalog; :class:`~repro.storage.Workspace`
    persists one next to its relations."""

    def __init__(self, entries: Optional[Mapping[str, RelationEntry]]
                 = None):
        self._entries: Dict[str, RelationEntry] = dict(entries or {})

    # -- plain access ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def get(self, name: str) -> Optional[RelationEntry]:
        return self._entries.get(name)

    def put(self, entry: RelationEntry) -> None:
        self._entries[entry.name] = entry

    def drop(self, name: str) -> None:
        self._entries.pop(name, None)

    # -- ANALYZE --------------------------------------------------------

    def analyze_bag(self, name: str, bag: Bag,
                    columns: Optional[Sequence[ColumnSpec]] = None
                    ) -> RelationEntry:
        """Refresh one relation's statistics by scanning its bag (the
        deliberate full scan — ticks the shared scan counter)."""
        count_stats_scan()
        cardinality = float(bag.cardinality)
        distinct = float(bag.distinct_count)
        arity: Optional[int] = None
        avg_element_size: Optional[float] = None
        histogram: Dict[int, int] = {}
        per_column: List[Dict[Any, int]] = []
        uniform_tuples = True
        nested_total = 0.0
        nested_any = False
        for value, count in bag.items():
            histogram[count] = histogram.get(count, 0) + 1
            if isinstance(value, Bag):
                nested_any = True
                nested_total += value.cardinality * count
            if isinstance(value, Tup):
                if arity is None:
                    arity = value.arity
                    per_column = [dict() for _ in
                                  range(min(arity, COLUMNS_PROFILED))]
                elif value.arity != arity:
                    uniform_tuples = False
                if uniform_tuples:
                    for index, cell in enumerate(
                            value.items()[:len(per_column)]):
                        bucket = per_column[index]
                        bucket[cell] = bucket.get(cell, 0) + count
            else:
                uniform_tuples = False
        if not uniform_tuples:
            arity = None
            per_column = []
        if nested_any and cardinality:
            avg_element_size = nested_total / cardinality
        old = self._entries.get(name)
        entry = RelationEntry(
            name=name,
            cardinality=cardinality,
            distinct=distinct,
            arity=arity,
            avg_element_size=avg_element_size,
            mult_histogram=_bounded_histogram(histogram),
            column_stats=tuple(
                _column_stats(bucket, cardinality)
                for bucket in per_column),
            columns=tuple(columns) if columns else
            (old.columns if old else None),
            epoch=(old.epoch + 1) if old else 1)
        self._entries[name] = entry
        return entry

    # -- planner protocol -----------------------------------------------

    def planner_stats(self, name: str) -> Optional[PlannerStats]:
        entry = self._entries.get(name)
        if entry is None:
            return None
        return PlannerStats(bag_stats=entry.bag_stats(),
                            arity=entry.arity, epoch=entry.epoch)

    def selectivity_oracle(self):
        """A :data:`~repro.planner.stats.SelectivityFn` over this
        catalog's column statistics; ``None``-returning (flat default)
        for anything it cannot attribute to a cataloged column."""

        def oracle(select: Select) -> Optional[float]:
            if not isinstance(select.operand, Var):
                return None
            entry = self._entries.get(select.operand.name)
            if entry is None or not entry.column_stats:
                return None
            matched = _match_predicate(select, entry)
            if matched is None:
                return None
            if select.op == "eq":
                fraction = matched
            elif select.op == "ne":
                fraction = 1.0 - matched
            else:
                return None
            floor = 1.0 / (2.0 * max(entry.cardinality, 1.0))
            return max(min(fraction, 1.0), floor)

        return oracle

    # -- execution feedback ---------------------------------------------

    def absorb(self, observed: Mapping[str, float], *,
               max_updates: int = 8,
               deadband: float = FEEDBACK_DEADBAND) -> List[str]:
        """Fold observed per-relation cardinalities back in.

        Bounded on purpose: at most ``max_updates`` relations per
        call, only relations already cataloged, and drifts inside the
        ``deadband`` are ignored — otherwise every run would bump
        epochs and flush the plan cache.  Returns the updated names.
        """
        updated: List[str] = []
        for name in sorted(observed):
            if len(updated) >= max_updates:
                break
            entry = self._entries.get(name)
            if entry is None:
                continue
            actual = float(observed[name])
            if actual < 0:
                continue
            baseline = max(entry.cardinality, 1.0)
            if abs(actual - entry.cardinality) / baseline <= deadband:
                continue
            self._entries[name] = replace(
                entry, cardinality=actual,
                distinct=min(entry.distinct, actual),
                epoch=entry.epoch + 1)
            updated.append(name)
        return updated

    # -- persistence ----------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        relations = {}
        for name in sorted(self._entries):
            entry = self._entries[name]
            relations[name] = {
                "cardinality": entry.cardinality,
                "distinct": entry.distinct,
                "arity": entry.arity,
                "avg_element_size": entry.avg_element_size,
                "mult_histogram": [list(pair)
                                   for pair in entry.mult_histogram],
                "column_stats": [
                    {"distinct": col.distinct,
                     "mcv": [[encode_value(value), fraction]
                             for value, fraction in col.mcv]}
                    for col in entry.column_stats],
                "columns": ([[spec.name, spec.type]
                             for spec in entry.columns]
                            if entry.columns else None),
                "epoch": entry.epoch,
            }
        return {"format": 1, "relations": relations}

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "Catalog":
        entries: Dict[str, RelationEntry] = {}
        for name, raw in document.get("relations", {}).items():
            columns = raw.get("columns")
            entries[name] = RelationEntry(
                name=name,
                cardinality=float(raw["cardinality"]),
                distinct=float(raw["distinct"]),
                arity=raw.get("arity"),
                avg_element_size=raw.get("avg_element_size"),
                mult_histogram=tuple(
                    (int(mult), int(count))
                    for mult, count in raw.get("mult_histogram", [])),
                column_stats=tuple(
                    ColumnStats(
                        distinct=int(col["distinct"]),
                        mcv=tuple((decode_value(value), float(fraction))
                                  for value, fraction in col["mcv"]))
                    for col in raw.get("column_stats", [])),
                columns=(tuple(ColumnSpec(cname, ctype)
                               for cname, ctype in columns)
                         if columns else None),
                epoch=int(raw.get("epoch", 1)))
        return cls(entries)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _bounded_histogram(histogram: Mapping[int, int]
                       ) -> Tuple[Tuple[int, int], ...]:
    """The heaviest multiplicity classes, reported in multiplicity
    order."""
    heaviest = sorted(histogram.items(),
                      key=lambda pair: (-pair[1], pair[0]))
    kept = heaviest[:HISTOGRAM_KEEP]
    return tuple(sorted(kept))


def _column_stats(bucket: Mapping[Any, int],
                  cardinality: float) -> ColumnStats:
    ranked = sorted(bucket.items(),
                    key=lambda pair: (-pair[1],
                                      canonical_key(pair[0])))
    total = max(cardinality, 1.0)
    mcv = tuple((value, rows / total)
                for value, rows in ranked[:MCV_KEEP])
    return ColumnStats(distinct=len(bucket), mcv=mcv)


def _lam_attribute_index(lam: Lam) -> Optional[int]:
    """``i`` when the lambda body is ``alpha_i(param)``."""
    body = lam.body
    if (isinstance(body, Attribute) and isinstance(body.operand, Var)
            and body.operand.name == lam.param):
        return body.index
    return None


def _match_predicate(select: Select,
                     entry: RelationEntry) -> Optional[float]:
    """The equality fraction of a recognized predicate shape, or
    ``None``: ``alpha_i(t) = const`` uses the column's MCV list,
    ``alpha_i(t) = alpha_j(t)`` uses ``1 / max(d_i, d_j)``."""
    left_attr = _lam_attribute_index(select.left)
    right_attr = _lam_attribute_index(select.right)
    left_const = (select.left.body.value
                  if isinstance(select.left.body, Const) else None)
    right_const = (select.right.body.value
                   if isinstance(select.right.body, Const) else None)
    if left_attr is not None and right_attr is not None:
        cols = entry.column_stats
        if left_attr > len(cols) or right_attr > len(cols):
            return None
        d_left = max(cols[left_attr - 1].distinct, 1)
        d_right = max(cols[right_attr - 1].distinct, 1)
        return 1.0 / max(d_left, d_right)
    attr, const = None, None
    if left_attr is not None and right_const is not None:
        attr, const = left_attr, right_const
    elif right_attr is not None and left_const is not None:
        attr, const = right_attr, left_const
    if attr is None or isinstance(const, (Bag, Tup)):
        return None
    if attr > len(entry.column_stats):
        return None
    return entry.column_stats[attr - 1].eq_fraction(const)
