"""Seeded synthetic relation generators for workspaces.

The estimator-honesty and plan-quality experiments need data whose
*multiplicity distribution* is controlled: bag statistics only diverge
from set statistics when duplicates are plentiful and skewed
(cardinality-with-duplicates vs. distinct count, PAPER.md §3).  A
:class:`RelationSpec` describes one relation — total rows, tuple
arity, distinct-element count, per-column domain width, and the
multiplicity skew:

* ``uniform`` — every distinct tuple gets ``rows / distinct`` copies
  (remainder spread over the first ranks);
* ``zipfian`` — rank ``r`` (1-based) gets weight ``1 / r**s``, scaled
  to the requested total with largest-remainder rounding so the row
  count is hit *exactly* (the q-error tests depend on exact totals).

Everything is driven by one :class:`random.Random` seeded from the
caller's seed plus a CRC of the relation name (never the salted
built-in ``hash``), so the same seed reproduces the same bag in any
process — the workspace round-trip test pins byte-identical files.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError

__all__ = ["RelationSpec", "synthesize_bag", "parse_relation_spec",
           "DEFAULT_SPECS"]

_SKEWS = ("uniform", "zipfian")


@dataclass(frozen=True)
class RelationSpec:
    """One synthetic relation: shape, scale, and multiplicity skew."""

    name: str
    rows: int = 256
    arity: int = 2
    distinct: Optional[int] = None      # default: rows // 4, >= 1
    domain: Optional[int] = None        # per-column value count
    skew: str = "uniform"
    zipf_s: float = 1.2

    def __post_init__(self):
        if self.rows < 0 or self.arity < 1:
            raise BagTypeError("relation spec needs rows >= 0 and "
                               "arity >= 1")
        if self.skew not in _SKEWS:
            raise BagTypeError(
                f"unknown skew {self.skew!r} (choices: {_SKEWS})")
        if self.zipf_s <= 0:
            raise BagTypeError("zipf_s must be positive")

    @property
    def resolved_distinct(self) -> int:
        if self.rows == 0:
            return 0
        if self.distinct is not None:
            return max(1, min(self.distinct, self.rows))
        return max(1, self.rows // 4)

    @property
    def resolved_domain(self) -> int:
        if self.domain is not None:
            return max(2, self.domain)
        # wide enough that `distinct` different tuples exist, narrow
        # enough that equality predicates and joins actually select
        need = max(2, self.resolved_distinct)
        width = 2
        while width ** self.arity < 4 * need:
            width += 1
        return width


def synthesize_bag(spec: RelationSpec, seed: int) -> Bag:
    """The relation a spec describes, deterministically from a seed."""
    distinct = spec.resolved_distinct
    if distinct == 0:
        return Bag()
    rng = Random((int(seed) << 32)
                 ^ zlib.crc32(spec.name.encode("utf-8")))
    tuples = _distinct_tuples(rng, distinct, spec.arity,
                              spec.resolved_domain)
    multiplicities = _multiplicities(len(tuples), spec.rows, spec.skew,
                                     spec.zipf_s)
    return Bag.from_counts(dict(zip(tuples, multiplicities)))


def _distinct_tuples(rng: Random, count: int, arity: int,
                     domain: int) -> List[Tup]:
    """``count`` distinct tuples over ``[0, domain)`` columns, in
    generation order (rank order for the skew assignment)."""
    space = domain ** arity
    if count > space:
        count = space
    seen: Dict[Tup, bool] = {}
    out: List[Tup] = []
    while len(out) < count:
        candidate = Tup(*(rng.randrange(domain) for _ in range(arity)))
        if candidate not in seen:
            seen[candidate] = True
            out.append(candidate)
    return out


def _multiplicities(distinct: int, total: int, skew: str,
                    s: float) -> List[int]:
    """Positive multiplicities summing to exactly ``total`` (when
    ``total >= distinct``; fewer rows than ranks drops the tail)."""
    if distinct == 0 or total == 0:
        return []
    if total < distinct:
        return [1] * total
    if skew == "uniform":
        base, remainder = divmod(total, distinct)
        return [base + (1 if rank < remainder else 0)
                for rank in range(distinct)]
    # zipfian: weight 1/r^s, floor the scaled weights (at least one
    # copy each), then hand the leftover rows to the largest
    # fractional remainders — deterministic, exact total
    weights = [1.0 / ((rank + 1) ** s) for rank in range(distinct)]
    scale = total / sum(weights)
    shares = [weight * scale for weight in weights]
    counts = [max(1, int(share)) for share in shares]
    leftover = total - sum(counts)
    if leftover < 0:  # the max(1, ...) floor overshot: shave the tail
        for rank in range(distinct - 1, -1, -1):
            if leftover == 0:
                break
            give = min(counts[rank] - 1, -leftover)
            counts[rank] -= give
            leftover += give
    elif leftover > 0:
        remainders = sorted(
            range(distinct),
            key=lambda rank: (-(shares[rank] - int(shares[rank])),
                              rank))
        for rank in remainders[:leftover]:
            counts[rank] += 1
        leftover = 0
    return counts


def parse_relation_spec(text: str) -> RelationSpec:
    """Parse a CLI relation spec like
    ``"R:rows=1000,arity=2,distinct=100,skew=zipfian,s=1.3"``."""
    name, _, rest = text.partition(":")
    name = name.strip()
    if not name:
        raise BagTypeError(f"relation spec {text!r} needs a name")
    fields = {}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        fields[key.strip()] = value.strip()
    kwargs = {}
    for key in ("rows", "arity", "distinct", "domain"):
        if key in fields:
            kwargs[key] = int(fields.pop(key))
    if "skew" in fields:
        kwargs["skew"] = fields.pop("skew")
    if "s" in fields:
        kwargs["zipf_s"] = float(fields.pop("s"))
    if fields:
        raise BagTypeError(
            f"unknown relation-spec fields {sorted(fields)!r}")
    return RelationSpec(name=name, **kwargs)


#: What ``workspace create`` builds when no --relations are given:
#: one uniform and one zipfian relation sharing a joinable domain.
DEFAULT_SPECS: Tuple[RelationSpec, ...] = (
    RelationSpec("R", rows=512, arity=2, distinct=128, domain=16,
                 skew="uniform"),
    RelationSpec("S", rows=512, arity=2, distinct=64, domain=16,
                 skew="zipfian", zipf_s=1.3),
)
