"""``repro.storage`` — persistent workspaces and the statistics catalog.

The layer under everything that used to fake its data: named on-disk
collections of relations (:class:`Workspace`), typed CSV/JSON loaders
and seeded synthetic generators (:mod:`repro.storage.generate`), and a
persisted per-relation statistics catalog (:class:`Catalog`) that the
planner consults instead of re-scanning bound bags.

Usage::

    from repro.storage import Workspace, RelationSpec

    ws = Workspace.create("ws/orders")
    ws.generate([RelationSpec("R", rows=1000, skew="zipfian")], seed=7)
    ws.analyze()                                  # the one full scan
    result = evaluate(expr, ws.database(), catalog=ws)   # zero scans

CLI: ``python -m repro workspace create|load|analyze|ls`` and the
REPL's ``:workspace`` command.  See ``docs/storage.md``.
"""

from repro.storage.catalog import (
    Catalog, ColumnStats, PlannerStats, RelationEntry,
)
from repro.storage.generate import (
    DEFAULT_SPECS, RelationSpec, parse_relation_spec, synthesize_bag,
)
from repro.storage.loaders import (
    ColumnSpec, load_csv, load_json, parse_columns,
)
from repro.storage.workspace import FORMAT_VERSION, Workspace

__all__ = [
    "Workspace", "FORMAT_VERSION",
    "Catalog", "RelationEntry", "ColumnStats", "PlannerStats",
    "RelationSpec", "synthesize_bag", "parse_relation_spec",
    "DEFAULT_SPECS",
    "ColumnSpec", "parse_columns", "load_csv", "load_json",
]
