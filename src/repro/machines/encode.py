"""Theorem 6.1: whole computations encoded as bags, and their checkers.

Theorem 6.1 expresses every elementary query in BALG^3 by (i) building
the bag of *all possible* 4-tuple sets with the powerset, and (ii)
selecting those that encode a legal accepting computation with three
selections: ``phi_1`` (the time-0 layer encodes the input with the head
on cell 1 in the initial state), ``phi_2`` (consecutive layers differ by
a legal move), ``phi_3`` (an accepting state is reached).

Running the powerset over the full candidate space is hyperexponential
— that is the *point* of the theorem — so the executable reproduction
keeps the construction honest at the feasible end:

* :func:`computation_bag` materialises the encoding of an actual run
  (the unique object the paper's selection would retain);
* :func:`phi1_initial`, :func:`phi2_moves`, :func:`phi3_accepting` are
  the three selections as decision procedures on candidate bags;
* :func:`is_legal_accepting_computation` conjoins them, so tests can
  confirm the genuine encoding passes while perturbed variants
  (mutated cells, skipped steps, forged accept states) are rejected —
  exactly the discrimination the algebraic selection performs inside
  ``P(D x D x A x Q)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.bag import Bag, Tup
from repro.core.errors import EvaluationError
from repro.machines.ifp import NO_HEAD, config_tuple
from repro.machines.tm import RunResult, TuringMachine, run_machine

__all__ = [
    "computation_bag", "layer", "max_time", "phi1_initial", "phi2_moves",
    "phi3_accepting", "is_legal_accepting_computation",
    "candidate_space", "select_legal_computations",
]


def computation_bag(machine: TuringMachine, word: Sequence[str],
                    max_steps: int = 100,
                    tape_cells: Optional[int] = None) -> Bag:
    """Encode the machine's run on ``word`` as a bag of 4-tuples
    ``[b_time, b_position, symbol, state-or-marker]`` (Theorem 6.1's
    representation, with bag-encoded indices)."""
    cells = tape_cells if tape_cells is not None else (
        len(word) + max_steps + 1)
    result = run_machine(machine, word, max_steps=max_steps,
                         keep_trace=True, tape_cells=cells)
    tuples = []
    for config in result.trace:
        for position, symbol in enumerate(config.tape, start=1):
            state = config.state if position == config.head else NO_HEAD
            tuples.append(config_tuple(config.time, position, symbol,
                                       state))
    return Bag(tuples)


def max_time(computation: Bag) -> int:
    """Largest time stamp present in a computation bag."""
    return max((entry.attribute(1).cardinality
                for entry in computation.distinct()), default=-1)


def layer(computation: Bag, time: int) -> List[Tup]:
    """The cells of time stamp ``time``, sorted by position."""
    cells = [entry for entry in computation.distinct()
             if entry.attribute(1).cardinality == time]
    return sorted(cells, key=lambda entry: entry.attribute(2).cardinality)


def _decode_layer(cells: Sequence[Tup]) -> Optional[Tuple[Tuple[str, ...],
                                                          int, str]]:
    """(tape, head position, state) from one layer; None when the
    layer is malformed (duplicate/missing positions, no or two heads)."""
    positions = [entry.attribute(2).cardinality for entry in cells]
    if sorted(positions) != list(range(1, len(cells) + 1)):
        return None
    tape = [""] * len(cells)
    head, state = 0, ""
    for entry in cells:
        position = entry.attribute(2).cardinality
        tape[position - 1] = entry.attribute(3)
        if entry.attribute(4) != NO_HEAD:
            if head:
                return None  # two heads
            head, state = position, entry.attribute(4)
    if not head:
        return None
    return tuple(tape), head, state


def phi1_initial(machine: TuringMachine, computation: Bag,
                 word: Sequence[str]) -> bool:
    """``phi_1``: the time-0 layer encodes the input word (blanks
    beyond), with the head on cell 1 in the initial state."""
    decoded = _decode_layer(layer(computation, 0))
    if decoded is None:
        return False
    tape, head, state = decoded
    if head != 1 or state != machine.initial_state:
        return False
    if len(tape) < len(word):
        return False
    for position, symbol in enumerate(tape, start=1):
        expected = (word[position - 1] if position <= len(word)
                    else machine.blank)
        if symbol != expected:
            return False
    return True


def phi2_moves(machine: TuringMachine, computation: Bag) -> bool:
    """``phi_2``: every two consecutive layers differ by exactly one
    legal move of the machine."""
    horizon = max_time(computation)
    for time in range(horizon):
        before = _decode_layer(layer(computation, time))
        after = _decode_layer(layer(computation, time + 1))
        if before is None or after is None:
            return False
        if not _is_legal_move(machine, before, after):
            return False
    return True


def _is_legal_move(machine: TuringMachine, before, after) -> bool:
    tape, head, state = before
    new_tape, new_head, new_state = after
    if len(tape) != len(new_tape):
        return False
    key = (state, tape[head - 1])
    if key not in machine.transitions:
        return False
    target_state, written, move = machine.transitions[key]
    expected_tape = list(tape)
    expected_tape[head - 1] = written
    expected_head = head + {"L": -1, "R": 1, "S": 0}[move]
    return (tuple(expected_tape) == new_tape
            and expected_head == new_head
            and target_state == new_state)


def phi3_accepting(machine: TuringMachine, computation: Bag) -> bool:
    """``phi_3``: the computation reaches the accepting state."""
    return any(entry.attribute(4) == machine.accept_state
               for entry in computation.distinct())


def is_legal_accepting_computation(machine: TuringMachine,
                                   computation: Bag,
                                   word: Sequence[str]) -> bool:
    """The Theorem 6.1 selection ``phi_1 and phi_2 and phi_3`` — the
    predicate that picks the accepting runs out of the powerset of all
    candidate 4-tuple sets."""
    if computation.is_empty() or not computation.is_set():
        return False
    return (phi1_initial(machine, computation, word)
            and phi2_moves(machine, computation)
            and phi3_accepting(machine, computation))


# ----------------------------------------------------------------------
# The literal Theorem 6.1 construction, at feasible scale
# ----------------------------------------------------------------------

def candidate_space(machine: TuringMachine, word: Sequence[str],
                    time_bound: int, tape_cells: int,
                    symbols: Optional[Sequence[str]] = None,
                    states: Optional[Sequence[str]] = None) -> List[Tup]:
    """The candidate 4-tuples ``D x D x A x Q`` of Theorem 6.1:
    every [time, cell, symbol, state-or-marker] combination.

    ``symbols``/``states`` default to the machine's full alphabet and
    state set; restricting them (to the symbols a run can actually
    touch) shrinks the powerset the literal construction enumerates.
    """
    symbols = list(symbols if symbols is not None else machine.alphabet)
    states = list(states if states is not None
                  else tuple(machine.states) + (NO_HEAD,))
    space = []
    for time in range(time_bound + 1):
        for position in range(1, tape_cells + 1):
            for symbol in symbols:
                for state in states:
                    space.append(config_tuple(time, position, symbol,
                                              state))
    return space


def select_legal_computations(machine: TuringMachine,
                              word: Sequence[str],
                              time_bound: int, tape_cells: int,
                              symbols: Optional[Sequence[str]] = None,
                              states: Optional[Sequence[str]] = None,
                              budget: int = 1 << 20) -> List[Bag]:
    """Theorem 6.1, run literally: enumerate **every** sub-*set* of the
    candidate space — the relevant slice of ``P(D x D x A x Q)`` — and
    keep those passing ``phi1 and phi2 and phi3``.

    This is hyperexponential by design (the paper's point); ``budget``
    caps the ``2^|space|`` subsets enumerated, so callers must shrink
    the space (tiny machines, restricted symbol sets) to make the
    demonstration feasible.  On deterministic machines the result is
    empty (the machine rejects within the bound) or a single bag — the
    genuine computation encoding.
    """
    space = candidate_space(machine, word, time_bound, tape_cells,
                            symbols, states)
    total = 2 ** len(space)
    if total > budget:
        raise EvaluationError(
            f"the literal construction would enumerate {total} "
            f"candidate sets over {len(space)} tuples; budget is "
            f"{budget}")
    survivors = []
    for mask in range(total):
        chosen = [entry for bit, entry in enumerate(space)
                  if mask & (1 << bit)]
        candidate = Bag(chosen)
        if is_legal_accepting_computation(machine, candidate, word):
            survivors.append(candidate)
    return survivors
