"""Turing machines and their bag encodings (Theorems 5.5, 6.1, 6.6)."""

from repro.machines.encode import (
    computation_bag, is_legal_accepting_computation, layer, max_time,
    phi1_initial, phi2_moves, phi3_accepting,
)
from repro.machines.ifp import (
    CONFIG_TYPE, Ifp, IfpRun, NO_HEAD, TIME_ATOM, config_tuple,
    decode_final_configuration, initial_config_bag, machine_step_expr,
    simulate_via_ifp, transitive_closure_expr,
)
from repro.machines.tm import (
    Configuration, RunResult, TuringMachine, binary_successor,
    last_symbol_machine, parity_machine, run_machine, unary_doubler,
)

__all__ = [
    "computation_bag", "is_legal_accepting_computation", "layer",
    "max_time", "phi1_initial", "phi2_moves", "phi3_accepting",
    "CONFIG_TYPE", "Ifp", "IfpRun", "NO_HEAD", "TIME_ATOM",
    "config_tuple", "decode_final_configuration", "initial_config_bag",
    "machine_step_expr", "simulate_via_ifp", "transitive_closure_expr",
    "Configuration", "RunResult", "TuringMachine",
    "binary_successor", "last_symbol_machine", "parity_machine", "run_machine",
    "unary_doubler",
]
