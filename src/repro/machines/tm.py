"""A deterministic Turing machine substrate (Sections 5-6).

The paper encodes Turing machine computations inside bags (Theorems
5.5, 6.1, 6.6).  This module provides the machines themselves: a small,
explicit single-tape deterministic TM with a step-bounded runner and a
configuration trace, plus a few concrete machines used by the tests,
examples, and benchmarks.

Conventions
-----------
* tape cells are indexed from 1 (the bag encoding of positions uses
  bags of size j, and position 0 would be the empty bag, which the
  monus on bag subtraction cannot distinguish from "stuck");
* a machine halts by entering ``accept_state`` or ``reject_state``;
  a missing transition also halts (implicitly rejecting);
* moves are ``L``, ``R``, or ``S`` (stay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import EvaluationError

__all__ = [
    "Move", "TuringMachine", "Configuration", "RunResult", "run_machine",
    "parity_machine", "unary_doubler", "last_symbol_machine",
    "binary_successor",
]

#: Head moves.
Move = str  # "L" | "R" | "S"

BLANK = "_"


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to
    ``(new_state, new_symbol, move)``.
    """

    states: Tuple[str, ...]
    alphabet: Tuple[str, ...]
    transitions: Mapping[Tuple[str, str], Tuple[str, str, Move]]
    initial_state: str
    accept_state: str
    reject_state: str
    blank: str = BLANK

    def __post_init__(self):
        for (state, symbol), (new_state, new_symbol, move) in \
                self.transitions.items():
            if state not in self.states or new_state not in self.states:
                raise EvaluationError(
                    f"transition mentions unknown state: "
                    f"{state!r} -> {new_state!r}")
            if symbol not in self.alphabet or new_symbol not in \
                    self.alphabet:
                raise EvaluationError(
                    f"transition mentions unknown symbol: "
                    f"{symbol!r} -> {new_symbol!r}")
            if move not in ("L", "R", "S"):
                raise EvaluationError(f"invalid move {move!r}")
        if self.blank not in self.alphabet:
            raise EvaluationError("blank symbol must be in the alphabet")

    def is_halting(self, state: str) -> bool:
        return state in (self.accept_state, self.reject_state)


@dataclass(frozen=True)
class Configuration:
    """A machine configuration: tape contents (1-based, finite view),
    head position, state, and the time stamp."""

    time: int
    tape: Tuple[str, ...]
    head: int
    state: str

    def symbol_under_head(self) -> str:
        return self.tape[self.head - 1]


@dataclass
class RunResult:
    """Outcome of a bounded run."""

    accepted: bool
    halted: bool
    steps: int
    final: Configuration
    trace: List[Configuration] = field(default_factory=list)


def run_machine(machine: TuringMachine, word: Sequence[str],
                max_steps: int = 10_000,
                keep_trace: bool = False,
                tape_cells: Optional[int] = None) -> RunResult:
    """Run a machine on an input word with a step budget.

    ``tape_cells`` fixes the visible tape length (pre-padded with
    blanks); by default the tape holds the word plus ``max_steps``
    blanks, enough for any run within the budget.
    """
    for symbol in word:
        if symbol not in machine.alphabet:
            raise EvaluationError(f"input symbol {symbol!r} not in "
                                  "the machine's alphabet")
    length = tape_cells if tape_cells is not None else (
        len(word) + max_steps + 1)
    tape = list(word) + [machine.blank] * (length - len(word))
    config = Configuration(time=0, tape=tuple(tape), head=1,
                           state=machine.initial_state)
    trace = [config] if keep_trace else []

    steps = 0
    while steps < max_steps and not machine.is_halting(config.state):
        key = (config.state, config.symbol_under_head())
        if key not in machine.transitions:
            break  # stuck: implicit reject
        new_state, new_symbol, move = machine.transitions[key]
        cells = list(config.tape)
        cells[config.head - 1] = new_symbol
        head = config.head + {"L": -1, "R": 1, "S": 0}[move]
        if head < 1:
            raise EvaluationError(
                "machine moved off the left end of the tape "
                "(positions are 1-based)")
        if head > len(cells):
            raise EvaluationError(
                "machine ran off the pre-padded tape; raise max_steps "
                "or tape_cells")
        config = Configuration(time=config.time + 1, tape=tuple(cells),
                               head=head, state=new_state)
        steps += 1
        if keep_trace:
            trace.append(config)

    halted = machine.is_halting(config.state)
    return RunResult(
        accepted=config.state == machine.accept_state,
        halted=halted,
        steps=steps,
        final=config,
        trace=trace,
    )


# ----------------------------------------------------------------------
# Concrete machines
# ----------------------------------------------------------------------

def parity_machine() -> TuringMachine:
    """Accepts words over {1} with an *even* number of 1s.

    Two states toggle on each 1; hitting the blank in the even state
    accepts.
    """
    transitions = {
        ("even", "1"): ("odd", "1", "R"),
        ("odd", "1"): ("even", "1", "R"),
        ("even", BLANK): ("accept", BLANK, "S"),
        ("odd", BLANK): ("reject", BLANK, "S"),
    }
    return TuringMachine(
        states=("even", "odd", "accept", "reject"),
        alphabet=("1", BLANK),
        transitions=transitions,
        initial_state="even",
        accept_state="accept",
        reject_state="reject",
    )


def unary_doubler() -> TuringMachine:
    """Rewrites ``1^n`` to ``2^n`` (marks every 1), then accepts —
    a machine whose *output tape* matters, used to test that the bag
    encoding reproduces tape contents, not just accept bits."""
    transitions = {
        ("scan", "1"): ("scan", "2", "R"),
        ("scan", BLANK): ("accept", BLANK, "S"),
    }
    return TuringMachine(
        states=("scan", "accept", "reject"),
        alphabet=("1", "2", BLANK),
        transitions=transitions,
        initial_state="scan",
        accept_state="accept",
        reject_state="reject",
    )


def last_symbol_machine() -> TuringMachine:
    """Accepts words over {a, b} ending in ``b`` — exercises left
    moves: runs to the end, steps back, and inspects."""
    transitions = {
        # A distinct start state keeps the L move safe: "back" is only
        # reachable from position >= 2 (the empty word rejects at once).
        ("start", "a"): ("right", "a", "R"),
        ("start", "b"): ("right", "b", "R"),
        ("start", BLANK): ("reject", BLANK, "S"),
        ("right", "a"): ("right", "a", "R"),
        ("right", "b"): ("right", "b", "R"),
        ("right", BLANK): ("back", BLANK, "L"),
        ("back", "b"): ("accept", "b", "S"),
        ("back", "a"): ("reject", "a", "S"),
    }
    return TuringMachine(
        states=("start", "right", "back", "accept", "reject"),
        alphabet=("a", "b", BLANK),
        transitions=transitions,
        initial_state="start",
        accept_state="accept",
        reject_state="reject",
    )


def binary_successor() -> TuringMachine:
    """Increments a binary number written LSB-first: runs along the
    carry chain turning 1s into 0s until a 0 or blank absorbs it.

    Exercises in-place rewriting with halting anywhere on the tape —
    the final tape matters, not just acceptance.
    """
    transitions = {
        ("carry", "1"): ("carry", "0", "R"),
        ("carry", "0"): ("accept", "1", "S"),
        ("carry", BLANK): ("accept", "1", "S"),
    }
    return TuringMachine(
        states=("carry", "accept", "reject"),
        alphabet=("0", "1", BLANK),
        transitions=transitions,
        initial_state="carry",
        accept_state="accept",
        reject_state="reject",
    )
