"""The inflationary fixpoint operator and Theorem 6.6.

Theorem 6.6: for every ``k >= 2``, ``BALG^k + IFP`` is Turing complete.
The proof represents machine configurations as bags of 4-tuples
``[time, position, symbol, state]`` — the time and position indices are
*bags* of a fixed constant (so indices of unbounded size are available)
— and iterates a step formula with the inflationary fixpoint
``T(B) = phi(B) u B``.

This module provides all three ingredients, executably:

* :class:`Ifp` — an expression node computing the least fixpoint of
  ``B -> body(B) u B`` (maximal union keeps the iteration
  inflationary), pluggable into the ordinary evaluator;
* :func:`machine_step_expr` — the paper's step formula (a)-(c),
  generated from a concrete :class:`~repro.machines.tm.TuringMachine`:
  cells away from the head keep their symbol at the next time stamp,
  the head cell is rewritten, and the head moves with the new state;
* :func:`simulate_via_ifp` — end-to-end: encode the input, run the
  fixpoint, decode acceptance and the final tape, cross-checkable
  against the native simulator;
* :func:`transitive_closure_expr` — the bounded-fixpoint example the
  conclusion mentions (transitive closure in BALG^1 + fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.errors import BagTypeError, EvaluationError, IfpDivergenceError
from repro.core.expr import (
    AdditiveUnion, Attribute, Const, Dedup, Expr, Lam, Map, MaxUnion,
    Select, Subtraction, Tupling, Var, _as_expr,
)
from repro.core.ops import max_union
from repro.core.types import BagType, TupleType, Type, U, unify
from repro.machines.tm import TuringMachine
from repro.core.derived import project_expr, select_attr_eq_attr

__all__ = [
    "Ifp", "transitive_closure_expr", "TIME_ATOM", "NO_HEAD",
    "config_tuple", "initial_config_bag", "machine_step_expr",
    "simulate_via_ifp", "decode_final_configuration", "IfpRun",
]

#: The constant whose multiplicity encodes time and position indices
#: (the paper's ``a``).
TIME_ATOM = "a"

#: The marker meaning "the head is elsewhere" (the paper's special
#: constant, typeset as a lozenge).
NO_HEAD = "·"


class Ifp(Expr):
    """Inflationary fixpoint: least fixpoint of ``B -> body(B) u B``.

    ``param`` names the iteration variable inside ``body``; ``seed``
    provides the initial bag.  Iteration stops when a pass adds
    nothing; the iteration is *governed* — the evaluator's
    :class:`~repro.guard.ResourceGovernor` ``max_iterations`` (when
    set) and this node's own ``max_iterations`` both bound it, because
    the operator is Turing complete (Theorem 6.6) and genuinely
    diverging formulas are one expression away.  Non-convergence
    raises :class:`~repro.core.errors.IfpDivergenceError` carrying the
    iterations completed and the size of the last iterate.
    """

    __slots__ = ("param", "body", "seed", "max_iterations")

    def __init__(self, param: str, body: Expr, seed: Expr,
                 max_iterations: int = 10_000):
        if not isinstance(param, str) or not param:
            raise BagTypeError("IFP parameter must be a non-empty str")
        self.param = param
        self.body = _as_expr(body)
        self.seed = _as_expr(seed)
        self.max_iterations = max_iterations

    def children(self) -> Tuple[Expr, ...]:
        return (self.seed, self.body)

    def free_vars(self) -> frozenset:
        return (self.seed.free_vars()
                | (self.body.free_vars() - {self.param}))

    def _evaluate(self, evaluator, env):
        current = evaluator.eval(self.seed, env)
        if not isinstance(current, Bag):
            raise BagTypeError("IFP seed must evaluate to a bag")
        governor = getattr(evaluator, "governor", None)
        stats = getattr(evaluator, "stats", None)
        limit = self.max_iterations
        if governor is not None and governor.max_iterations is not None:
            limit = min(limit, governor.max_iterations)
        for completed in range(limit):
            if governor is not None:
                governor.check_cancelled(stats)
            extended = evaluator.bind(env, self.param, current)
            step = evaluator.eval(self.body, extended)
            if not isinstance(step, Bag):
                raise BagTypeError("IFP body must evaluate to a bag")
            grown = max_union(current, step)
            if grown == current:
                return current
            current = grown
        raise IfpDivergenceError(
            f"IFP did not converge within {limit} iterations",
            stats=stats, budget="iterations", limit=limit,
            observed=limit, iterations=limit,
            last_cardinality=current.cardinality,
            last_distinct=current.distinct_count)

    def _infer(self, checker, tenv) -> Type:
        seed_type = checker.infer(self.seed, tenv)
        if not isinstance(seed_type, BagType):
            raise BagTypeError("IFP seed must have a bag type")
        body_type = checker.infer(
            self.body, checker.bind(tenv, self.param, seed_type))
        return unify(seed_type, body_type)

    def _key(self):
        return (self.param, self.body, self.seed)

    def __repr__(self) -> str:
        return f"IFP[{self.param}]({self.body!r}; seed={self.seed!r})"


def transitive_closure_expr(graph: Expr, param: str = "·X") -> Ifp:
    """Transitive closure of a binary relation via bounded fixpoint.

    The conclusion of Section 6 notes transitive closure is expressible
    in the extension of BALG^1 with bounded fixpoint; duplicate
    elimination after each join keeps every iterate a set, so the
    iteration is bounded by the squared domain.
    """
    hop = project_expr(
        select_attr_eq_attr(Var(param) * graph, 2, 3), 1, 4)
    body = Dedup(MaxUnion(Var(param), hop))
    return Ifp(param, body, Dedup(graph))


# ----------------------------------------------------------------------
# Theorem 6.6: machine configurations as bags
# ----------------------------------------------------------------------

def _index_bag(value: int) -> Bag:
    """An index (time or position) as a bag of TIME_ATOMs."""
    return Bag.single(TIME_ATOM, value) if value else EMPTY_BAG


def config_tuple(time: int, position: int, symbol: str,
                 state: str = NO_HEAD) -> Tup:
    """One cell of one configuration: ``[b_time, b_position, symbol,
    state-or-marker]``."""
    return Tup(_index_bag(time), _index_bag(position), symbol, state)


def initial_config_bag(machine: TuringMachine, word: Sequence[str],
                       tape_cells: int) -> Bag:
    """The time-0 layer: the input word on cells 1..len(word), blanks
    beyond, head on cell 1 in the initial state."""
    if tape_cells < max(len(word), 1):
        raise BagTypeError("tape_cells must cover the input word")
    tuples = []
    for position in range(1, tape_cells + 1):
        symbol = (word[position - 1] if position <= len(word)
                  else machine.blank)
        state = machine.initial_state if position == 1 else NO_HEAD
        tuples.append(config_tuple(0, position, symbol, state))
    return Bag(tuples)


def _latest_layer(config_var: str) -> Expr:
    """``sigma_{ no tuple one tick later }(X)``: the tuples of the most
    recent time stamp.  The inner selection binds the outer tuple ``u``
    lexically — exactly the nested-lambda pattern of Section 4."""
    one_tick_later = Select(
        Lam("·v", Attribute(Var("·v"), 1)),
        Lam("·v", AdditiveUnion(Attribute(Var("·u"), 1),
                                Const(Bag.of(TIME_ATOM)))),
        Var(config_var))
    return Select(Lam("·u", one_tick_later),
                  Lam("·u", Const(EMPTY_BAG)),
                  Var(config_var))


def _tick(expr: Expr) -> Expr:
    """``t (+) [[a]]``: advance a time/position index bag by one."""
    return AdditiveUnion(expr, Const(Bag.of(TIME_ATOM)))


def _untick(expr: Expr) -> Expr:
    """``t - [[a]]``: move a position index bag one step left."""
    return Subtraction(expr, Const(Bag.of(TIME_ATOM)))


def machine_step_expr(machine: TuringMachine,
                      config_var: str = "X") -> Expr:
    """The step formula of Theorem 6.6, as one algebra expression.

    For each instruction ``(q, s) -> (q2, s2, move)`` it emits, over
    the latest configuration layer:

    (b) the head cell rewritten: ``[t+1, j, s2, marker-or-q2]``;
    (c) the cell the head moves onto: ``[t+1, j', old symbol, q2]``
        (for L/R moves, found by joining the head tuple with the
        layer on ``position = j -+ 1``);
    (a) every other cell carried over unchanged: ``[t+1, i, x, y]``.

    The union over instructions is the ``M(B)`` of the proof; when no
    instruction applies (halting state) the expression is empty, so the
    surrounding IFP reaches its fixpoint.
    """
    layer = _latest_layer(config_var)
    per_rule: List[Expr] = []
    for (state, symbol), (new_state, new_symbol, move) in \
            sorted(machine.transitions.items()):
        head = Select(Lam("·h", Attribute(Var("·h"), 4)),
                      Lam("·h", Const(state)),
                      Select(Lam("·h", Attribute(Var("·h"), 3)),
                             Lam("·h", Const(symbol)),
                             layer))
        pairs = head * layer  # arity 8: head attrs 1-4, cell attrs 5-8

        if move == "S":
            rewritten = Map(
                Lam("·u", Tupling(_tick(Attribute(Var("·u"), 1)),
                                  Attribute(Var("·u"), 2),
                                  Const(new_symbol),
                                  Const(new_state))),
                head)
            unchanged_src = Select(
                Lam("·w", Attribute(Var("·w"), 6)),
                Lam("·w", Attribute(Var("·w"), 2)),
                pairs, op="ne")
            per_rule.extend([rewritten, _carry_over(unchanged_src)])
            continue

        target_pos = (_tick if move == "R" else _untick)(
            Attribute(Var("·w"), 2))
        # (b) the vacated head cell, rewritten and unmarked
        rewritten = Map(
            Lam("·u", Tupling(_tick(Attribute(Var("·u"), 1)),
                              Attribute(Var("·u"), 2),
                              Const(new_symbol),
                              Const(NO_HEAD))),
            head)
        # (c) the cell the head arrives at
        arrival_pairs = Select(Lam("·w", Attribute(Var("·w"), 6)),
                               Lam("·w", target_pos),
                               pairs)
        arrived = Map(
            Lam("·w", Tupling(_tick(Attribute(Var("·w"), 1)),
                              Attribute(Var("·w"), 6),
                              Attribute(Var("·w"), 7),
                              Const(new_state))),
            arrival_pairs)
        # (a) all other cells carried over
        unchanged_src = Select(
            Lam("·w", Attribute(Var("·w"), 6)),
            Lam("·w", target_pos),
            Select(Lam("·w", Attribute(Var("·w"), 6)),
                   Lam("·w", Attribute(Var("·w"), 2)),
                   pairs, op="ne"),
            op="ne")
        per_rule.extend([rewritten, arrived, _carry_over(unchanged_src)])

    if not per_rule:
        return Const(EMPTY_BAG)
    step = per_rule[0]
    for piece in per_rule[1:]:
        step = MaxUnion(step, piece)
    return step


def _carry_over(pairs: Expr) -> Expr:
    """Re-stamp a (head x cell) pair's cell at the next time."""
    return Map(
        Lam("·w", Tupling(_tick(Attribute(Var("·w"), 1)),
                          Attribute(Var("·w"), 6),
                          Attribute(Var("·w"), 7),
                          Attribute(Var("·w"), 8))),
        pairs)


#: The type of a configuration bag (bag nesting 2, as Theorem 6.6
#: requires for BALG^2 + IFP).
CONFIG_TYPE = BagType(TupleType((BagType(U), BagType(U), U, U)))


@dataclass
class IfpRun:
    """Outcome of an algebra-driven machine run."""

    accepted: bool
    steps: int
    final_state: str
    final_tape: Tuple[str, ...]
    configurations: Bag


def simulate_via_ifp(machine: TuringMachine, word: Sequence[str],
                     max_steps: int = 50,
                     tape_cells: Optional[int] = None,
                     governor=None) -> IfpRun:
    """Run a Turing machine entirely inside the algebra (Theorem 6.6).

    Builds the initial configuration bag, closes it under the step
    formula with :class:`Ifp`, and decodes the final layer.  An
    optional :class:`~repro.guard.ResourceGovernor` bounds the run —
    the simulated machine may, after all, not halt.
    """
    from repro.core.eval import Evaluator

    cells = tape_cells if tape_cells is not None else (
        len(word) + max_steps + 1)
    seed = initial_config_bag(machine, word, cells)
    fixpoint = Ifp("X", MaxUnion(Var("X"), machine_step_expr(machine, "X")),
                   Const(seed), max_iterations=max_steps + 2)
    configurations = Evaluator(governor=governor).run(fixpoint)
    steps, state, tape = decode_final_configuration(configurations, cells)
    return IfpRun(
        accepted=state == machine.accept_state,
        steps=steps,
        final_state=state,
        final_tape=tape,
        configurations=configurations,
    )


def decode_final_configuration(
        configurations: Bag,
        tape_cells: int) -> Tuple[int, str, Tuple[str, ...]]:
    """Extract (final time, state, tape) from a configuration bag."""
    latest = -1
    for entry in configurations.distinct():
        latest = max(latest, entry.attribute(1).cardinality)
    if latest < 0:
        raise EvaluationError("empty configuration bag")
    tape: List[Optional[str]] = [None] * tape_cells
    state = NO_HEAD
    for entry in configurations.distinct():
        if entry.attribute(1).cardinality != latest:
            continue
        position = entry.attribute(2).cardinality
        tape[position - 1] = entry.attribute(3)
        if entry.attribute(4) != NO_HEAD:
            state = entry.attribute(4)
    if any(symbol is None for symbol in tape):
        raise EvaluationError(
            "final configuration layer is missing tape cells")
    return latest, state, tuple(tape)  # type: ignore[return-value]
