"""Workspace-backed differential cases.

The plain fuzz loop (:func:`~repro.testkit.generate.generate_case`)
builds its databases in memory, so it can never catch a bug in the
storage layer: a loader that loses duplicates, a canonical row order
that reorders multiplicities, a catalog whose statistics steer the
planner into a plan that drops rows.  This module closes that gap by
drawing every case database from a **persisted workspace round-trip**
— relations are synthesized by :mod:`repro.storage.generate`, written
to disk, reloaded through :class:`~repro.storage.Workspace`, and only
then handed to the differential harness.  Any divergence between the
oracle and an engine backend on such a case implicates either the
planner (statistics-driven, because the harness threads the workspace
catalog through compilation) or the storage round-trip itself.

Cases stay inside BALG^1 (flat relations of atoms), reusing the
``balg1_expr`` grammar with the input variable renamed to a workspace
relation; two same-arity relations are combined with a bag set
operation so multi-relation statistics matter.  ``(seed, index)``
reproduces a case byte-for-byte given the same workspace, exactly
like the in-memory generator.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.bag import Bag
from repro.core.expr import (
    AdditiveUnion, Attribute, Const, Expr, Intersection, Lam, Map,
    MaxUnion, Select, Subtraction, Var,
)
from repro.core.types import type_of
from repro.storage import RelationSpec, Workspace
from repro.testkit.generate import (
    INPUT_NAME, Case, balg1_expr, subterms_with_rebuild,
)

__all__ = [
    "FUZZ_SPECS", "seeded_workspace", "workspace_case", "rename_free",
]

#: Relations of the default fuzz workspace: small enough that a
#: Cartesian square stays far below the fuzz limits
#: (``max_size=60k``), skewed enough that bag statistics diverge from
#: set statistics (the whole point of running against a catalog).
FUZZ_SPECS: Tuple[RelationSpec, ...] = (
    RelationSpec("R", rows=24, arity=2, distinct=8, domain=5,
                 skew="uniform"),
    RelationSpec("S", rows=24, arity=2, distinct=6, domain=5,
                 skew="zipfian", zipf_s=1.3),
    RelationSpec("T", rows=12, arity=1, distinct=5, domain=5,
                 skew="zipfian", zipf_s=1.1),
)


def seeded_workspace(root: str, seed: int,
                     specs: Tuple[RelationSpec, ...] = FUZZ_SPECS,
                     ) -> Workspace:
    """Create (or reopen) the fuzz workspace at ``root``.

    A fresh directory gets the :data:`FUZZ_SPECS` relations
    synthesized from ``seed`` and ANALYZEd, so the catalog is
    populated before the first case compiles; an existing workspace is
    simply reopened — its relations, whatever they are, become the
    case databases (that is how the CLI fuzzes user-supplied data).
    """
    try:
        workspace = Workspace.open(root)
    except Exception:
        workspace = Workspace.create(root, name=f"fuzz-{seed}")
        workspace.generate(specs, seed=seed)
        workspace.analyze()
    return workspace


def rename_free(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Capture-avoiding free-variable renaming (a lambda's parameter
    shadows any mapping entry of the same name inside its body)."""
    if isinstance(expr, Var):
        target = mapping.get(expr.name)
        return expr if target is None else Var(target)
    if isinstance(expr, Lam):
        inner = {name: target for name, target in mapping.items()
                 if name != expr.param}
        if not inner:
            return expr
        body = rename_free(expr.body, inner)
        return expr if body is expr.body else Lam(expr.param, body)
    # Map/Select carry lambdas; subterms_with_rebuild exposes their
    # *bodies* (the shrinker's view), which would lose the binder —
    # recurse through the Lam nodes instead so shadowing applies
    if isinstance(expr, Map):
        lam = rename_free(expr.lam, mapping)
        operand = rename_free(expr.operand, mapping)
        if lam is expr.lam and operand is expr.operand:
            return expr
        return Map(lam, operand)
    if isinstance(expr, Select):
        left = rename_free(expr.left, mapping)
        right = rename_free(expr.right, mapping)
        operand = rename_free(expr.operand, mapping)
        if (left is expr.left and right is expr.right
                and operand is expr.operand):
            return expr
        return Select(left, right, operand, op=expr.op)
    position = 0
    while True:
        pairs = list(subterms_with_rebuild(expr))
        if position >= len(pairs):
            return expr
        child, rebuild = pairs[position]
        renamed = rename_free(child, mapping)
        if renamed is not child:
            expr = rebuild(renamed)
        position += 1


def _flat_arities(database: Dict[str, Bag]) -> Dict[str, int]:
    """Relations usable by the BALG^1 grammar: non-empty, flat,
    uniform arity."""
    out: Dict[str, int] = {}
    for name, bag in database.items():
        arities = {getattr(element, "arity", 0)
                   for element in bag.distinct()}
        if len(arities) == 1 and 0 not in arities:
            out[name] = arities.pop()
    return out


def _domain_sample(bag: Bag, rng: random.Random) -> object:
    """A constant that actually occurs in the relation, so generated
    selections hit the catalog's most-common-value statistics."""
    element = rng.choice(sorted(bag.distinct(), key=repr))
    values = list(element.items())
    return rng.choice(values)


def workspace_case(workspace: Workspace, seed: int, index: int = 0,
                   max_depth: int = 4) -> Case:
    """One differential case whose database is the workspace's
    round-tripped relations.

    The expression is a BALG^1 term over one relation (via
    :func:`balg1_expr` with the input renamed), usually combined with
    a second same-arity relation through a bag set operation, and
    often wrapped in a selection comparing an attribute against a
    value drawn from the data — the shape the catalog's selectivity
    oracle estimates.
    """
    rng = random.Random(seed * 1_000_003 + index)
    database = workspace.database()
    arities = _flat_arities(database)
    if not arities:
        raise ValueError(f"workspace {workspace.name!r} has no flat "
                         f"non-empty relations to fuzz over")
    primary = rng.choice(sorted(arities))
    arity = arities[primary]
    expr = rename_free(
        balg1_expr(rng, arity=arity, input_arity=arity,
                   max_depth=max_depth),
        {INPUT_NAME: primary})
    partners = [name for name in sorted(arities)
                if name != primary and arities[name] == arity]
    if partners and rng.random() < 0.6:
        partner = rng.choice(partners)
        second = rename_free(
            balg1_expr(rng, arity=arity, input_arity=arity,
                       max_depth=2),
            {INPUT_NAME: partner})
        combine = rng.choice((AdditiveUnion, MaxUnion, Intersection,
                              Subtraction))
        expr = (combine(expr, second) if rng.random() < 0.5
                else combine(second, expr))
    if rng.random() < 0.5:
        attribute = rng.randint(1, arity)
        constant = _domain_sample(database[primary], rng)
        expr = Select(Lam("·w", Attribute(Var("·w"), attribute)),
                      Lam("·w", Const(constant)), expr,
                      op=rng.choice(("eq", "ne")))
    schema = {name: type_of(bag) for name, bag in database.items()}
    return Case(schema=schema, database=database, expr=expr,
                fragment="balg1", seed=seed, index=index)
