"""Metamorphic identities: Section 3's algebraic laws as test oracles.

Differential testing only detects *disagreement*; if the tree-walker
oracle itself were wrong the backends could agree on the wrong bag.
The laws here are independent ground truth: each takes the generated
expression ``e`` and checks an identity the paper proves must hold for
*every* bag, so a violation indicts the evaluator no matter how many
backends agree with it.

The catalogue (paper references in each law's ``ref``):

* ``dedup-idempotent``     — ``eps(eps(e)) = eps(e)`` (Section 2).
* ``delta-beta``           — ``delta(MAP_beta(e)) = e``: flattening
  the bag of singletons restores the bag (Section 2's constructors).
* ``monus-self``           — ``e - e = {{}}`` (monus semantics, §2).
* ``union-monus``          — ``(e (+) e) - e = e``: additive union
  then monus cancels exactly (Section 2).
* ``max-via-monus``        — ``e1 u e2 = e1 (+) (e2 - e1)``:
  ``max(m, n) = m + (n ∸ m)`` pointwise (Section 2).
* ``inter-via-monus``      — ``e1 n e2 = e1 - (e1 - e2)``:
  ``min(m, n) = m ∸ (m ∸ n)`` pointwise (Section 2).
* ``derived-dedup``        — Proposition 3.1: ``eps`` written with
  powerset instead of the eps operator.
* ``derived-subtraction``  — Section 3: monus from powerset +
  selection.
* ``derived-additive-union`` — Section 3: ``(+)`` from maximal union
  via disjoint tagging.
* ``count-consistency``    — Section 3's COUNT aggregate equals the
  bag's cardinality.
* ``sum-consistency``      — Section 3's SUM (``delta``) equals the
  multiplicity-weighted flattening.
* ``avg-consistency``      — Section 3's AVG on integers-as-bags
  built from the case's cardinality.

Powerset-based laws are size-gated: the identities require expanding
``P(e)``, so they only run when the observed value is small; a
governed failure during a law marks it ``skipped``, never ``failed``.

Semirings: the catalogue is parameterized over the multiplicity
domain via :func:`laws_for_semiring`.  Most Section 2 identities hold
in any naturally ordered commutative semiring, but not all — additive
union then monus cancels exactly only in *cancellative* semirings
(Bool and Tropical both break ``union-monus``), the meet-via-monus
identity fails in Tropical, and the Section 3 derived-operator and
aggregate constructions are counting arguments that only make sense
over N.  Each instance declares its broken laws in
``Semiring.unsound_laws``; idempotent instances gain the
``union-idempotent`` law (``e (+) e = e``) that is *false* over N —
the applicability gates must cut both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.bag import Bag
from repro.core.derived import (
    average_expr, bag_as_int, count_expr, derived_additive_union,
    derived_dedup, derived_subtraction, int_as_bag, sum_expr,
)
from repro.core.errors import (
    GovernedError, ReproError, ResourceLimitError,
)
from repro.core.expr import (
    AdditiveUnion, BagDestroy, Bagging, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Subtraction, Var,
)
from repro.core.types import BagType, TupleType, Type, UNKNOWN

__all__ = ["LAWS", "LawResult", "check_laws", "laws_for_semiring"]

#: Laws that expand a powerset only run below these observed sizes.
_POWERSET_CARD_GATE = 6
_POWERSET_DISTINCT_GATE = 5


@dataclass
class LawResult:
    """Outcome of one metamorphic law on one case."""

    name: str
    ref: str
    status: str  # "ok" | "failed" | "skipped"
    detail: str = ""


class _Skip(Exception):
    """Raised by a law when its applicability gate rejects the case."""


def _concrete(typ: Type) -> bool:
    """No UNKNOWN component — the derived-operator constructions are
    type-directed and need the element type fully known."""
    if typ is UNKNOWN:
        return False
    if isinstance(typ, BagType):
        return _concrete(typ.element)
    if isinstance(typ, TupleType):
        return all(_concrete(attr) for attr in typ.attributes)
    return True


def _gate_powerset(value: Bag) -> None:
    if (value.cardinality > _POWERSET_CARD_GATE
            or value.distinct_count > _POWERSET_DISTINCT_GATE):
        raise _Skip("powerset law gated by result size")


# -- the laws ----------------------------------------------------------
# each: fn(expr, result_type, value, evaluate) -> Optional[str]


def _law_dedup_idempotent(expr, typ, value, evaluate):
    lhs = evaluate(Dedup(Dedup(expr)))
    rhs = evaluate(Dedup(expr))
    if lhs != rhs:
        return f"eps(eps(e)) = {lhs!r} but eps(e) = {rhs!r}"
    return None


def _law_delta_beta(expr, typ, value, evaluate):
    rebuilt = evaluate(
        BagDestroy(Map(Lam("w0", Bagging(Var("w0"))), expr)))
    if rebuilt != value:
        return f"delta(MAP_beta(e)) = {rebuilt!r} != e = {value!r}"
    return None


def _law_monus_self(expr, typ, value, evaluate):
    diff = evaluate(Subtraction(expr, expr))
    if not (isinstance(diff, Bag) and diff.is_empty()):
        return f"e - e = {diff!r}, expected the empty bag"
    return None


def _law_union_monus(expr, typ, value, evaluate):
    back = evaluate(Subtraction(AdditiveUnion(expr, expr), expr))
    if back != value:
        return f"(e (+) e) - e = {back!r} != e = {value!r}"
    return None


def _law_max_via_monus(expr, typ, value, evaluate):
    other = Dedup(expr)
    lhs = evaluate(MaxUnion(expr, other))
    rhs = evaluate(AdditiveUnion(expr, Subtraction(other, expr)))
    if lhs != rhs:
        return f"e u eps(e) = {lhs!r} but e (+) (eps(e) - e) = {rhs!r}"
    return None


def _law_inter_via_monus(expr, typ, value, evaluate):
    other = Dedup(expr)
    lhs = evaluate(Intersection(expr, other))
    rhs = evaluate(Subtraction(expr, Subtraction(expr, other)))
    if lhs != rhs:
        return f"e n eps(e) = {lhs!r} but e - (e - eps(e)) = {rhs!r}"
    return None


def _law_derived_dedup(expr, typ, value, evaluate):
    if not _concrete(typ.element):
        raise _Skip("element type not fully known")
    _gate_powerset(value)
    derived = evaluate(derived_dedup(expr, typ.element))
    native = evaluate(Dedup(expr))
    if derived != native:
        return (f"Prop 3.1 dedup = {derived!r} but native eps = "
                f"{native!r}")
    return None


def _law_derived_subtraction(expr, typ, value, evaluate):
    _gate_powerset(value)
    other = Dedup(expr)
    derived = evaluate(derived_subtraction(expr, other))
    native = evaluate(Subtraction(expr, other))
    if derived != native:
        return (f"Section 3 subtraction = {derived!r} but native "
                f"monus = {native!r}")
    return None


def _law_derived_additive_union(expr, typ, value, evaluate):
    element = typ.element
    if not isinstance(element, TupleType) or not element.attributes:
        raise _Skip("element is not a tuple")
    if not _concrete(element):
        raise _Skip("element type not fully known")
    derived = evaluate(
        derived_additive_union(expr, expr, element.arity))
    native = evaluate(AdditiveUnion(expr, expr))
    if derived != native:
        return (f"tagging identity = {derived!r} but native (+) = "
                f"{native!r}")
    return None


def _law_count_consistency(expr, typ, value, evaluate):
    counted = evaluate(count_expr(expr))
    observed = bag_as_int(counted)
    if observed != value.cardinality:
        return (f"COUNT(e) = {observed} but cardinality is "
                f"{value.cardinality}")
    return None


def _law_sum_consistency(expr, typ, value, evaluate):
    if not isinstance(typ.element, BagType):
        raise _Skip("element is not a bag")
    flattened = evaluate(sum_expr(expr))
    counts: dict = {}
    for inner, outer_count in value.items():
        if not isinstance(inner, Bag):
            raise _Skip("observed elements are not bags")
        for member, inner_count in inner.items():
            counts[member] = (counts.get(member, 0)
                              + outer_count * inner_count)
    expected = Bag.from_counts(counts)
    if flattened != expected:
        return f"SUM(e) = {flattened!r}, expected {expected!r}"
    return None


def _law_avg_consistency(expr, typ, value, evaluate):
    if value.cardinality > 5:
        raise _Skip("avg law gated by result size")
    low = value.cardinality + 1
    high = low + 2
    operand = Const(Bag([int_as_bag(low), int_as_bag(high)]))
    averaged = evaluate(average_expr(operand))
    observed = bag_as_int(averaged)
    if observed != low + 1:
        return (f"AVG of {{{low}, {high}}} = {observed}, expected "
                f"{low + 1}")
    return None


def _law_union_idempotent(expr, typ, value, evaluate):
    doubled = evaluate(AdditiveUnion(expr, expr))
    if doubled != value:
        return (f"e (+) e = {doubled!r} != e = {value!r} "
                f"(idempotent addition)")
    return None


#: name -> (paper reference, law function).
LAWS: Sequence[Tuple[str, str, Callable]] = (
    ("dedup-idempotent", "Section 2", _law_dedup_idempotent),
    ("delta-beta", "Section 2", _law_delta_beta),
    ("monus-self", "Section 2", _law_monus_self),
    ("union-monus", "Section 2", _law_union_monus),
    ("max-via-monus", "Section 2", _law_max_via_monus),
    ("inter-via-monus", "Section 2", _law_inter_via_monus),
    ("derived-dedup", "Proposition 3.1", _law_derived_dedup),
    ("derived-subtraction", "Section 3", _law_derived_subtraction),
    ("derived-additive-union", "Section 3",
     _law_derived_additive_union),
    ("count-consistency", "Section 3", _law_count_consistency),
    ("sum-consistency", "Section 3", _law_sum_consistency),
    ("avg-consistency", "Section 3", _law_avg_consistency),
)

#: Counting arguments over N: the derived-operator constructions
#: enumerate powersets by multiplicity and the aggregates read
#: cardinalities, neither of which transfers to annotated domains.
_N_ONLY_LAWS = frozenset({
    "derived-dedup", "derived-subtraction", "derived-additive-union",
    "count-consistency", "sum-consistency", "avg-consistency",
})

#: ``(e (+) e) - e = e`` needs cancellative addition even before the
#: per-instance ``unsound_laws`` veto is consulted.
_CANCELLATIVE_LAWS = frozenset({"union-monus"})


def laws_for_semiring(sr=None) -> Sequence[Tuple[str, str, Callable]]:
    """The law subset applicable under one semiring instance.

    ``None`` (or the N instance) keeps the full catalogue.  Otherwise
    the N-only counting laws drop out, every law the instance declares
    in ``unsound_laws`` drops out, the cancellation law requires the
    ``cancellative`` flag, and idempotent instances gain
    ``union-idempotent``.  Pass the result as ``check_laws``'s
    ``laws`` argument together with an ``evaluate`` that runs under
    the same semiring.
    """
    if sr is None or sr.name == "nat":
        return LAWS
    selected = [
        (name, ref, law) for name, ref, law in LAWS
        if name not in _N_ONLY_LAWS
        and name not in sr.unsound_laws
        and (name not in _CANCELLATIVE_LAWS or sr.cancellative)
    ]
    if sr.idempotent_add:
        selected.append(("union-idempotent",
                         "semiring idempotency",
                         _law_union_idempotent))
    return tuple(selected)


def check_laws(case: Any, result_type: Type, value: Bag,
               evaluate: Callable[[Expr], Any],
               laws: Optional[Sequence[Tuple[str, str, Callable]]]
               = None) -> List[LawResult]:
    """Apply every applicable law to one case.

    ``evaluate`` runs an expression against the case's database under
    the harness limits; governed failures inside a law mark it
    ``skipped`` (the identity was too expensive to check), any other
    :class:`ReproError` or an unequal value marks it ``failed``.
    """
    if not isinstance(result_type, BagType):  # pragma: no cover
        return []
    results: List[LawResult] = []
    for name, ref, law in (laws if laws is not None else LAWS):
        try:
            detail = law(case.expr, result_type, value, evaluate)
        except _Skip as skip:
            results.append(LawResult(name, ref, "skipped", str(skip)))
            continue
        except (GovernedError, ResourceLimitError) as error:
            results.append(LawResult(
                name, ref, "skipped",
                f"governed: {type(error).__name__}"))
            continue
        except ReproError as error:
            results.append(LawResult(
                name, ref, "failed",
                f"law raised {type(error).__name__}: {error}"))
            continue
        if detail is None:
            results.append(LawResult(name, ref, "ok"))
        else:
            results.append(LawResult(name, ref, "failed", detail))
    return results
