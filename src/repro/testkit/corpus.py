"""Persisted regression corpus: failing cases as replayable JSON.

A fuzz mismatch is only worth anything if it survives the process that
found it.  Every failing case is minimized (``generate.shrink_case``)
and written to ``tests/corpus/`` as a small JSON document:

* the expression in *surface syntax* (human-readable, diff-able, and
  parsed back with :func:`repro.surface.parse`);
* the schema as ``parse_type`` strings;
* the database as tagged JSON values (canonically sorted, so the file
  is deterministic for a given case).

``tests/test_corpus.py`` globs the directory and replays every case
through the differential harness as ordinary tier-1 pytest tests, so a
once-found bug can never quietly return.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.bag import Bag, Tup, canonical_key
from repro.core.errors import ReproError
from repro.core.types import Type, parse_type
from repro.surface import parse, to_text
from repro.testkit.generate import Case

__all__ = [
    "case_to_json", "case_from_json", "save_case", "load_corpus",
    "value_to_json", "value_from_json", "corpus_paths",
]

_FORMAT = 1


# ----------------------------------------------------------------------
# Value (de)serialization: tagged JSON
# ----------------------------------------------------------------------

def value_to_json(value: Any) -> Any:
    """``["atom", v] | ["tup", [...]] | ["bag", [[elem, count], ...]]``
    with bag entries canonically sorted for deterministic files."""
    if isinstance(value, Bag):
        entries = sorted(value.items(),
                         key=lambda item: canonical_key(item[0]))
        return ["bag", [[value_to_json(element), count]
                        for element, count in entries]]
    if isinstance(value, Tup):
        return ["tup", [value_to_json(item) for item in value.items()]]
    if isinstance(value, (str, int)) and not isinstance(value, bool):
        return ["atom", value]
    raise ReproError(
        f"value {value!r} has no corpus JSON form "
        "(atoms must be str or int)")


def value_from_json(data: Any) -> Any:
    if (not isinstance(data, list) or len(data) != 2
            or data[0] not in ("atom", "tup", "bag")):
        raise ReproError(f"malformed corpus value: {data!r}")
    tag, payload = data
    if tag == "atom":
        if not isinstance(payload, (str, int)) \
                or isinstance(payload, bool):
            raise ReproError(f"malformed corpus atom: {payload!r}")
        return payload
    if tag == "tup":
        return Tup(*(value_from_json(item) for item in payload))
    return Bag.from_counts({value_from_json(element): count
                            for element, count in payload})


# ----------------------------------------------------------------------
# Case (de)serialization
# ----------------------------------------------------------------------

def case_to_json(case: Case,
                 meta: Optional[Mapping[str, Any]] = None) -> Dict:
    document: Dict[str, Any] = {
        "format": _FORMAT,
        "fragment": case.fragment,
        "expr": to_text(case.expr),
        "schema": {name: repr(typ)
                   for name, typ in sorted(case.schema.items())},
        "database": {name: value_to_json(bag)
                     for name, bag in sorted(case.database.items())},
    }
    if case.seed is not None:
        document["seed"] = case.seed
    if case.index is not None:
        document["index"] = case.index
    if meta:
        document["meta"] = dict(meta)
    return document


def case_from_json(document: Mapping[str, Any]) -> Case:
    if document.get("format") != _FORMAT:
        raise ReproError(
            f"unsupported corpus format {document.get('format')!r}")
    schema: Dict[str, Type] = {
        name: parse_type(text)
        for name, text in document.get("schema", {}).items()}
    database: Dict[str, Bag] = {}
    for name, data in document.get("database", {}).items():
        value = value_from_json(data)
        if not isinstance(value, Bag):
            raise ReproError(
                f"database entry {name!r} is not a bag")
        database[name] = value
    return Case(schema=schema, database=database,
                expr=parse(document["expr"]),
                fragment=document.get("fragment", "balg2"),
                seed=document.get("seed"),
                index=document.get("index"))


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------

def _slug(case: Case, meta: Optional[Mapping[str, Any]]) -> str:
    if meta and meta.get("name"):
        base = str(meta["name"])
    elif case.seed is not None:
        base = f"{case.fragment}_seed{case.seed}_case{case.index}"
    else:
        base = f"{case.fragment}_adhoc_{abs(hash(case.expr)) % 10**8}"
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", base)


def save_case(case: Case, directory: str,
              meta: Optional[Mapping[str, Any]] = None) -> str:
    """Write one case (plus free-form ``meta`` — the mismatch kind,
    backend, detail...) as ``<directory>/<slug>.json``; returns the
    path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, _slug(case, meta) + ".json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case_to_json(case, meta), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return path


def corpus_paths(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory) if name.endswith(".json"))


def load_corpus(directory: str
                ) -> List[Tuple[str, Case, Dict[str, Any]]]:
    """Every ``*.json`` case in a directory as
    ``(path, case, meta)`` triples, sorted by file name."""
    out = []
    for path in corpus_paths(directory):
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        out.append((path, case_from_json(document),
                    dict(document.get("meta", {}))))
    return out
