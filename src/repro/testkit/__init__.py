"""``repro.testkit`` — conformance tooling for the bag algebra.

The repo now has several independently written implementations of the
same semantics: the tree-walker oracle (:mod:`repro.core.eval`), the
physical kernel engine (:mod:`repro.engine`), the rewrite optimizer
(:mod:`repro.optimizer`), the surface syntax (:mod:`repro.surface`)
and the SQL front end (:mod:`repro.sql`).  This package cross-checks
them:

* :mod:`repro.testkit.generate` — a seeded, typed expression generator
  producing well-typed BALG^1/2/3 cases over multi-relation schemas
  with nested bag types, plus a greedy structural shrinker
  (independent of Hypothesis, so failures replay byte-for-byte);
* :mod:`repro.testkit.differential` — the N-way harness running each
  case through every backend and comparing bags;
* :mod:`repro.testkit.metamorphic` — Section 3 algebraic laws applied
  as metamorphic relations, so bugs are caught even if the oracle
  itself is wrong;
* :mod:`repro.testkit.corpus` — JSON persistence of minimized failing
  cases, replayed as tier-1 regression tests from ``tests/corpus/``;
* :mod:`repro.testkit.cli` — the ``repro fuzz`` entry point.
"""

from repro.testkit.corpus import (
    case_from_json, case_to_json, load_corpus, save_case,
)
from repro.testkit.differential import (
    BackendOutcome, CaseReport, Harness, Mismatch, RunSummary,
)
from repro.testkit.generate import (
    Case, CaseGenerator, balg1_expr, flat_input_bag, generate_case,
    shrink_case,
)
from repro.testkit.metamorphic import LAWS, LawResult, check_laws

__all__ = [
    "Case", "CaseGenerator", "generate_case", "shrink_case",
    "balg1_expr", "flat_input_bag",
    "Harness", "BackendOutcome", "CaseReport", "Mismatch", "RunSummary",
    "LAWS", "LawResult", "check_laws",
    "case_to_json", "case_from_json", "save_case", "load_corpus",
]
