"""The N-way differential harness.

Every case runs through up to ten independently written evaluation
paths:

======================  ================================================
backend                 what it exercises
======================  ================================================
``oracle``              the tree-walker of :mod:`repro.core.eval`
``engine``              the physical kernel engine, *cold* (no cache)
``engine-warm``         the engine through a shared plan cache, twice —
                        the second run must hit the cache, so canonical
                        keys and plan/data separation are on trial
``engine-parallel``     the morsel-driven parallel executor (2 workers,
                        threshold 0 so exchanges fire on tiny bags) —
                        hash partitioning, segment programs, budget
                        splitting, and the ordered gather on trial
``engine-chaos``        the parallel executor under *injected worker
                        crashes* (a seeded per-case
                        :class:`~repro.guard.ChaosPlan`) with the
                        resilience layer armed — morsel retry, the
                        degradation ladder, and demotion accounting
                        on trial: results must stay bag-equal no
                        matter which workers died
``engine-opt0``         the planner pipeline with every rewrite
                        disabled and naive lowering (no join fusion,
                        no reordering, no sharing) — the purely
                        syntax-directed plan on trial against the
                        optimized ones
``engine-codegen``      the columnar codegen engine (opt level 3):
                        plans compile to fused Python closures over
                        the bulk kernels of
                        :mod:`repro.engine.columnar`, with
                        powerset/flatten subtrees running as stream
                        barrier leaves — segment fusion, the
                        super-kernels (sym-diff-dedup, in-place
                        dedup-union, scale folding), and the
                        dict/column currency conversions on trial
``optimized``           the planner's full rewrite fixpoint (opt
                        level 2), then the oracle on the rewritten
                        tree (rule soundness)
``surface``             ``parse(to_text(e))`` — printer/parser round
                        trip, then the oracle on the reparse
``sql``                 where the expression matches a SQL-able shape,
                        the mini-SQL pipeline end to end
======================  ================================================

``engine-opt2`` (the physical engine at opt level 2) is also
recognized — CI's conformance leg fuzzes ``oracle`` vs ``engine-opt0``
vs ``engine-opt2`` — but is not in :data:`DEFAULT_BACKENDS`, since
``optimized`` already covers rewrite soundness there.  So is
``engine-parallel-codegen`` (the parallel executor under the opt-3
pass config): workers execute the compiled columnar segment closures
through the worker-resident segment cache, keyed by a *different*
``PassConfig.cache_tag()`` than ``engine-parallel``'s — CI's
parallel-parity job fuzzes it against the oracle.

Three further extra backends form the **set-semantics
tri-equivalence** (CI's semiring-parity job):

``engine-boolean``      the physical engine under the Bool semiring
                        (``semiring="bool"``) — every generic kernel
                        branch on trial
``ralg``                the independently written
                        :class:`~repro.relational.ralg.SetEvaluator`
                        (dedup after every operator; the paper's
                        RALG/RALG^k baseline)
``delta-bag``           ``deep_dedup`` of the N tree-walker's result —
                        sound only where δ commutes with the plan, so
                        it reports ``unsupported`` outside the
                        monus/powerset/nesting-free flat fragment

They evaluate under *set* semantics, so they are compared only among
themselves — never against the N-semantics reference.

All backends run under the same :class:`~repro.guard.Limits`.  A
*governed* failure (any :class:`~repro.core.errors.GovernedError` or
:class:`~repro.core.errors.ResourceLimitError`) is an acceptable
per-backend outcome — a rewrite may legitimately remove a powerset, so
budgets can fire asymmetrically — but any other exception must be a
:class:`~repro.core.errors.ReproError` subclass, and every backend
that *does* produce a value must produce the same bag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bag import Bag
from repro.core.errors import (
    GovernedError, ReproError, ResourceLimitError,
)
from repro.core.eval import Evaluator
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Bagging, Cartesian, Const,
    Dedup, Expr, Intersection, Map, Powerbag, Powerset, Select,
    Subtraction, Tupling, Var,
)
from repro.core.typecheck import infer_type
from repro.core.types import TupleType, Type
from repro.engine import PlanCache, ResilienceConfig
from repro.engine import evaluate as engine_evaluate
from repro.guard import ChaosPlan, Limits, ResourceGovernor
from repro.planner import PassConfig, PlanContext
from repro.planner import compile as planner_compile
from repro.sql import Catalog, run_sql
from repro.surface import parse, to_text
from repro.testkit.generate import Case
from repro.testkit.metamorphic import LawResult, check_laws

__all__ = [
    "DEFAULT_BACKENDS", "EXTRA_BACKENDS", "SET_BACKENDS",
    "DEFAULT_LIMITS", "BackendOutcome",
    "CaseReport", "Harness", "Mismatch", "RunSummary",
    "delta_commutes", "sql_view",
]

#: Backend execution order; the first ``ok`` outcome is the reference.
DEFAULT_BACKENDS = ("oracle", "engine", "engine-warm", "engine-parallel",
                    "engine-chaos", "engine-opt0", "engine-codegen",
                    "optimized", "surface", "sql")

#: Valid but non-default backends: CI's opt0-vs-opt2 fuzz leg, the
#: parallel-parity job's fused-columnar leg (the parallel backend at
#: opt level 3, i.e. workers executing codegen-stage plans through
#: the worker-resident compiled-segment cache), and the semiring
#: tri-equivalence legs (Bool-semiring engine vs the relational
#: SetEvaluator vs δ of the N result).
EXTRA_BACKENDS = ("engine-opt2", "engine-parallel-codegen",
                  "engine-boolean", "ralg", "delta-bag")

#: Backends that evaluate under set semantics: they form their own
#: comparison group (their results legitimately differ from the N
#: reference whenever an input carries duplicates).
SET_BACKENDS = frozenset({"engine-boolean", "ralg", "delta-bag"})

#: Per-(shard, attempt) crash probability for ``engine-chaos``: high
#: enough that most cases inject at least one crash, low enough that
#: three attempts plus the ladder make completion certain in practice.
CHAOS_PROBABILITY = 0.25

#: Generous but finite: big enough that ordinary cases complete, small
#: enough that a powerset blow-up degrades into a governed error in
#: milliseconds instead of an OOM.
DEFAULT_LIMITS = Limits(max_steps=300_000, max_size=60_000,
                        powerset_budget=1024, max_depth=300)

_ACCEPTABLE = (GovernedError, ResourceLimitError)


@dataclass
class BackendOutcome:
    """What one backend did with one case."""

    backend: str
    status: str  # "ok" | "governed" | "unsupported" | "error" | "crash"
    value: Any = None
    error: Optional[BaseException] = None

    def describe(self) -> str:
        if self.status == "ok":
            return f"{self.backend}: ok"
        if self.error is None:
            return f"{self.backend}: {self.status}"
        return (f"{self.backend}: {self.status} "
                f"({type(self.error).__name__}: {self.error})")


@dataclass
class Mismatch:
    """One disagreement between backends (or with a metamorphic law)."""

    case: Case
    kind: str  # "value" | "error" | "crash" | "metamorphic"
    backend: str
    reference: str
    detail: str

    def describe(self) -> str:
        return (f"[{self.kind}] {self.backend} vs {self.reference} on "
                f"{self.case.label()}: {self.detail}")


@dataclass
class CaseReport:
    """Everything the harness learned about one case."""

    case: Case
    outcomes: Dict[str, BackendOutcome]
    mismatches: List[Mismatch]
    laws: List[LawResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class RunSummary:
    """Aggregate counters over a fuzz run."""

    cases: int = 0
    governed: Dict[str, int] = field(default_factory=dict)
    unsupported: Dict[str, int] = field(default_factory=dict)
    laws_checked: int = 0
    laws_skipped: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    def absorb(self, report: CaseReport) -> None:
        self.cases += 1
        for name, outcome in report.outcomes.items():
            if outcome.status == "governed":
                self.governed[name] = self.governed.get(name, 0) + 1
            elif outcome.status == "unsupported":
                self.unsupported[name] = (
                    self.unsupported.get(name, 0) + 1)
        for law in report.laws:
            if law.status == "skipped":
                self.laws_skipped += 1
            else:
                self.laws_checked += 1
        self.mismatches.extend(report.mismatches)

    def describe(self) -> str:
        parts = [f"{self.cases} cases",
                 f"{len(self.mismatches)} mismatches",
                 f"{self.laws_checked} law checks "
                 f"({self.laws_skipped} skipped)"]
        if self.governed:
            listed = ", ".join(f"{name}={count}" for name, count
                               in sorted(self.governed.items()))
            parts.append(f"governed: {listed}")
        if self.unsupported:
            listed = ", ".join(f"{name}={count}" for name, count
                               in sorted(self.unsupported.items()))
            parts.append(f"unsupported: {listed}")
        return "; ".join(parts)


class Harness:
    """Runs cases through the differential matrix.

    ``faults`` (a :class:`~repro.guard.FaultSequence`) is threaded into
    every backend's governor — the retry/fault tests drive the harness
    with injected failures to check that governed outcomes stay
    structured end to end.
    """

    def __init__(self,
                 backends: Sequence[str] = DEFAULT_BACKENDS,
                 limits: Optional[Limits] = None,
                 metamorphic: bool = True,
                 cache_capacity: int = 128,
                 faults=None,
                 catalog=None):
        known = set(DEFAULT_BACKENDS) | set(EXTRA_BACKENDS)
        unknown = set(backends) - known
        if unknown:
            raise ValueError(f"unknown backends: {sorted(unknown)} "
                             f"(choices: "
                             f"{DEFAULT_BACKENDS + EXTRA_BACKENDS})")
        self.backends = tuple(backends)
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self.metamorphic = metamorphic
        self.faults = faults
        #: Optional statistics catalog (a
        #: :class:`~repro.storage.Workspace` in the workspace fuzz
        #: mode): the engine backends compile against it, so the
        #: statistics-driven planner paths — selectivity oracle,
        #: catalog-tagged plan-cache keys — are on trial too.
        self.catalog = catalog
        self.cache = PlanCache(capacity=cache_capacity)

    # -- running ---------------------------------------------------------

    def governor(self) -> ResourceGovernor:
        return ResourceGovernor(self.limits, faults=self.faults)

    def run_case(self, case: Case) -> CaseReport:
        outcomes: Dict[str, BackendOutcome] = {}
        for backend in self.backends:
            outcomes[backend] = self._run_backend(backend, case)
        mismatches = self._compare(case, outcomes)
        laws: List[LawResult] = []
        oracle = outcomes.get("oracle")
        if (self.metamorphic and oracle is not None
                and oracle.status == "ok"
                and isinstance(oracle.value, Bag)):
            laws = self._run_laws(case, oracle.value)
            for law in laws:
                if law.status == "failed":
                    mismatches.append(Mismatch(
                        case=case, kind="metamorphic",
                        backend=f"law:{law.name}", reference="oracle",
                        detail=law.detail))
        return CaseReport(case=case, outcomes=outcomes,
                          mismatches=mismatches, laws=laws)

    def _run_backend(self, backend: str, case: Case) -> BackendOutcome:
        try:
            if backend == "oracle":
                value = self._oracle(case.expr, case)
            elif backend == "engine":
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), catalog=self.catalog)
            elif backend == "engine-warm":
                engine_evaluate(case.expr, case.database,
                                cache=self.cache,
                                governor=self.governor(),
                                catalog=self.catalog)
                value = engine_evaluate(case.expr, case.database,
                                        cache=self.cache,
                                        governor=self.governor(),
                                        catalog=self.catalog)
            elif backend == "engine-parallel":
                # threshold 0 forces exchanges wherever a segment
                # compiles, and min_morsel_rows=1 disables adaptive
                # granularity, so even tiny fuzz bags exercise the
                # partition machinery and the multi-shard merge
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), engine="parallel",
                    workers=2, parallel_threshold=0.0,
                    min_morsel_rows=1, catalog=self.catalog)
            elif backend == "engine-parallel-codegen":
                # the parallel backend at opt level 3: workers execute
                # the same fused-pipeline plans the codegen stage
                # produces, through the worker-resident compiled
                # segment cache
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), engine="parallel",
                    workers=2, parallel_threshold=0.0,
                    min_morsel_rows=1, opt_level=3,
                    catalog=self.catalog)
            elif backend == "engine-chaos":
                # the parallel executor with seeded worker crashes
                # injected: the resilience layer must absorb them
                # (retry, then the degradation ladder) and still
                # produce the same bag — a crash that escapes is a
                # mismatch, not an acceptable outcome
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), engine="parallel",
                    workers=2, parallel_threshold=0.0,
                    min_morsel_rows=1,
                    resilience=self._chaos_resilience(case),
                    catalog=self.catalog)
            elif backend == "engine-opt0":
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), opt_level=0,
                    catalog=self.catalog)
            elif backend == "engine-codegen":
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), engine="codegen",
                    catalog=self.catalog)
            elif backend == "engine-opt2":
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), opt_level=2,
                    catalog=self.catalog)
            elif backend == "engine-boolean":
                # the physical engine under the Bool semiring: inputs
                # deep-dedup to sets, every kernel takes its generic
                # branch, and the result must match the independent
                # set-semantics evaluators below
                value = engine_evaluate(
                    case.expr, case.database, cache=None,
                    governor=self.governor(), semiring="bool",
                    catalog=self.catalog)
            elif backend == "ralg":
                from repro.relational.ralg import SetEvaluator
                value = SetEvaluator(governor=self.governor()).run(
                    case.expr, case.database)
            elif backend == "delta-bag":
                # δ ∘ (N engine): sound only where dedup commutes
                # with every operator of the plan
                if not delta_commutes(case.expr, case.database):
                    return BackendOutcome(backend, "unsupported")
                from repro.relational.ralg import deep_dedup
                value = deep_dedup(self._oracle(case.expr, case))
            elif backend == "optimized":
                rewritten = planner_compile(
                    case.expr,
                    PlanContext(engine="tree", schema=case.schema,
                                governor=self.governor(),
                                config=PassConfig.for_level(2))
                ).logical
                value = self._oracle(rewritten, case)
            elif backend == "surface":
                reparsed = parse(to_text(case.expr))
                value = self._oracle(reparsed, case)
            elif backend == "sql":
                view = sql_view(case.expr, case.schema)
                if view is None:
                    return BackendOutcome(backend, "unsupported")
                text, catalog = view
                value = run_sql(text, catalog, case.database,
                                governor=self.governor())
            else:  # pragma: no cover - constructor validates
                raise ValueError(backend)
        except _ACCEPTABLE as error:
            return BackendOutcome(backend, "governed", error=error)
        except ReproError as error:
            return BackendOutcome(backend, "error", error=error)
        except RecursionError as error:
            return BackendOutcome(backend, "governed", error=error)
        except Exception as error:  # noqa: BLE001 - the point
            return BackendOutcome(backend, "crash", error=error)
        return BackendOutcome(backend, "ok", value=value)

    def _oracle(self, expr: Expr, case: Case) -> Any:
        return Evaluator(governor=self.governor()).run(
            expr, case.database)

    @staticmethod
    def _chaos_resilience(case: Case) -> ResilienceConfig:
        """The seeded fault-tolerance policy for ``engine-chaos``:
        which (shard, attempt) executions crash is a pure function of
        the case identity, so a mismatch replays exactly."""
        seed = ((case.seed or 0) * 1_000_003 + (case.index or 0))
        return ResilienceConfig(
            seed=seed,
            chaos=ChaosPlan(kind="worker-crash",
                            probability=CHAOS_PROBABILITY,
                            seed=seed))

    def _run_laws(self, case: Case, value: Bag) -> List[LawResult]:
        try:
            result_type = infer_type(case.expr, case.schema)
        except ReproError:
            return []

        def evaluate(expr: Expr) -> Any:
            return self._oracle(expr, case)

        return check_laws(case, result_type, value, evaluate)

    # -- comparison ------------------------------------------------------

    def _compare(self, case: Case,
                 outcomes: Dict[str, BackendOutcome]) -> List[Mismatch]:
        mismatches: List[Mismatch] = []
        # two comparison groups: the N-semantics backends share one
        # reference, the set-semantics tri-equivalence legs another
        reference: Optional[BackendOutcome] = None
        set_reference: Optional[BackendOutcome] = None
        for backend in self.backends:
            outcome = outcomes[backend]
            if outcome.status != "ok":
                continue
            if backend in SET_BACKENDS:
                if set_reference is None:
                    set_reference = outcome
            elif backend != "sql" and reference is None:
                reference = outcome
        for backend in self.backends:
            outcome = outcomes[backend]
            if outcome.status == "crash":
                mismatches.append(Mismatch(
                    case=case, kind="crash", backend=backend,
                    reference="-",
                    detail=f"non-ReproError escaped: "
                           f"{type(outcome.error).__name__}: "
                           f"{outcome.error}"))
            elif outcome.status == "error":
                mismatches.append(Mismatch(
                    case=case, kind="error", backend=backend,
                    reference="-",
                    detail=f"well-typed case rejected: "
                           f"{type(outcome.error).__name__}: "
                           f"{outcome.error}"))
            elif outcome.status == "ok":
                group_ref = (set_reference if backend in SET_BACKENDS
                             else reference)
                if group_ref is None or outcome is group_ref:
                    continue
                detail = self._differ(outcome, group_ref)
                if detail is not None:
                    mismatches.append(Mismatch(
                        case=case, kind="value", backend=backend,
                        reference=group_ref.backend, detail=detail))
        return mismatches

    @staticmethod
    def _differ(outcome: BackendOutcome,
                reference: BackendOutcome) -> Optional[str]:
        expected = reference.value
        actual = outcome.value
        if outcome.backend == "sql":
            # run_sql returns decoded, sorted rows with duplicates
            if not isinstance(expected, Bag):
                return None
            rows = sorted((tuple(element.items())
                           for element in expected.elements()),
                          key=repr)
            if actual != rows:
                return (f"sql rows {actual!r} != decoded oracle rows "
                        f"{rows!r}")
            return None
        if actual != expected:
            return f"{actual!r} != {expected!r}"
        return None


# ----------------------------------------------------------------------
# The δ-commutation fragment for the ``delta-bag`` backend
# ----------------------------------------------------------------------

def delta_commutes(expr: Expr,
                   database: Optional[Mapping[str, Bag]]) -> bool:
    """Whether ``deep_dedup(Q(DB)) == Q_bool(DB)`` is guaranteed.

    Dedup commutes with additive/max union, intersection, product,
    map, select, and dedup itself (Proposition 4.2's monus-free
    reasoning), but **not** with subtraction (supports differ:
    ``δ(R - S) ⊊ δ(R) - δ(S)`` when S cancels only part of R's
    multiplicity), and multiplicity-sensitive value constructors
    (powerset/powerbag subsets, bagging, nesting) build *different
    values* from a bag than from its support.  Nested database values
    are excluded too: δ deduplicates them deeply while the engine's
    top-level operators never rewrite inner counts.
    """
    from repro.core.nest import Nest, Unnest
    forbidden = (Subtraction, Powerset, Powerbag, Bagging, BagDestroy,
                 Nest, Unnest)
    for node in expr.walk():
        if isinstance(node, forbidden):
            return False
        if isinstance(node, Const) and _has_nested_bag(node.value):
            return False
    if database:
        for value in database.values():
            if isinstance(value, Bag) and _has_nested_bag(value):
                return False
    return True


def _has_nested_bag(value: Any) -> bool:
    from repro.core.bag import Tup
    if isinstance(value, Bag):
        return any(_contains_bag(element)
                   for element in value.distinct())
    return _contains_bag(value)


def _contains_bag(value: Any) -> bool:
    from repro.core.bag import Tup
    if isinstance(value, Bag):
        return True
    if isinstance(value, Tup):
        return any(_contains_bag(item) for item in value.items())
    return False


# ----------------------------------------------------------------------
# SQL expressibility: recognize SELECT-shaped expressions
# ----------------------------------------------------------------------

_SQL_OPS = {"eq": "=", "ne": "!=", "le": "<=", "lt": "<"}


def sql_view(expr: Expr, schema: Mapping[str, Type]
             ) -> Optional[Tuple[str, Catalog]]:
    """Render the expression as mini-SQL text, or ``None`` when it is
    outside the SELECT/set-op fragment the dialect can express.

    Recognized shape (each layer optional)::

        setop( block , block ) | block
        block := Dedup? ( proj-Map? ( Select* ( Var x ... x Var ) ) )

    The produced SQL must evaluate — through
    :func:`repro.sql.run_sql`'s parse/compile/execute pipeline — to the
    same bag as the original expression, which is exactly what the
    harness asserts.
    """
    setops = {AdditiveUnion: "UNION ALL", Intersection: "INTERSECT ALL",
              Subtraction: "EXCEPT ALL"}
    if type(expr) in setops:
        left = _sql_block(expr.left, schema)
        right = _sql_block(expr.right, schema)
        if left is None or right is None:
            return None
        return (f"{left} {setops[type(expr)]} {right}",
                _catalog_for(schema))
    block = _sql_block(expr, schema)
    if block is None:
        return None
    return block, _catalog_for(schema)


def _catalog_for(schema: Mapping[str, Type]) -> Catalog:
    tables = {}
    for name, typ in schema.items():
        element = getattr(typ, "element", None)
        if isinstance(element, TupleType):
            tables[name] = tuple(f"c{i}"
                                 for i in range(1, element.arity + 1))
    return Catalog(tables)


def _sql_block(expr: Expr,
               schema: Mapping[str, Type]) -> Optional[str]:
    distinct = False
    if isinstance(expr, Dedup):
        distinct = True
        expr = expr.operand
    projection: Optional[List[int]] = None
    if isinstance(expr, Map):
        projection = _projection_indices(expr)
        if projection is None:
            return None
        expr = expr.operand
    conjuncts: List[Tuple[int, str, Any]] = []
    while isinstance(expr, Select):
        comparison = _sql_comparison(expr)
        if comparison is None:
            return None
        conjuncts.append(comparison)
        expr = expr.operand
    tables = _table_factors(expr)
    if tables is None:
        return None
    arities = []
    for name in tables:
        typ = schema.get(name)
        element = getattr(typ, "element", None)
        if not isinstance(element, TupleType):
            return None
        arities.append(element.arity)
    total = sum(arities)

    def column(position: int) -> Optional[str]:
        if not 1 <= position <= total:
            return None
        offset = position
        for table_number, arity in enumerate(arities, start=1):
            if offset <= arity:
                return f"t{table_number}.c{offset}"
            offset -= arity
        return None  # pragma: no cover

    if projection is not None:
        rendered = [column(i) for i in projection]
        if any(ref is None for ref in rendered):
            return None
        select_list = ", ".join(rendered)
    else:
        select_list = "*"
    from_list = ", ".join(f"{name} t{number}"
                          for number, name in enumerate(tables, 1))
    where_parts = []
    # selections apply outside-in; attribute positions refer to the
    # operand's tuples, which the projection-free layers share
    for index, op, right in conjuncts:
        left_ref = column(index)
        if left_ref is None:
            return None
        if isinstance(right, int):  # attribute position
            right_ref = column(right)
            if right_ref is None:
                return None
        elif isinstance(right, str):
            if "'" in right:
                return None
            right_ref = f"'{right}'"
        else:  # literal int constant, wrapped
            (literal,) = right
            if literal < 0:
                return None
            right_ref = str(literal)
        where_parts.append(f"{left_ref} {_SQL_OPS[op]} {right_ref}")
    text = "SELECT "
    if distinct:
        text += "DISTINCT "
    text += f"{select_list} FROM {from_list}"
    if where_parts:
        text += " WHERE " + " AND ".join(where_parts)
    return text


def _projection_indices(expr: Map) -> Optional[List[int]]:
    body = expr.lam.body
    if not isinstance(body, Tupling) or not body.parts:
        return None
    indices = []
    for part in body.parts:
        if (isinstance(part, Attribute)
                and isinstance(part.operand, Var)
                and part.operand.name == expr.lam.param):
            indices.append(part.index)
        else:
            return None
    return indices


def _sql_comparison(expr: Select):
    """Decode ``sigma[t: alpha_i(t) op (alpha_j(t) | atom)]`` into a
    ``(i, op, right)`` conjunct; ``right`` is an int attribute
    position, a string literal, or a 1-tuple-wrapped int literal."""
    left = expr.left.body
    if not (isinstance(left, Attribute)
            and isinstance(left.operand, Var)
            and left.operand.name == expr.left.param):
        return None
    right_body = expr.right.body
    if (isinstance(right_body, Attribute)
            and isinstance(right_body.operand, Var)
            and right_body.operand.name == expr.right.param):
        return (left.index, expr.op, right_body.index)
    if isinstance(right_body, Const):
        value = right_body.value
        if isinstance(value, str):
            return (left.index, expr.op, value)
        if isinstance(value, int) and not isinstance(value, bool):
            return (left.index, expr.op, (value,))
    return None


def _table_factors(expr: Expr) -> Optional[List[str]]:
    if isinstance(expr, Var):
        return [expr.name]
    if isinstance(expr, Cartesian):
        left = _table_factors(expr.left)
        right = _table_factors(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return None
