"""``repro fuzz`` — the conformance fuzz loop for local and CI runs.

Examples::

    python -m repro fuzz --cases 500 --seed 0
    python -m repro fuzz --cases 300 --seed from-run-id \
        --backends oracle,engine,optimized,sql --fragment balg2
    python -m repro fuzz --cases 50 --corpus /tmp/corpus

``--seed from-run-id`` resolves ``$GITHUB_RUN_ID`` (falling back to 0)
so the nightly conformance job explores a fresh deterministic stream
per run while any failure stays replayable from the printed seed.
Failing cases are minimized and persisted into ``--corpus`` as JSON
repros; exit status is 1 when any mismatch survived.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.guard import Limits
from repro.testkit.corpus import save_case
from repro.testkit.differential import (
    DEFAULT_BACKENDS, DEFAULT_LIMITS, Harness, RunSummary,
)
from repro.testkit.generate import (
    FRAGMENT_NESTING, generate_case, shrink_case,
)

__all__ = ["main"]


def _resolve_seed(text: str) -> int:
    if text == "from-run-id":
        return int(os.environ.get("GITHUB_RUN_ID", "0") or "0")
    return int(text)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="N-way differential conformance fuzzing")
    parser.add_argument("--seed", default="0",
                        help="integer seed, or 'from-run-id' to use "
                             "$GITHUB_RUN_ID (default: 0)")
    parser.add_argument("--cases", type=int, default=100,
                        help="number of generated cases (default: 100)")
    parser.add_argument("--fragment", default="mixed",
                        choices=sorted(FRAGMENT_NESTING) + ["mixed"],
                        help="fragment to generate (default: mixed)")
    parser.add_argument("--backends",
                        default=",".join(DEFAULT_BACKENDS),
                        help="comma-separated backend list (default: "
                             + ",".join(DEFAULT_BACKENDS)
                             + "; also available: engine-opt2)")
    parser.add_argument("--corpus", default="tests/corpus",
                        help="directory for minimized failing cases "
                             "(default: tests/corpus)")
    parser.add_argument("--size", type=int, default=14,
                        help="expression size budget (default: 14)")
    parser.add_argument("--workspace", default=None, metavar="DIR",
                        help="fuzz against a persisted workspace: "
                             "case databases come from the relation "
                             "files round-tripped through DIR (a "
                             "seeded workspace is synthesized there "
                             "when empty) and the engines compile "
                             "against its statistics catalog")
    parser.add_argument("--max-steps", type=int,
                        default=DEFAULT_LIMITS.max_steps)
    parser.add_argument("--max-size", type=int,
                        default=DEFAULT_LIMITS.max_size)
    parser.add_argument("--powerset-budget", type=int,
                        default=DEFAULT_LIMITS.powerset_budget)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic law catalogue")
    parser.add_argument("--no-shrink", action="store_true",
                        help="persist failing cases unminimized")
    parser.add_argument("--quiet", "-q", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    try:
        seed = _resolve_seed(arguments.seed)
    except ValueError:
        print(f"error: --seed expects an integer or 'from-run-id', "
              f"got {arguments.seed!r}", file=sys.stderr)
        return 2
    backends = tuple(name.strip()
                     for name in arguments.backends.split(",")
                     if name.strip())
    limits = Limits(max_steps=arguments.max_steps,
                    max_size=arguments.max_size,
                    powerset_budget=arguments.powerset_budget,
                    timeout=arguments.timeout,
                    max_depth=DEFAULT_LIMITS.max_depth)
    workspace = None
    if arguments.workspace is not None:
        from repro.testkit.wsdiff import seeded_workspace
        workspace = seeded_workspace(arguments.workspace, seed)
    try:
        harness = Harness(backends=backends, limits=limits,
                          metamorphic=not arguments.no_metamorphic,
                          catalog=workspace)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    out = sys.stdout
    summary = RunSummary()
    failures = 0
    for index in range(arguments.cases):
        if workspace is not None:
            from repro.testkit.wsdiff import workspace_case
            case = workspace_case(workspace, seed, index)
        else:
            case = generate_case(seed, index,
                                 fragment=arguments.fragment,
                                 size=arguments.size)
        report = harness.run_case(case)
        summary.absorb(report)
        if not arguments.quiet and (index + 1) % 50 == 0:
            print(f"  ... {index + 1}/{arguments.cases} cases, "
                  f"{len(summary.mismatches)} mismatches", file=out)
        if report.ok:
            continue
        failures += 1
        for mismatch in report.mismatches:
            print(f"MISMATCH {mismatch.describe()}", file=out)
        minimized = case
        if not arguments.no_shrink:
            def still_fails(candidate) -> bool:
                return bool(harness.run_case(candidate).mismatches)
            minimized = shrink_case(case, still_fails)
        first = report.mismatches[0]
        path = save_case(
            minimized, arguments.corpus,
            meta={"kind": first.kind, "backend": first.backend,
                  "reference": first.reference,
                  "detail": first.detail[:500],
                  "found_by": (f"repro fuzz --seed {seed} "
                               f"--fragment {arguments.fragment} "
                               f"--size {arguments.size}"
                               + (f" --workspace {arguments.workspace}"
                                  if workspace is not None else ""))})
        print(f"  minimized repro saved to {path}", file=out)
    print(f"fuzz: {summary.describe()}", file=out)
    if failures:
        print(f"fuzz: FAILED ({failures} failing cases persisted to "
              f"{arguments.corpus})", file=out)
        return 1
    print("fuzz: OK", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
