"""Seeded, typed expression generation and structural shrinking.

The generator is *type-directed*: it first draws a multi-relation
schema of (possibly nested) bag types, then grows an expression of a
target type by picking among the productions applicable at that type —
so every generated case is well-typed by construction and lies inside
the requested fragment ``BALG^k`` (the bag-nesting bound of Section 3;
``balg1`` exercises the tractable flat fragment of Section 4,
``balg2``/``balg3`` the nested fragments where aggregates and the
powerset hierarchy of Section 6 live).

Everything is driven by a plain :class:`random.Random`, **not**
Hypothesis: a ``(seed, index)`` pair reproduces a case byte-for-byte
across processes, which is what the corpus replay and the ``repro
fuzz`` CLI need.  ``tests/strategies.py`` delegates its BALG^1 grammar
here (:func:`balg1_expr`, :func:`flat_input_bag`) so the Hypothesis
properties and the differential harness share one generator.

Shrinking is greedy and structural (:func:`shrink_case`): promote
subexpressions over their parents, shrink constant bags, shrink the
database, drop unused relations — accept any candidate that still
fails, repeat until a fixpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import (
    Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence,
    Tuple,
)

from repro.core.bag import Bag, Tup
from repro.core.derived import count_expr
from repro.core.errors import ReproError
from repro.core.fragments import max_bag_nesting
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Bagging, Cartesian, Const,
    Dedup, Expr, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var,
)
from repro.core.nest import Nest, Unnest
from repro.core.typecheck import TypeChecker
from repro.core.types import BagType, TupleType, Type, U

__all__ = [
    "ATOMS", "FRAGMENT_NESTING", "Case", "CaseGenerator",
    "generate_case", "shrink_case", "subterms_with_rebuild",
    "balg1_expr", "flat_input_bag",
]

#: Atom alphabet of generated constants and database values.
ATOMS: Tuple[Any, ...] = ("a", "b", "c", "d", 0, 1, 2)

#: Fragment name -> maximal bag nesting of any subexpression type.
FRAGMENT_NESTING = {"balg1": 1, "balg2": 2, "balg3": 3}

#: Constants used inside BALG^1-compat expressions (the distinguished
#: input atom "a" is excluded — the counting-lemma hypothesis of the
#: existing Hypothesis properties).
EXPR_ATOMS = ("b", "c")

#: The single input relation of the BALG^1-compat grammar.
INPUT_NAME = "B"


@dataclass(frozen=True)
class Case:
    """One differential test case: a schema, a database instance of
    it, and a well-typed expression over the schema."""

    schema: Mapping[str, Type]
    database: Mapping[str, Bag]
    expr: Expr
    fragment: str = "balg2"
    seed: Optional[int] = None
    index: Optional[int] = None

    def label(self) -> str:
        if self.seed is None:
            return "<adhoc>"
        return f"seed={self.seed} index={self.index}"


# ----------------------------------------------------------------------
# Type and value generation
# ----------------------------------------------------------------------

def _random_element_type(rng: random.Random, nesting: int,
                         max_arity: int = 3) -> Type:
    """A random element type with bag nesting at most ``nesting``."""
    if nesting <= 0 or rng.random() < 0.55:
        if rng.random() < 0.3:
            return U
        arity = rng.randint(1, max_arity)
        return TupleType(tuple(U for _ in range(arity)))
    roll = rng.random()
    if roll < 0.6:
        # tuple with at least one nested-bag attribute
        arity = rng.randint(1, max_arity)
        attrs = []
        nested_at = rng.randrange(arity)
        for position in range(arity):
            if position == nested_at:
                attrs.append(BagType(
                    _random_element_type(rng, nesting - 1, max_arity)))
            else:
                attrs.append(U if rng.random() < 0.7 else BagType(
                    _random_element_type(rng, nesting - 1, max_arity)))
        return TupleType(tuple(attrs))
    # plain bag-of-... element
    return BagType(_random_element_type(rng, nesting - 1, max_arity))


def _random_value(rng: random.Random, typ: Type, max_card: int = 3,
                  atoms: Sequence[Any] = ATOMS) -> Any:
    """A random complex object of the given type."""
    if isinstance(typ, TupleType):
        return Tup(*(_random_value(rng, attr, max_card, atoms)
                     for attr in typ.attributes))
    if isinstance(typ, BagType):
        count = rng.randint(0, max_card)
        return Bag([_random_value(rng, typ.element, max_card, atoms)
                    for _ in range(count)])
    return rng.choice(list(atoms))


def _random_bag(rng: random.Random, typ: BagType, max_card: int,
                atoms: Sequence[Any] = ATOMS,
                allow_empty: bool = True) -> Bag:
    low = 0 if allow_empty else 1
    count = rng.randint(low, max(low, max_card))
    elements = [_random_value(rng, typ.element, 2, atoms)
                for _ in range(count)]
    # bias toward duplicates: multiplicity bugs (monus off-by-one,
    # group collapse in nest, count products in unnest) are invisible
    # on duplicate-free data
    for element in list(elements):
        if rng.random() < 0.35:
            elements.append(element)
    return Bag(elements)


# ----------------------------------------------------------------------
# The nested, multi-relation generator
# ----------------------------------------------------------------------

class CaseGenerator:
    """Grows well-typed cases for one fragment.

    ``size`` bounds the number of operator nodes; the generator splits
    the budget across operands, so expression size is roughly linear
    in ``size`` regardless of how the productions nest.
    """

    def __init__(self, rng: random.Random, fragment: str = "balg2",
                 size: int = 14, max_relations: int = 3,
                 max_arity: int = 3, max_bag_size: int = 4,
                 atoms: Sequence[Any] = ATOMS):
        if fragment not in FRAGMENT_NESTING:
            raise ValueError(f"unknown fragment {fragment!r} "
                             f"(choices: {sorted(FRAGMENT_NESTING)})")
        self.rng = rng
        self.fragment = fragment
        self.nesting_cap = FRAGMENT_NESTING[fragment]
        self.size = size
        self.max_relations = max_relations
        self.max_arity = max_arity
        self.max_bag_size = max_bag_size
        self.atoms = tuple(atoms)
        self._params = 0

    # -- public entry ----------------------------------------------------

    def case(self, seed: Optional[int] = None,
             index: Optional[int] = None) -> Case:
        """One complete (schema, database, expression) case."""
        schema = self.schema()
        database = self.database_for(schema)
        target = self.result_type(schema)
        for _ in range(20):
            try:
                expr = self.bag_expr(target, dict(schema), self.size)
                TypeChecker().check(expr, schema)
                # the fragment cap is over *every* subterm's type, not
                # only the result: a Tupling that wraps a whole
                # relation can push an intermediate one level deeper
                # than any schema or result type, so check the tree
                if max_bag_nesting(expr, schema) > self.nesting_cap:
                    continue
                break
            except ReproError:
                continue
        else:  # pragma: no cover - generator is correct by construction
            expr = Var(next(iter(schema)))
        return Case(schema=dict(schema), database=dict(database),
                    expr=expr, fragment=self.fragment, seed=seed,
                    index=index)

    def schema(self) -> Dict[str, Type]:
        relations = self.rng.randint(1, self.max_relations)
        out: Dict[str, Type] = {}
        for number in range(relations):
            nesting = self.rng.randint(0, self.nesting_cap - 1)
            element = _random_element_type(self.rng, nesting,
                                           self.max_arity)
            out[f"R{number}"] = BagType(element)
        return out

    def database_for(self, schema: Mapping[str, Type]) -> Dict[str, Bag]:
        return {name: _random_bag(self.rng, typ, self.max_bag_size,
                                  self.atoms)
                for name, typ in schema.items()
                if isinstance(typ, BagType)}

    def result_type(self, schema: Mapping[str, Type]) -> BagType:
        """The target type of the generated expression: usually one of
        the relation types (so variables appear as leaves), sometimes
        a fresh type."""
        candidates = [typ for typ in schema.values()
                      if isinstance(typ, BagType)]
        if candidates and self.rng.random() < 0.7:
            return self.rng.choice(candidates)
        nesting = self.rng.randint(0, self.nesting_cap - 1)
        return BagType(_random_element_type(self.rng, nesting,
                                            self.max_arity))

    # -- expression productions ------------------------------------------

    def bag_expr(self, target: BagType, env: Dict[str, Type],
                 budget: int) -> Expr:
        """A random expression of bag type ``target`` under ``env``."""
        if budget <= 0 or self.rng.random() < 0.18:
            return self._leaf(target, env)
        productions = self._applicable(target, env, budget)
        name, build = self.rng.choice(productions)
        try:
            return build(target, env, budget)
        except ReproError:
            # rare dead end (e.g. no compatible attribute); fall back
            return self._leaf(target, env)

    def _applicable(self, target, env, budget):
        element = target.element
        out: List[Tuple[str, Callable]] = [
            ("union", self._binary(AdditiveUnion)),
            ("max", self._binary(MaxUnion)),
            ("inter", self._binary(Intersection)),
            ("minus", self._binary(Subtraction)),
            ("dedup", self._dedup),
            ("map", self._map),
            ("select", self._select),
            ("bagging", self._bagging),
        ]
        if isinstance(element, TupleType) and element.arity >= 2:
            out.append(("product", self._cartesian))
        if (isinstance(element, TupleType) and element.attributes
                and isinstance(element.attributes[-1], BagType)
                and isinstance(element.attributes[-1].element,
                               TupleType)):
            out.append(("nest", self._nest))
        if isinstance(element, TupleType):
            out.append(("unnest", self._unnest))
        if isinstance(element, BagType):
            out.append(("powerset", self._powerset))
            if budget <= 4:
                out.append(("powerbag", self._powerbag))
        if target.bag_nesting() + 1 <= self.nesting_cap:
            out.append(("delta", self._bagdestroy))
        if element == TupleType((U,)) and budget >= 2:
            out.append(("count", self._count))
        return out

    def _leaf(self, target: BagType, env: Dict[str, Type]) -> Expr:
        names = [name for name, typ in env.items() if typ == target]
        if names and self.rng.random() < 0.65:
            return Var(self.rng.choice(names))
        return Const(_random_bag(self.rng, target, self.max_bag_size,
                                 self.atoms, allow_empty=False))

    def _binary(self, node):
        def build(target, env, budget):
            half = budget // 2
            return node(self.bag_expr(target, env, half),
                        self.bag_expr(target, env, budget - half - 1))
        return build

    def _dedup(self, target, env, budget):
        return Dedup(self.bag_expr(target, env, budget - 1))

    def _bagdestroy(self, target, env, budget):
        return BagDestroy(self.bag_expr(BagType(target), env,
                                        budget - 1))

    def _bagging(self, target, env, budget):
        return Bagging(self.object_expr(target.element, env,
                                        min(budget - 1, 3)))

    def _powerset(self, target, env, budget):
        # governed: keep the operand small so the budgeted expansion
        # usually succeeds; blow-ups are an *expected* governed outcome
        inner = self.bag_expr(target.element, env, min(budget - 1, 3))
        return Powerset(inner)

    def _powerbag(self, target, env, budget):
        inner = self.bag_expr(target.element, env, min(budget - 1, 2))
        return Powerbag(inner)

    def _cartesian(self, target, env, budget):
        element = target.element
        split = self.rng.randint(1, element.arity - 1)
        left = BagType(TupleType(element.attributes[:split]))
        right = BagType(TupleType(element.attributes[split:]))
        half = budget // 2
        return Cartesian(self.bag_expr(left, env, half),
                         self.bag_expr(right, env, budget - half - 1))

    def _map(self, target, env, budget):
        source_nesting = self.rng.randint(
            0, max(0, self.nesting_cap - 1))
        source = BagType(_random_element_type(self.rng, source_nesting,
                                              self.max_arity))
        param = self._fresh_param()
        half = budget // 2
        operand = self.bag_expr(source, env, half)
        inner_env = dict(env)
        inner_env[param] = source.element
        body = self.object_expr(target.element, inner_env,
                                budget - half - 1, param_hint=param)
        return Map(Lam(param, body), operand)

    def _select(self, target, env, budget):
        element = target.element
        operand = self.bag_expr(target, env, budget - 1)
        param = self._fresh_param()
        if isinstance(element, TupleType) and element.attributes:
            index = self.rng.randint(1, element.arity)
            attr_type = element.attribute(index)
            left = Attribute(Var(param), index)
            partners = [j for j in range(1, element.arity + 1)
                        if element.attribute(j) == attr_type]
            if partners and self.rng.random() < 0.5:
                right: Expr = Attribute(Var(param),
                                        self.rng.choice(partners))
            else:
                right = Const(_random_value(self.rng, attr_type, 2,
                                            self.atoms))
        else:
            left = Var(param)
            right = Const(_random_value(self.rng, element, 2,
                                        self.atoms))
        op = self.rng.choice(("eq", "eq", "ne", "le", "lt"))
        return Select(Lam(param, left), Lam(param, right), operand,
                      op=op)

    def _nest(self, target, env, budget):
        element = target.element
        rest = element.attributes[:-1]
        grouped = element.attributes[-1].element.attributes
        arity = len(rest) + len(grouped)
        positions = list(range(1, arity + 1))
        self.rng.shuffle(positions)
        group_positions = positions[:len(grouped)]
        rest_positions = sorted(positions[len(grouped):])
        attrs: List[Optional[Type]] = [None] * arity
        for attr_type, position in zip(grouped, group_positions):
            attrs[position - 1] = attr_type
        for attr_type, position in zip(rest, rest_positions):
            attrs[position - 1] = attr_type
        source = BagType(TupleType(tuple(attrs)))
        return Nest(self.bag_expr(source, env, budget - 1),
                    *group_positions)

    def _unnest(self, target, env, budget):
        element = target.element
        arity = element.arity
        start = self.rng.randint(0, max(0, arity - 1))
        stop = self.rng.randint(start + 1, arity) if arity else 0
        segment = element.attributes[start:stop]
        if len(segment) == 1 and self.rng.random() < 0.4:
            inner: Type = BagType(segment[0])  # non-tuple inner values
        else:
            inner = BagType(TupleType(segment))
        if inner.bag_nesting() > self.nesting_cap:
            raise ReproError("unnest source would exceed the fragment")
        attrs = (element.attributes[:start] + (inner,)
                 + element.attributes[stop:])
        source = BagType(TupleType(attrs))
        return Unnest(self.bag_expr(source, env, budget - 1),
                      start + 1)

    def _count(self, target, env, budget):
        source_nesting = self.rng.randint(
            0, max(0, self.nesting_cap - 1))
        source = BagType(_random_element_type(self.rng, source_nesting,
                                              self.max_arity))
        return count_expr(self.bag_expr(source, env, budget - 2))

    # -- object-level expressions (lambda bodies, tupling parts) ---------

    def object_expr(self, target: Type, env: Dict[str, Type],
                    budget: int,
                    param_hint: Optional[str] = None) -> Expr:
        """An expression of (possibly non-bag) type ``target`` — the
        language of MAP/SELECT lambda bodies."""
        rng = self.rng
        # reaching through a tuple-typed binding
        paths = self._attribute_paths(target, env)
        if paths and (budget <= 0 or rng.random() < 0.45):
            return rng.choice(paths)()
        exact = [name for name, typ in env.items() if typ == target]
        if exact and rng.random() < 0.4:
            return Var(rng.choice(exact))
        if isinstance(target, TupleType):
            part_budget = max(0, (budget - 1) // max(1, target.arity))
            return Tupling(*(self.object_expr(attr, env, part_budget,
                                              param_hint)
                             for attr in target.attributes))
        if isinstance(target, BagType):
            if budget > 1 and rng.random() < 0.5:
                # full bag algebra inside the lambda body — the BALG^2
                # aggregate idiom of Section 3 (closes over the binder)
                return self.bag_expr(target, env, min(budget - 1, 4))
            if budget > 0 and rng.random() < 0.5:
                return Bagging(self.object_expr(target.element, env,
                                                budget - 1, param_hint))
            return Const(_random_bag(rng, target, 2, self.atoms))
        return Const(rng.choice(list(self.atoms)))

    def _attribute_paths(self, target: Type, env: Dict[str, Type]):
        """Zero-argument builders for ``alpha_i(v)`` expressions of the
        target type reachable from tuple-typed bindings."""
        out = []
        for name, typ in env.items():
            if isinstance(typ, TupleType):
                for position in range(1, typ.arity + 1):
                    if typ.attribute(position) == target:
                        out.append(
                            lambda n=name, p=position:
                            Attribute(Var(n), p))
        return out

    def _fresh_param(self) -> str:
        self._params += 1
        return f"t{self._params}"


def generate_case(seed: int, index: int = 0, fragment: str = "balg2",
                  size: int = 14, **kwargs) -> Case:
    """The (seed, index) -> case function used by the fuzz loop: each
    index draws from an independent deterministic stream."""
    rng = random.Random(seed * 1_000_003 + index)
    if fragment == "mixed":
        fragment = rng.choice(tuple(FRAGMENT_NESTING))
    generator = CaseGenerator(rng, fragment=fragment, size=size,
                              **kwargs)
    return generator.case(seed=seed, index=index)


# ----------------------------------------------------------------------
# The BALG^1-compat grammar (delegation target of tests/strategies.py)
# ----------------------------------------------------------------------

def flat_input_bag(rng: random.Random, arity: int = 2,
                   max_size: int = 6,
                   atoms: Sequence[Any] = ("a", "b", "c")) -> Bag:
    """A random flat input relation over a small atom alphabet."""
    count = rng.randint(0, max_size)
    return Bag([Tup(*(rng.choice(list(atoms)) for _ in range(arity)))
                for _ in range(count)])


def balg1_expr(rng: random.Random, arity: int = 2,
               input_arity: int = 2, max_depth: int = 4,
               include_dedup: bool = True,
               include_subtraction: bool = True,
               include_order: bool = False,
               allow_input_atom: bool = True) -> Expr:
    """A random BALG^1 expression of result type ``{{U^arity}}`` over
    the input variable ``B`` of type ``{{U^input_arity}}`` — the exact
    grammar the Hypothesis properties quantify over (flags carve out
    the fragments of Props 4.1/4.2 and the genericity law)."""
    return _balg1(rng, arity, input_arity, max_depth, include_dedup,
                  include_subtraction, include_order, allow_input_atom)


def _balg1_constant_bag(rng: random.Random, arity: int) -> Bag:
    count = rng.randint(1, 3)
    return Bag([Tup(*(rng.choice(EXPR_ATOMS) for _ in range(arity)))
                for _ in range(count)])


def _balg1(rng, arity, input_arity, depth, dedup, minus, order,
           input_atom) -> Expr:
    if depth <= 0 or rng.randint(0, 3) == 0:
        if arity == input_arity and rng.random() < 0.5:
            return Var(INPUT_NAME)
        return Const(_balg1_constant_bag(rng, arity))
    choices = ["union", "max", "inter", "map", "select"]
    if minus:
        choices.append("minus")
    if dedup:
        choices.append("dedup")
    if arity >= 2:
        choices.append("product")
    kind = rng.choice(choices)
    if kind == "product":
        left_arity = rng.randint(1, arity - 1)
        left = _balg1(rng, left_arity, input_arity, depth - 1, dedup,
                      minus, order, input_atom)
        right = _balg1(rng, arity - left_arity, input_arity, depth - 1,
                       dedup, minus, order, input_atom)
        return Cartesian(left, right)
    if kind in ("union", "max", "inter", "minus"):
        node = {"union": AdditiveUnion, "max": MaxUnion,
                "inter": Intersection, "minus": Subtraction}[kind]
        return node(
            _balg1(rng, arity, input_arity, depth - 1, dedup, minus,
                   order, input_atom),
            _balg1(rng, arity, input_arity, depth - 1, dedup, minus,
                   order, input_atom))
    if kind == "dedup":
        return Dedup(_balg1(rng, arity, input_arity, depth - 1, dedup,
                            minus, order, input_atom))
    if kind == "map":
        in_arity = rng.randint(1, 3)
        inner = _balg1(rng, in_arity, input_arity, depth - 1, dedup,
                       minus, order, input_atom)
        parts: List[Expr] = []
        for _ in range(arity):
            if rng.random() < 0.5:
                parts.append(Attribute(Var("·g"),
                                       rng.randint(1, in_arity)))
            else:
                parts.append(Const(rng.choice(EXPR_ATOMS)))
        return Map(Lam("·g", Tupling(*parts)), inner)
    # select
    inner = _balg1(rng, arity, input_arity, depth - 1, dedup, minus,
                   order, input_atom)
    index = rng.randint(1, arity)
    comparator = rng.choice(("eq", "ne", "le", "lt") if order
                            else ("eq", "ne"))
    if rng.random() < 0.5:
        right_body: Expr = Attribute(Var("·s"), rng.randint(1, arity))
    else:
        alphabet = EXPR_ATOMS + (("a",) if input_atom else ())
        right_body = Const(rng.choice(alphabet))
    return Select(Lam("·s", Attribute(Var("·s"), index)),
                  Lam("·s", right_body), inner, op=comparator)


# ----------------------------------------------------------------------
# Greedy structural shrinking
# ----------------------------------------------------------------------

def subterms_with_rebuild(expr: Expr):
    """``(child, rebuild)`` pairs for every immediate subexpression,
    where ``rebuild(new)`` reconstructs the parent with the child
    replaced — the shrinker's (and tests') structural accessor."""
    if isinstance(expr, (AdditiveUnion, Subtraction, MaxUnion,
                         Intersection, Cartesian)):
        cls = type(expr)
        return [
            (expr.left, lambda new, c=cls, e=expr: c(new, e.right)),
            (expr.right, lambda new, c=cls, e=expr: c(e.left, new)),
        ]
    if isinstance(expr, (Powerset, Powerbag, BagDestroy, Dedup)):
        cls = type(expr)
        return [(expr.operand, lambda new, c=cls: c(new))]
    if isinstance(expr, Bagging):
        return [(expr.item, lambda new: Bagging(new))]
    if isinstance(expr, Attribute):
        return [(expr.operand,
                 lambda new, e=expr: Attribute(new, e.index))]
    if isinstance(expr, Tupling):
        out = []
        for position, part in enumerate(expr.parts):
            def rebuild(new, i=position, e=expr):
                parts = list(e.parts)
                parts[i] = new
                return Tupling(*parts)
            out.append((part, rebuild))
        return out
    if isinstance(expr, Map):
        return [
            (expr.operand,
             lambda new, e=expr: Map(e.lam, new)),
            (expr.lam.body,
             lambda new, e=expr: Map(Lam(e.lam.param, new), e.operand)),
        ]
    if isinstance(expr, Select):
        return [
            (expr.operand,
             lambda new, e=expr: Select(e.left, e.right, new, op=e.op)),
            (expr.left.body,
             lambda new, e=expr: Select(Lam(e.left.param, new),
                                        e.right, e.operand, op=e.op)),
            (expr.right.body,
             lambda new, e=expr: Select(e.left,
                                        Lam(e.right.param, new),
                                        e.operand, op=e.op)),
        ]
    if isinstance(expr, Nest):
        return [(expr.operand,
                 lambda new, e=expr: Nest(new, *e.indices))]
    if isinstance(expr, Unnest):
        return [(expr.operand,
                 lambda new, e=expr: Unnest(new, e.index))]
    return []


def _node_count(expr: Expr) -> int:
    return sum(1 for _ in expr.walk())


def _shrunk_constants(value: Any) -> Iterator[Any]:
    """Smaller versions of a constant value."""
    if isinstance(value, Bag):
        if value.is_empty():
            return
        distinct = sorted(value.distinct(), key=repr)
        yield Bag.of(distinct[0])
        for dropped in distinct:
            counts = {element: count for element, count in value.items()
                      if element != dropped}
            yield Bag.from_counts(counts)
        if any(count > 1 for _, count in value.items()):
            yield Bag.from_counts(
                {element: 1 for element, _ in value.items()})
    elif isinstance(value, Tup):
        for position, item in enumerate(value.items()):
            for smaller in _shrunk_constants(item):
                items = list(value.items())
                items[position] = smaller
                yield Tup(*items)
    elif isinstance(value, str) and value != "a":
        yield "a"
    elif isinstance(value, int) and value != 0:
        yield 0


def _expr_shrinks(expr: Expr) -> Iterator[Expr]:
    """One-step structural reductions of an expression, most
    aggressive first.  Candidates may be ill-typed; the shrink loop
    filters through the type checker."""
    # promote any immediate subexpression over the node
    for child, _rebuild in subterms_with_rebuild(expr):
        yield child
    if isinstance(expr, Const):
        for smaller in _shrunk_constants(expr.value):
            yield Const(smaller)
    # recurse: shrink one child in place
    for child, rebuild in subterms_with_rebuild(expr):
        for smaller in _expr_shrinks(child):
            yield rebuild(smaller)


def _case_shrinks(case: Case) -> Iterator[Case]:
    # drop relations the expression no longer mentions
    free = case.expr.free_vars()
    if set(case.schema) - free:
        yield replace(
            case,
            schema={name: typ for name, typ in case.schema.items()
                    if name in free},
            database={name: bag for name, bag in case.database.items()
                      if name in free})
    # shrink the expression
    for smaller in _expr_shrinks(case.expr):
        yield replace(case, expr=smaller)
    # shrink the database
    for name, bag in case.database.items():
        for smaller in _shrunk_constants(bag):
            database = dict(case.database)
            database[name] = smaller
            yield replace(case, database=database)
        if not bag.is_empty():
            database = dict(case.database)
            database[name] = Bag()
            yield replace(case, database=database)


def _valid(case: Case) -> bool:
    try:
        TypeChecker().check(case.expr, case.schema)
        return True
    except ReproError:
        return False


def shrink_case(case: Case,
                still_fails: Callable[[Case], bool],
                max_attempts: int = 500) -> Case:
    """Greedy minimization: repeatedly accept the first smaller,
    still-failing candidate until no candidate helps (or the attempt
    budget runs out).  ``still_fails`` must be deterministic."""
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _case_shrinks(case):
            attempts += 1
            if attempts >= max_attempts:
                break
            if not _valid(candidate):
                continue
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                case = candidate
                improved = True
                break
    return case
