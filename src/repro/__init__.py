"""repro — a full reproduction of Grumbach & Milo, *Towards Tractable
Algebras for Bags* (PODS 1993 / JCSS 52:570-588, 1996).

The package implements the nested-bag algebra BALG, its fragments
BALG^1 / BALG^2 / BALG^3, the powerbag variant, the nested relational
algebra and CALC1 baselines, the GV90 pebble games, the arithmetic and
Turing-machine encodings of Sections 5-6, and an experiment harness
that re-derives every quantitative claim of the paper.

Quickstart::

    from repro import Bag, Tup, var, evaluate
    from repro.core.derived import card_greater_expr, is_nonempty

    R = Bag.of(Tup(1), Tup(2), Tup(3))
    S = Bag.of(Tup(4), Tup(5))
    query = card_greater_expr(var("R"), var("S"))
    assert is_nonempty(evaluate(query, R=R, S=S))   # |R| > |S|
"""

from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
    IfpDivergenceError, RecursionDepthExceeded, ReproError,
    ResourceLimitError,
)
from repro.guard import (
    CancellationToken, FaultPlan, Limits, ResourceGovernor,
    RetryPolicy, RunOutcome, run_with_retry,
)
from repro.core import (
    Bag, Tup, EMPTY_BAG,
    AtomType, BagType, TupleType, Type, U, UNKNOWN,
    flat_bag_type, flat_tuple_type, parse_type, type_of,
    AdditiveUnion, Attribute, BagDestroy, Bagging, Cartesian, Const,
    Dedup, EMPTY, Expr, Intersection, Lam, Map, MaxUnion, Powerbag,
    Powerset, Select, Subtraction, Tupling, Var, const, var,
    EvalStats, Evaluator, evaluate,
    TypeChecker, infer_type,
    FragmentReport, assert_in_balg, fragment_report, in_balg,
    max_bag_nesting, power_nesting,
    Instance, Schema, encoding_size,
)

__version__ = "1.0.0"

__all__ = [
    "Bag", "Tup", "EMPTY_BAG",
    "AtomType", "BagType", "TupleType", "Type", "U", "UNKNOWN",
    "flat_bag_type", "flat_tuple_type", "parse_type", "type_of",
    "AdditiveUnion", "Attribute", "BagDestroy", "Bagging", "Cartesian",
    "Const", "Dedup", "EMPTY", "Expr", "Intersection", "Lam", "Map",
    "MaxUnion", "Powerbag", "Powerset", "Select", "Subtraction",
    "Tupling", "Var", "const", "var",
    "EvalStats", "Evaluator", "evaluate",
    "TypeChecker", "infer_type",
    "FragmentReport", "assert_in_balg", "fragment_report", "in_balg",
    "max_bag_nesting", "power_nesting",
    "Instance", "Schema", "encoding_size",
    "ReproError", "ResourceLimitError", "GovernedError",
    "BudgetExceeded", "DeadlineExceeded", "Cancelled",
    "RecursionDepthExceeded", "IfpDivergenceError",
    "ResourceGovernor", "Limits", "CancellationToken", "FaultPlan",
    "RetryPolicy", "RunOutcome", "run_with_retry",
    "__version__",
]
