"""Tokenizer and parser for the mini bag-SQL dialect."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.core.errors import ParseError
from repro.sql.ast import (
    COUNT_STAR, ColumnRef, Comparison, Query, SelectQuery, SetOpQuery,
)

__all__ = ["parse_sql"]

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'[^']*')"
    r"|(?P<number>\d+)"
    r"|(?P<op><=|!=|=|<)"
    r"|(?P<punct>[(),*])"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)"
    r")")

_KEYWORDS = {"SELECT", "ALL", "DISTINCT", "FROM", "WHERE", "AND",
             "UNION", "INTERSECT", "EXCEPT", "COUNT", "AS"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            stripped = text[position:].lstrip()
            if not stripped:
                break
            raise ParseError(
                f"unexpected character {stripped[0]!r}", position, text)
        position = match.end()
        if match.group("string") is not None:
            tokens.append(("STRING", match.group("string")[1:-1],
                           match.start()))
        elif match.group("number") is not None:
            tokens.append(("NUMBER", match.group("number"),
                           match.start()))
        elif match.group("op") is not None:
            tokens.append(("OP", match.group("op"), match.start()))
        elif match.group("punct") is not None:
            tokens.append(("PUNCT", match.group("punct"),
                           match.start()))
        else:
            word = match.group("word")
            upper = word.upper()
            if upper in _KEYWORDS and "." not in word:
                tokens.append(("KEYWORD", upper, match.start()))
            else:
                tokens.append(("NAME", word, match.start()))
    tokens.append(("EOF", "", len(text)))
    return tokens


def parse_sql(text: str) -> Query:
    """Parse a query of the mini dialect into the SQL AST."""
    parser = _SqlParser(_tokenize(text), text)
    query = parser.parse_query()
    parser.expect("EOF")
    return query


class _SqlParser:
    def __init__(self, tokens, source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def peek(self):
        return self._tokens[self._index]

    def advance(self):
        token = self._tokens[self._index]
        self._index += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None):
        token = self.peek()
        if token[0] == kind and (text is None or token[1] == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None):
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            raise ParseError(
                f"expected {text or kind!r}, found {actual[1] or 'EOF'!r}",
                actual[2], self._source)
        return token

    # -- grammar ----------------------------------------------------------

    def parse_query(self) -> Query:
        left = self.parse_select()
        while True:
            setop = None
            for keyword in ("UNION", "INTERSECT", "EXCEPT"):
                if self.accept("KEYWORD", keyword):
                    setop = keyword
                    break
            if setop is None:
                return left
            keep_all = bool(self.accept("KEYWORD", "ALL"))
            right = self.parse_select()
            left = SetOpQuery(op=setop, all=keep_all, left=left,
                              right=right)

    def parse_select(self) -> Query:
        if self.accept("PUNCT", "("):
            inner = self.parse_query()
            self.expect("PUNCT", ")")
            return inner
        self.expect("KEYWORD", "SELECT")
        distinct = False
        if self.accept("KEYWORD", "DISTINCT"):
            distinct = True
        else:
            self.accept("KEYWORD", "ALL")
        projections = self._parse_projections()
        self.expect("KEYWORD", "FROM")
        tables = [self._parse_table()]
        while self.accept("PUNCT", ","):
            tables.append(self._parse_table())
        where: List[Comparison] = []
        if self.accept("KEYWORD", "WHERE"):
            where.append(self._parse_comparison())
            while self.accept("KEYWORD", "AND"):
                where.append(self._parse_comparison())
        return SelectQuery(projections=projections, tables=tables,
                           where=where, distinct=distinct)

    def _parse_table(self):
        name = self.expect("NAME")[1]
        if "." in name:
            raise ParseError(f"table names cannot be qualified: "
                             f"{name!r}", self.peek()[2], self._source)
        alias = name
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("NAME")[1]
        elif self.peek()[0] == "NAME" and "." not in self.peek()[1]:
            alias = self.advance()[1]
        return (name, alias)

    def _parse_projections(self):
        if self.accept("PUNCT", "*"):
            return "*"
        if self.accept("KEYWORD", "COUNT"):
            self.expect("PUNCT", "(")
            self.expect("PUNCT", "*")
            self.expect("PUNCT", ")")
            return COUNT_STAR
        columns = [self._parse_column()]
        while self.accept("PUNCT", ","):
            columns.append(self._parse_column())
        return columns

    def _parse_column(self) -> ColumnRef:
        name = self.expect("NAME")[1]
        if "." in name:
            table, column = name.split(".", 1)
            return ColumnRef(column=column, table=table)
        return ColumnRef(column=name)

    def _parse_comparison(self) -> Comparison:
        left = self._parse_column()
        op = self.expect("OP")[1]
        token = self.peek()
        if token[0] == "STRING":
            self.advance()
            right: Union[ColumnRef, str, int] = token[1]
        elif token[0] == "NUMBER":
            self.advance()
            right = int(token[1])
        else:
            right = self._parse_column()
        return Comparison(left=left, op=op, right=right)
