"""A mini bag-SQL front end compiling to BALG (the introduction's
motivation: SQL engines work on bags, not sets)."""

from typing import List, Mapping, Tuple

from repro.core.bag import Bag
from repro.core.derived import bag_as_int
from repro.core.eval import evaluate
from repro.sql.ast import (
    COUNT_STAR, Catalog, ColumnRef, Comparison, Query, SelectQuery,
    SetOpQuery,
)
from repro.sql.compile import CompiledQuery, compile_query, compile_sql
from repro.sql.parser import parse_sql

__all__ = [
    "COUNT_STAR", "Catalog", "ColumnRef", "Comparison", "Query",
    "SelectQuery", "SetOpQuery", "CompiledQuery", "compile_query",
    "compile_sql", "parse_sql", "run_sql",
]


def run_sql(text: str, catalog: Catalog,
            database: Mapping[str, Bag],
            governor=None, engine: str = "physical",
            workers=None, opt_level=None, config=None) -> List[Tuple]:
    """Parse, compile, evaluate, and decode a query.

    Returns a list of plain Python tuples *with duplicates* (bag
    semantics, like a real engine's cursor); a ``COUNT(*)`` query
    returns ``[(count,)]``.  An optional
    :class:`~repro.guard.ResourceGovernor` governs the whole pipeline
    — compile and evaluate share one step budget and one deadline.

    ``engine`` picks the evaluator: ``"physical"`` (default) runs the
    compiled plan on the kernel engine of :mod:`repro.engine` — its
    hash joins and plan cache are exactly what join-shaped SQL wants —
    ``"parallel"`` adds the morsel-driven exchange on ``workers``
    threads, while ``"tree"`` keeps the instrumented oracle
    interpreter.  All of them compile through the staged planner
    (:func:`repro.planner.compile`); ``opt_level`` (0/1/2) or a full
    :class:`~repro.planner.PassConfig` picks its passes.
    """
    compiled = compile_sql(text, catalog, governor=governor)
    result = evaluate(compiled.expr, database, governor=governor,
                      engine=engine, workers=workers,
                      opt_level=opt_level, config=config)
    if compiled.columns == ("count",):
        return [(bag_as_int(result),)]
    rows = [tuple(entry.items()) for entry in result.elements()]
    return sorted(rows, key=repr)
