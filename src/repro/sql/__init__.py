"""A mini bag-SQL front end compiling to BALG (the introduction's
motivation: SQL engines work on bags, not sets)."""

from typing import List, Mapping, Optional, Tuple

from repro.core.bag import Bag
from repro.core.derived import bag_as_int
from repro.core.eval import evaluate
from repro.sql.ast import (
    COUNT_STAR, Catalog, ColumnRef, Comparison, Query, SelectQuery,
    SetOpQuery,
)
from repro.sql.compile import CompiledQuery, compile_query, compile_sql
from repro.sql.parser import parse_sql

__all__ = [
    "COUNT_STAR", "Catalog", "ColumnRef", "Comparison", "Query",
    "SelectQuery", "SetOpQuery", "CompiledQuery", "compile_query",
    "compile_sql", "parse_sql", "run_sql", "catalog_for_workspace",
]


def catalog_for_workspace(workspace) -> Catalog:
    """Derive the schema-only :class:`Catalog` SQL compilation needs
    from a :class:`~repro.storage.Workspace`.

    Typed column names from the workspace manifest win; relations
    without declared columns get positional names ``c1..ck`` from the
    statistics catalog's arity (falling back to peeking at one
    element when the relation was never analyzed).
    """
    tables = {}
    for name in workspace.relation_names():
        specs = workspace.columns_of(name)
        if specs is not None:
            tables[name] = tuple(spec.name for spec in specs)
            continue
        entry = workspace.catalog.get(name)
        arity = entry.arity if entry is not None else None
        if arity is None:
            bag = workspace.load_relation(name)
            element = None if bag.is_empty() else bag.an_element()
            arity = getattr(element, "arity", 1)
        tables[name] = tuple(f"c{index}"
                             for index in range(1, arity + 1))
    return Catalog(tables)


def run_sql(text: str, catalog,
            database: Optional[Mapping[str, Bag]] = None,
            governor=None, engine: str = "physical",
            workers=None, opt_level=None, config=None,
            feedback: bool = False) -> List[Tuple]:
    """Parse, compile, evaluate, and decode a query.

    Returns a list of plain Python tuples *with duplicates* (bag
    semantics, like a real engine's cursor); a ``COUNT(*)`` query
    returns ``[(count,)]``.  An optional
    :class:`~repro.guard.ResourceGovernor` governs the whole pipeline
    — compile and evaluate share one step budget and one deadline.

    ``catalog`` is either the literal schema-only :class:`Catalog`
    (the historical path — ``database`` is then required) or a
    :class:`~repro.storage.Workspace`: table schemas come from the
    workspace manifest, ``database`` defaults to the workspace's
    loaded relations, and the planner compiles against the
    workspace's persisted statistics (``feedback=True`` folds
    observed cardinalities back in).

    ``engine`` picks the evaluator: ``"physical"`` (default) runs the
    compiled plan on the kernel engine of :mod:`repro.engine` — its
    hash joins and plan cache are exactly what join-shaped SQL wants —
    ``"parallel"`` adds the morsel-driven exchange on ``workers``
    threads, while ``"tree"`` keeps the instrumented oracle
    interpreter.  All of them compile through the staged planner
    (:func:`repro.planner.compile`); ``opt_level`` (0/1/2) or a full
    :class:`~repro.planner.PassConfig` picks its passes.
    """
    storage_catalog = None
    if not isinstance(catalog, Catalog):
        # workspace path: schema from the manifest, data from disk,
        # statistics from the persisted catalog
        workspace = catalog
        storage_catalog = workspace
        catalog = catalog_for_workspace(workspace)
        if database is None:
            database = workspace.database()
    if database is None:
        raise TypeError("run_sql needs a database mapping when the "
                        "catalog is not a workspace")
    compiled = compile_sql(text, catalog, governor=governor)
    result = evaluate(compiled.expr, database, governor=governor,
                      engine=engine, workers=workers,
                      opt_level=opt_level, config=config,
                      catalog=storage_catalog, feedback=feedback)
    if compiled.columns == ("count",):
        return [(bag_as_int(result),)]
    rows = [tuple(entry.items()) for entry in result.elements()]
    return sorted(rows, key=repr)
