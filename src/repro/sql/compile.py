"""Compiling the mini SQL dialect to BALG expressions.

The mapping is the textbook one, made duplicate-faithful:

=====================  ==========================================
SQL                    BALG
=====================  ==========================================
``FROM t1, t2``        Cartesian product
``WHERE a = b``        selection (chained for AND)
``SELECT cols``        projection MAP (multiplicities add — this
                       is where SQL's ``ALL`` semantics lives)
``SELECT DISTINCT``    duplicate elimination ``eps``
``UNION ALL``          additive union ``(+)``
``UNION``              ``eps`` of maximal union
``INTERSECT ALL``      bag intersection (min of multiplicities,
                       the SQL standard's rule)
``INTERSECT``          ``eps`` of it
``EXCEPT ALL``         bag subtraction (monus, the standard rule)
``EXCEPT``             ``eps(L) - eps(R)``
``COUNT(*)``           the Section 3 counting expression; decode
                       with :func:`~repro.core.derived.bag_as_int`
=====================  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.core.derived import count_expr, project_expr
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, MaxUnion, Select, Subtraction, Var,
)
from repro.sql.ast import (
    COUNT_STAR, Catalog, ColumnRef, Comparison, Query, SelectQuery,
    SetOpQuery,
)
from repro.sql.parser import parse_sql

__all__ = ["CompiledQuery", "compile_query", "compile_sql"]

_OP_MAP = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le"}


class CompiledQuery:
    """A compiled SQL query: the BALG expression and the output
    columns (``["count"]`` for COUNT(*) results)."""

    def __init__(self, expr: Expr, columns: Tuple[str, ...]):
        self.expr = expr
        self.columns = columns

    def __repr__(self) -> str:
        return (f"CompiledQuery(columns={list(self.columns)}, "
                f"expr={self.expr!r})")


def compile_sql(text: str, catalog: Catalog,
                governor=None) -> CompiledQuery:
    """Parse and compile in one step."""
    return compile_query(parse_sql(text), catalog, governor=governor)


def compile_query(query: Query, catalog: Catalog, *,
                  governor=None) -> CompiledQuery:
    """Compile a parsed query against a catalog.

    An optional :class:`~repro.guard.ResourceGovernor` is ticked once
    per query node, so compilation of adversarially deep queries obeys
    the same step budget, deadline, and cancellation discipline as
    evaluation.
    """
    if governor is not None:
        governor.tick()
    if isinstance(query, SelectQuery):
        return _compile_select(query, catalog)
    if isinstance(query, SetOpQuery):
        return _compile_setop(query, catalog, governor=governor)
    raise BagTypeError(f"unknown query node {query!r}")


def _compile_setop(query: SetOpQuery, catalog: Catalog, *,
                   governor=None) -> CompiledQuery:
    left = compile_query(query.left, catalog, governor=governor)
    right = compile_query(query.right, catalog, governor=governor)
    if len(left.columns) != len(right.columns):
        raise BagTypeError(
            f"set operation over different arities: "
            f"{left.columns} vs {right.columns}")
    if query.op == "UNION":
        expr = (AdditiveUnion(left.expr, right.expr) if query.all
                else Dedup(MaxUnion(Dedup(left.expr),
                                    Dedup(right.expr))))
    elif query.op == "INTERSECT":
        expr = (Intersection(left.expr, right.expr) if query.all
                else Dedup(Intersection(left.expr, right.expr)))
    else:  # EXCEPT
        expr = (Subtraction(left.expr, right.expr) if query.all
                else Subtraction(Dedup(left.expr), Dedup(right.expr)))
    return CompiledQuery(expr, left.columns)


def _compile_select(query: SelectQuery,
                    catalog: Catalog) -> CompiledQuery:
    layout = _FromLayout(query.tables, catalog)
    expr: Expr = layout.product_expr()
    for conjunct in query.where:
        expr = _apply_comparison(expr, conjunct, layout)

    if query.projections == COUNT_STAR:
        counted = count_expr(expr)
        if query.distinct:
            counted = count_expr(Dedup(expr))
        return CompiledQuery(counted, ("count",))

    if query.projections == "*":
        columns = layout.all_columns()
        projected = expr
    else:
        refs: List[ColumnRef] = query.projections
        positions = [layout.resolve(ref) for ref in refs]
        projected = project_expr(expr, *positions)
        columns = tuple(ref.column for ref in refs)
    if query.distinct:
        projected = Dedup(projected)
    return CompiledQuery(projected, columns)


def _apply_comparison(expr: Expr, conjunct: Comparison,
                      layout: "_FromLayout") -> Select:
    left_position = layout.resolve(conjunct.left)
    left_lam = Lam("·r", Attribute(Var("·r"), left_position))
    if isinstance(conjunct.right, ColumnRef):
        right_position = layout.resolve(conjunct.right)
        right_lam = Lam("·r", Attribute(Var("·r"), right_position))
    else:
        right_lam = Lam("·r", Const(conjunct.right))
    return Select(left_lam, right_lam, expr,
                  op=_OP_MAP[conjunct.op])


class _FromLayout:
    """Attribute layout of the FROM product: which 1-based position
    each (alias, column) pair occupies, with ambiguity checking.

    ``tables`` holds (table, alias) pairs; qualification in column
    references is by alias, so self-joins work.
    """

    def __init__(self, tables: List[Tuple[str, str]], catalog: Catalog):
        if not tables:
            raise BagTypeError("FROM clause needs at least one table")
        self.tables = list(tables)
        aliases = [alias for _, alias in self.tables]
        if len(set(aliases)) != len(aliases):
            raise BagTypeError(
                f"duplicate table aliases in FROM: {aliases} "
                "(alias repeated occurrences, e.g. orders o2)")
        self.catalog = catalog
        self._layout: List[Tuple[str, str]] = []
        for table, alias in self.tables:
            for column in catalog.columns(table):
                self._layout.append((alias, column))

    def product_expr(self) -> Expr:
        expr: Expr = Var(self.tables[0][0])
        for table, _ in self.tables[1:]:
            expr = Cartesian(expr, Var(table))
        return expr

    def all_columns(self) -> Tuple[str, ...]:
        return tuple(column for _, column in self._layout)

    def resolve(self, ref: ColumnRef) -> int:
        matches = [index + 1 for index, (table, column)
                   in enumerate(self._layout)
                   if column == ref.column
                   and (ref.table is None or ref.table == table)]
        if not matches:
            raise BagTypeError(f"unknown column {ref!r}")
        if len(matches) > 1:
            raise BagTypeError(
                f"ambiguous column {ref!r}; qualify it with a table "
                "name")
        return matches[0]
