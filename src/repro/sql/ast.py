"""AST and catalog for the mini bag-SQL front end.

The paper's introduction motivates bags with SQL: real systems keep
duplicates "often to save the cost of duplicate elimination", and
SQL's ``SELECT ALL`` / ``UNION ALL`` / ``COUNT`` are duplicate-
sensitive.  This front end makes the connection executable: a small
SQL dialect compiles to BALG expressions, so the bag/set semantic
differences of the paper can be demonstrated in SQL terms.

Supported dialect::

    SELECT [ALL|DISTINCT] cols|*|COUNT(*) FROM t1 [, t2 ...]
        [WHERE a = b [AND ...]]
    q1 UNION [ALL] q2 | q1 INTERSECT [ALL] q2 | q1 EXCEPT [ALL] q2

Plain names resolve against the catalog; dotted names (``t.col``)
disambiguate self-joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.bag import Bag
from repro.core.errors import BagTypeError

__all__ = [
    "Catalog", "ColumnRef", "Comparison", "SelectQuery", "SetOpQuery",
    "Query", "COUNT_STAR",
]

#: Sentinel projection meaning ``COUNT(*)``.
COUNT_STAR = "COUNT(*)"


class Catalog:
    """Table name -> ordered column names, plus the bag instances."""

    def __init__(self, tables: Mapping[str, Sequence[str]]):
        self._columns: Dict[str, Tuple[str, ...]] = {}
        for name, columns in tables.items():
            columns = tuple(columns)
            if len(set(columns)) != len(columns):
                raise BagTypeError(
                    f"table {name!r} has duplicate column names")
            self._columns[name] = columns

    def columns(self, table: str) -> Tuple[str, ...]:
        if table not in self._columns:
            raise BagTypeError(f"unknown table {table!r}")
        return self._columns[table]

    def tables(self):
        return self._columns.keys()

    def __contains__(self, table: str) -> bool:
        return table in self._columns


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified by a table name."""

    column: str
    table: Optional[str] = None

    def __repr__(self) -> str:
        return (f"{self.table}.{self.column}" if self.table
                else self.column)


@dataclass(frozen=True)
class Comparison:
    """A WHERE conjunct: column op column, or column op literal."""

    left: ColumnRef
    op: str                       # "=", "!=", "<", "<="
    right: Union[ColumnRef, str, int]


@dataclass
class SelectQuery:
    """A SELECT block.

    ``tables`` holds ``(table, alias)`` pairs; without an explicit
    ``AS`` alias the alias equals the table name.  Aliases make
    self-joins expressible (``FROM orders o1, orders o2``).
    """

    projections: Union[List[ColumnRef], str]   # list, "*", or COUNT_STAR
    tables: List[Tuple[str, str]]
    where: List[Comparison] = field(default_factory=list)
    distinct: bool = False


@dataclass
class SetOpQuery:
    """``q1 UNION/INTERSECT/EXCEPT [ALL] q2``."""

    op: str                       # "UNION" | "INTERSECT" | "EXCEPT"
    all: bool
    left: "Query"
    right: "Query"


Query = Union[SelectQuery, SetOpQuery]
