"""Bounded-quantifier arithmetic formulas (Definition 5.2, Lemma 5.6).

Theorem 5.5 goes through arithmetic: machine computations are encoded
as integers, acceptance becomes an arithmetic sentence, and bounded
quantification keeps everything finite.  This module provides the
formula language — terms over (N, +, x, =) and formulas with bounded
quantifiers — together with its direct evaluator, the ground truth the
algebraic translation of Lemma 5.7 is tested against.

A formula ``phi(x)`` *restricted by* ``f`` is evaluated with every
quantifier ranging over ``{0, ..., f(n)}`` (inclusive; the powerset of
a bag of size ``f(n)`` yields exactly the sizes 0..f(n), so this
matches the algebra side).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.errors import BagTypeError

__all__ = [
    "NTerm", "NVar", "NConst", "Plus", "Times",
    "NFormula", "NEq", "NLe", "NAnd", "NOr", "NNot", "NExists",
    "NForall", "eval_term", "eval_formula",
]


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

class NTerm:
    """A term over the natural numbers with + and x."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError


class NVar(NTerm):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self):
        return self.name


class NConst(NTerm):
    __slots__ = ("value",)

    def __init__(self, value: int):
        if value < 0:
            raise BagTypeError("arithmetic constants are naturals")
        self.value = value

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self):
        return str(self.value)


class _BinTerm(NTerm):
    symbol = "?"

    def __init__(self, left: NTerm, right: NTerm):
        self.left, self.right = left, right

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self):
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Plus(_BinTerm):
    symbol = "+"


class Times(_BinTerm):
    symbol = "×"


def eval_term(term: NTerm, env: Dict[str, int]) -> int:
    if isinstance(term, NVar):
        if term.name not in env:
            raise BagTypeError(f"unbound arithmetic variable "
                               f"{term.name!r}")
        return env[term.name]
    if isinstance(term, NConst):
        return term.value
    if isinstance(term, Plus):
        return eval_term(term.left, env) + eval_term(term.right, env)
    if isinstance(term, Times):
        return eval_term(term.left, env) * eval_term(term.right, env)
    raise BagTypeError(f"unknown term {term!r}")


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------

class NFormula:
    """A formula over (N, +, x, =) with bounded quantification."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError


class NEq(NFormula):
    def __init__(self, left: NTerm, right: NTerm):
        self.left, self.right = left, right

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self):
        return f"({self.left!r} = {self.right!r})"


class NLe(NFormula):
    """``t1 <= t2``; expressible via + and = (exists d: t1 + d = t2)
    but provided primitively for convenience."""

    def __init__(self, left: NTerm, right: NTerm):
        self.left, self.right = left, right

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self):
        return f"({self.left!r} <= {self.right!r})"


class _BinFormula(NFormula):
    symbol = "?"

    def __init__(self, left: NFormula, right: NFormula):
        self.left, self.right = left, right

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self):
        return f"({self.left!r} {self.symbol} {self.right!r})"


class NAnd(_BinFormula):
    symbol = "∧"


class NOr(_BinFormula):
    symbol = "∨"


class NNot(NFormula):
    def __init__(self, body: NFormula):
        self.body = body

    def free_vars(self):
        return self.body.free_vars()

    def __repr__(self):
        return f"¬{self.body!r}"


class _Quantified(NFormula):
    symbol = "?"

    def __init__(self, name: str, body: NFormula):
        self.name = name
        self.body = body

    def free_vars(self):
        return self.body.free_vars() - {self.name}

    def __repr__(self):
        return f"{self.symbol}{self.name}<f.{self.body!r}"


class NExists(_Quantified):
    symbol = "∃"


class NForall(_Quantified):
    symbol = "∀"


def eval_formula(formula: NFormula, bound: int,
                 env: Dict[str, int]) -> bool:
    """Evaluate under the bounded semantics: quantifiers range over
    ``{0, ..., bound}``."""
    if isinstance(formula, NEq):
        return eval_term(formula.left, env) == eval_term(formula.right,
                                                         env)
    if isinstance(formula, NLe):
        return eval_term(formula.left, env) <= eval_term(formula.right,
                                                         env)
    if isinstance(formula, NAnd):
        return (eval_formula(formula.left, bound, env)
                and eval_formula(formula.right, bound, env))
    if isinstance(formula, NOr):
        return (eval_formula(formula.left, bound, env)
                or eval_formula(formula.right, bound, env))
    if isinstance(formula, NNot):
        return not eval_formula(formula.body, bound, env)
    if isinstance(formula, NExists):
        return any(
            eval_formula(formula.body, bound,
                         {**env, formula.name: value})
            for value in range(bound + 1))
    if isinstance(formula, NForall):
        return all(
            eval_formula(formula.body, bound,
                         {**env, formula.name: value})
            for value in range(bound + 1))
    raise BagTypeError(f"unknown formula {formula!r}")
