"""Bounded arithmetic and its compilation to the bag algebra
(Definition 5.2, Lemmas 5.6-5.7, Theorem 5.5)."""

from repro.arith.formulas import (
    NAnd, NConst, NEq, NExists, NForall, NFormula, NLe, NNot, NOr,
    NTerm, NVar, Plus, Times, eval_formula, eval_term,
)
from repro.arith.translate import (
    CompiledFormula, INT_ATOM, bag_int, compile_formula, domain_bound,
    domain_expr, doubling_expr, input_bag, int_bag,
)

__all__ = [
    "NAnd", "NConst", "NEq", "NExists", "NForall", "NFormula", "NLe",
    "NNot", "NOr", "NTerm", "NVar", "Plus", "Times", "eval_formula",
    "eval_term",
    "CompiledFormula", "INT_ATOM", "bag_int", "compile_formula",
    "domain_bound", "domain_expr", "doubling_expr", "input_bag",
    "int_bag",
]
