"""Lemma 5.7: compiling bounded arithmetic into BALG^2 (+ powerbag).

The translation simulates integers by bags (an integer ``i`` is a bag
of ``i`` copies of the 1-tuple ``[a]``), addition by additive union,
multiplication by Cartesian product (+ projection), and bounded
quantification by nested bags: the quantifier domain is the powerset
of a bag of size ``f(n)``, whose subbags are exactly the integers
``0..f(n)``.

The domain bag ``D(b_n) = P(E^i(b_n))`` uses the doubling expression
``E``: with the powerbag, ``E(X) = pi_1([[[a]]] x Pb(X))`` has
``2^|X|`` elements, so ``i`` nested applications reach ``hyper(i)`` —
the engine of Theorem 5.5's hyperexponential lower bounds.  (With only
the powerset, Theorem 6.1 uses ``E(X) = N(P(P(N(X))))`` instead, at one
more level of nesting.)

The formula compiler is the classical calculus-to-algebra translation
(conjunction = join, negation = complement against the domain product,
existential = projection), kept entirely inside the algebra: every
intermediate is a BALG expression over the input bag variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.derived import count_expr, project_expr
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Bagging, Cartesian, Const, Dedup, Expr,
    Lam, Map, MaxUnion, Powerbag, Powerset, Select, Subtraction,
    Tupling, Var,
)
from repro.arith.formulas import (
    NAnd, NConst, NEq, NExists, NForall, NFormula, NLe, NNot, NOr,
    NTerm, NVar, Plus as NPlus, Times as NTimes,
)

__all__ = [
    "INT_ATOM", "int_bag", "bag_int", "input_bag",
    "doubling_expr", "domain_expr", "domain_bound",
    "CompiledFormula", "compile_formula",
]

#: The constant whose copies encode integers (the paper's ``a``).
INT_ATOM = "a"


def int_bag(value: int) -> Bag:
    """The integer ``value`` as a bag of ``value`` copies of ``[a]``."""
    if value < 0:
        raise BagTypeError("only naturals are encodable")
    return (Bag.from_counts({Tup(INT_ATOM): value}) if value
            else EMPTY_BAG)


def bag_int(bag: Bag) -> int:
    """Decode an integer bag (its cardinality)."""
    return bag.cardinality


def input_bag(n: int) -> Bag:
    """The input ``b_n``: n copies of ``[a]``."""
    return int_bag(n)


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------

def _normalize(operand: Expr) -> Expr:
    """``N(B) = pi_1([[[a]]] x B)``: |B| copies of ``[a]``."""
    return project_expr(
        Cartesian(Const(Bag.of(Tup(INT_ATOM))), operand), 1)


def doubling_expr(operand: Expr) -> Expr:
    """``E(X)``: a bag of ``2^|X|`` copies of ``[a]``, via the
    powerbag (|Pb(X)| = 2^|X| counting duplicates)."""
    return count_expr(Powerbag(operand), marker=INT_ATOM)


def domain_expr(bag_variable: str, hyper_level: int = 0) -> Expr:
    """``D(b_n) = P(E^i(N(b_n)))`` wrapped into 1-tuples: the bag of
    integers ``0 .. f(n)`` where ``f = hyper(hyper_level)``
    (``f(n) = n`` at level 0)."""
    if hyper_level < 0:
        raise BagTypeError("hyper_level must be >= 0")
    core = _normalize(Var(bag_variable))
    for _ in range(hyper_level):
        core = doubling_expr(core)
    return Map(Lam("·d", Tupling(Var("·d"))), Powerset(core))


def domain_bound(n: int, hyper_level: int = 0) -> int:
    """The quantifier bound the domain realises: ``hyper(i)(n)``."""
    bound = n
    for _ in range(hyper_level):
        bound = 2 ** bound
    return bound


# ----------------------------------------------------------------------
# Formula compilation
# ----------------------------------------------------------------------

@dataclass
class _Rel:
    """A compiled subformula: a bag of assignment tuples.

    ``columns`` are the (sorted) free variables; each tuple attribute
    holds the integer-bag assigned to the corresponding variable.  A
    closed subformula is a unit relation: arity 1 over the dummy tuple
    ``[a]``, nonempty iff the subformula holds.
    """

    expr: Expr
    columns: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return max(len(self.columns), 1)

    def position(self, column: str) -> int:
        return self.columns.index(column) + 1


_UNIT = Const(Bag.of(Tup(INT_ATOM)))


@dataclass
class CompiledFormula:
    """The output of :func:`compile_formula`.

    ``expr`` is a BALG expression over the input bag variable; the
    formula holds iff the expression evaluates to a nonempty bag.
    """

    expr: Expr
    input_var: str
    bag_var: str
    hyper_level: int


def compile_formula(formula: NFormula, input_var: str = "n",
                    bag_var: str = "B",
                    hyper_level: int = 0) -> CompiledFormula:
    """Translate a bounded arithmetic formula to the algebra.

    Free variables other than ``input_var`` must be bound by
    quantifiers; ``input_var`` is interpreted as the size of the input
    bag (its domain is the singleton ``[[ [b_n] ]]``).
    """
    stray = formula.free_vars() - {input_var}
    if stray:
        raise BagTypeError(
            f"formula has unquantified variables: {sorted(stray)}")
    relation = _compile(formula, input_var, bag_var, hyper_level)
    return CompiledFormula(expr=relation.expr, input_var=input_var,
                           bag_var=bag_var, hyper_level=hyper_level)


def _domain_rel(column: str, input_var: str, bag_var: str,
                hyper_level: int) -> _Rel:
    if column == input_var:
        return _Rel(Bagging(Tupling(Var(bag_var))), (column,))
    return _Rel(domain_expr(bag_var, hyper_level), (column,))


def _compile(formula: NFormula, input_var: str, bag_var: str,
             level: int) -> _Rel:
    if isinstance(formula, (NEq, NLe)):
        return _compile_atomic(formula, input_var, bag_var, level)
    if isinstance(formula, NAnd):
        left = _compile(formula.left, input_var, bag_var, level)
        right = _compile(formula.right, input_var, bag_var, level)
        return _join(left, right)
    if isinstance(formula, NOr):
        left = _compile(formula.left, input_var, bag_var, level)
        right = _compile(formula.right, input_var, bag_var, level)
        target = tuple(sorted(set(left.columns) | set(right.columns)))
        left = _extend(left, target, input_var, bag_var, level)
        right = _extend(right, target, input_var, bag_var, level)
        return _Rel(Dedup(MaxUnion(left.expr, right.expr)), target)
    if isinstance(formula, NNot):
        inner = _compile(formula.body, input_var, bag_var, level)
        full = _full_relation(inner.columns, input_var, bag_var, level)
        return _Rel(Subtraction(full.expr, inner.expr), inner.columns)
    if isinstance(formula, NExists):
        inner = _compile(formula.body, input_var, bag_var, level)
        if formula.name not in inner.columns:
            return inner  # vacuous quantification
        remaining = tuple(col for col in inner.columns
                          if col != formula.name)
        return _project(inner, remaining)
    if isinstance(formula, NForall):
        rewritten = NNot(NExists(formula.name, NNot(formula.body)))
        return _compile(rewritten, input_var, bag_var, level)
    raise BagTypeError(f"unknown formula {formula!r}")


def _compile_atomic(formula, input_var: str, bag_var: str,
                    level: int) -> _Rel:
    columns = tuple(sorted(formula.free_vars()))
    if columns:
        base = _full_relation(columns, input_var, bag_var, level)
    else:
        base = _Rel(_UNIT, ())
    rel = _Rel(base.expr, columns)
    left_term = _term_expr(formula.left, rel)
    right_term = _term_expr(formula.right, rel)
    if isinstance(formula, NEq):
        selected = Select(Lam("·w", left_term), Lam("·w", right_term),
                          rel.expr)
    else:  # NLe: t1 <= t2  iff  t1 - t2 is empty
        selected = Select(
            Lam("·w", Subtraction(left_term, right_term)),
            Lam("·w", Const(EMPTY_BAG)),
            rel.expr)
    return _Rel(selected, columns)


def _term_expr(term: NTerm, rel: _Rel) -> Expr:
    """An integer-bag expression over the assignment tuple ``·w``."""
    if isinstance(term, NVar):
        return Attribute(Var("·w"), rel.position(term.name))
    if isinstance(term, NConst):
        return Const(int_bag(term.value))
    if isinstance(term, NPlus):
        return AdditiveUnion(_term_expr(term.left, rel),
                             _term_expr(term.right, rel))
    if isinstance(term, NTimes):
        return project_expr(Cartesian(_term_expr(term.left, rel),
                                      _term_expr(term.right, rel)), 1)
    raise BagTypeError(f"unknown term {term!r}")


def _full_relation(columns: Sequence[str], input_var: str,
                   bag_var: str, level: int) -> _Rel:
    """The product of the domains of the given columns (sorted), or the
    unit relation when there are none."""
    columns = tuple(sorted(columns))
    if not columns:
        return _Rel(_UNIT, ())
    rels = [_domain_rel(col, input_var, bag_var, level)
            for col in columns]
    expr = rels[0].expr
    for rel in rels[1:]:
        expr = Cartesian(expr, rel.expr)
    return _Rel(expr, columns)


def _join(left: _Rel, right: _Rel) -> _Rel:
    """Natural join on shared columns, projected to the sorted union."""
    product = _Rel(Cartesian(left.expr, right.expr),
                   left.columns + right.columns)
    # positions: left columns keep theirs, right shift by left.arity
    expr = product.expr
    shared = set(left.columns) & set(right.columns)
    for column in sorted(shared):
        expr = Select(
            Lam("·w", Attribute(Var("·w"), left.position(column))),
            Lam("·w", Attribute(Var("·w"),
                                left.arity + right.position(column))),
            expr)
    target = tuple(sorted(set(left.columns) | set(right.columns)))
    positions = []
    for column in target:
        if column in left.columns:
            positions.append(left.position(column))
        else:
            positions.append(left.arity + right.position(column))
    if not positions:
        positions = [1]
    return _Rel(Dedup(project_expr(expr, *positions)), target)


def _extend(rel: _Rel, target: Tuple[str, ...], input_var: str,
            bag_var: str, level: int) -> _Rel:
    """Pad a relation with domains for missing columns and reorder to
    the sorted target."""
    if rel.columns == target:
        return rel
    missing = [col for col in target if col not in rel.columns]
    expr = rel.expr
    combined_columns = list(rel.columns)
    for column in missing:
        domain = _domain_rel(column, input_var, bag_var, level)
        expr = Cartesian(expr, domain.expr)
        combined_columns.append(column)
    if rel.columns:
        combined = _Rel(expr, tuple(combined_columns))
        positions = [combined.position(column) for column in target]
    else:
        # A closed (dummy arity-1) relation extended with real columns:
        # the layout is [dummy, missing...], so the dummy slot at 1 is
        # dropped and the missing columns start at attribute 2.
        positions = [2 + missing.index(column) for column in target]
    return _Rel(Dedup(project_expr(expr, *positions)), target)


def _project(rel: _Rel, target: Tuple[str, ...]) -> _Rel:
    if not target:
        # Collapse every surviving assignment onto the unit tuple.
        collapsed = Map(Lam("·w", Tupling(Const(INT_ATOM))), rel.expr)
        return _Rel(Dedup(collapsed), ())
    positions = [rel.position(column) for column in target]
    return _Rel(Dedup(project_expr(rel.expr, *positions)), target)
