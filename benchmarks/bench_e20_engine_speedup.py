"""E20 — physical engine speedup over the tree walker (systems, not a
paper claim).

The headline workload is a difference/dedup-heavy BALG^1 chain — the
tractable fragment of Thm 4.4 — built so shared subtrees appear twice
per level:

    X_{i+1} = eps((X_i - Y) (+) (Y - X_i))

The tree walker re-evaluates each ``X_i`` once per syntactic
occurrence (2^depth leaf visits), while the engine's
common-subexpression sharing materialises each distinct subplan once,
so the gap widens with depth.  Two satellite rows measure a
dedup-after-map chain and a hash-join vs nested-loop-with-filter
query.  Every cell runs governed; the acceptance assertions are:

* bag-equal results at every size;
* >= 5x speedup at the largest governed size;
* a repeated query hits the plan cache and skips lowering
  (engine stats counters).

Statuses persist to ``results/e20_engine.status.json`` (the CI
engine-parity job uploads it); the table goes to
``results/e20_engine.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit_table, governed_cell
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Dedup, Lam, Map, Select,
    Subtraction, Tupling, Var, var,
)
from repro.core.eval import evaluate as tree_evaluate
from repro.engine import EngineStats, PlanCache, evaluate
from repro.guard import Limits
from repro.workloads import random_multigraph, random_relation

EXPERIMENT = "e20_engine"

#: (label, |bag|, chain depth) — the last row is the acceptance size.
SIZES = [("small", 400, 4), ("medium", 1500, 5), ("large", 4000, 6)]

SPEEDUP_FLOOR = 5.0

LIMITS = Limits(max_steps=5_000_000, timeout=120.0)


def sym_diff_chain(depth: int):
    """eps((X - Y) (+) (Y - X)) iterated: every level mentions the
    previous level twice."""
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def dedup_map_chain(depth: int):
    """eps(MAP_swap(...)) iterated — streaming kernels end to end."""
    x = var("X")
    swap = Lam("t", Tupling(Attribute(Var("t"), 2),
                            Attribute(Var("t"), 1)))
    for _ in range(depth):
        x = Dedup(Map(swap, AdditiveUnion(x, x)))
    return x


def join_query():
    """sigma_{a2=a3}(L x R): the engine fuses this into a hash join."""
    return Select(Lam("t", Attribute(Var("t"), 2)),
                  Lam("t", Attribute(Var("t"), 3)),
                  Cartesian(var("L"), var("R")))


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_e20_engine_speedup(benchmark):
    rows = []

    # -- headline: symmetric-difference chain, three governed sizes ---
    final_speedup = None
    for label, size, depth in SIZES:
        X = random_multigraph(12, size, seed=1)
        Y = random_multigraph(12, size, seed=2)
        expr = sym_diff_chain(depth)

        def tree_cell(governor, expr=expr, X=X, Y=Y):
            return _timed(lambda: tree_evaluate(
                expr, governor=governor, X=X, Y=Y))

        def engine_cell(governor, expr=expr, X=X, Y=Y):
            return _timed(lambda: evaluate(
                expr, governor=governor, cache=None, X=X, Y=Y))

        tree_outcome = governed_cell(
            EXPERIMENT, f"tree-{label}", tree_cell, limits=LIMITS)
        engine_outcome = governed_cell(
            EXPERIMENT, f"engine-{label}", engine_cell, limits=LIMITS)
        assert tree_outcome.status == "ok"
        assert engine_outcome.status == "ok"
        reference, tree_seconds = tree_outcome.value
        result, engine_seconds = engine_outcome.value
        assert result == reference  # bag-equal at every size
        speedup = tree_seconds / engine_seconds
        final_speedup = speedup
        rows.append((f"sym-diff {label} (n={size}, d={depth})",
                     f"{tree_seconds * 1e3:.1f}",
                     f"{engine_seconds * 1e3:.1f}",
                     f"{speedup:.1f}x"))

    # acceptance: >= 5x at the largest governed size
    assert final_speedup >= SPEEDUP_FLOOR, final_speedup

    # -- satellite: dedup-after-map chain -----------------------------
    X = random_relation(20, arity=2, seed=3)
    expr = dedup_map_chain(5)
    reference, tree_seconds = _timed(
        lambda: tree_evaluate(expr, X=X))
    result, engine_seconds = _timed(
        lambda: evaluate(expr, cache=None, X=X))
    assert result == reference
    rows.append((f"dedup-map chain (n={X.cardinality}, d=5)",
                 f"{tree_seconds * 1e3:.1f}",
                 f"{engine_seconds * 1e3:.1f}",
                 f"{tree_seconds / engine_seconds:.1f}x"))

    # -- satellite: hash join vs filtered nested loop -----------------
    # random_relation's first argument is the *domain* size: 24 atoms
    # at density 0.5 gives ~290 tuples per side, so the tree walker's
    # materialised product stays affordable (~85k rows)
    L = random_relation(24, arity=2, seed=4)
    R = random_relation(24, arity=2, seed=5)
    expr = join_query()
    reference, tree_seconds = _timed(
        lambda: tree_evaluate(expr, L=L, R=R))
    result, engine_seconds = _timed(
        lambda: evaluate(expr, cache=None, L=L, R=R))
    assert result == reference
    rows.append((f"hash join ({L.cardinality} x {R.cardinality})",
                 f"{tree_seconds * 1e3:.1f}",
                 f"{engine_seconds * 1e3:.1f}",
                 f"{tree_seconds / engine_seconds:.1f}x"))

    # -- plan cache: the repeated query skips lowering ----------------
    cache = PlanCache(capacity=8)
    stats = EngineStats()
    expr = sym_diff_chain(3)
    X = random_multigraph(10, 200, seed=6)
    Y = random_multigraph(10, 200, seed=7)
    first = evaluate(expr, cache=cache, stats=stats, X=X, Y=Y)
    repeat = evaluate(expr, cache=cache, stats=stats, X=X, Y=Y)
    assert repeat == first
    assert stats.lowerings == 1      # second run skipped lowering
    assert stats.cache_hits == 1
    assert stats.cache_misses == 1
    rows.append(("plan-cache repeat", "-", "-",
                 f"hit rate {cache.stats.hit_rate:.0%}"))

    emit_table(
        EXPERIMENT,
        "E20  physical engine vs tree walker (ms per evaluation)",
        ["cell", "tree ms", "engine ms", "speedup"], rows)

    # timing fixture: the medium headline cell on the engine
    label, size, depth = SIZES[1]
    X = random_multigraph(12, size, seed=1)
    Y = random_multigraph(12, size, seed=2)
    expr = sym_diff_chain(depth)
    benchmark(lambda: evaluate(expr, cache=None, X=X, Y=Y))
