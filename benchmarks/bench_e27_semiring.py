"""E27 — semiring-generalized multiplicity core (systems, not a
paper claim).

The semiring refactor routes every multiplicity operation through
``repro.core.semiring`` with ``None`` meaning N.  This battery pins
the deal that made the refactor admissible and reports what the
generic domains cost:

* **N fast-path pin (gated)** — the default path must not pay for the
  generality.  Two gates: a *structural* one (default-planned codegen
  source contains no ``_sr`` — the specialize-on-N compiler emitted
  pure int arithmetic), and a *measured* one (an explicit
  ``semiring="nat"`` run, which resolves to the same ``None`` fast
  path, stays within ``OVERHEAD_CEILING`` of the default run on the
  E26 sym-diff headline shape; the ceiling is 1.05 full tier, looser
  in smoke where the cells are small enough for timer noise).
* **Bool vs N on duplicate-heavy input (report-only)** — a dedup-free
  union cascade over multigraphs whose N multiplicities grow with
  every level while Bool's idempotent addition keeps every count at
  1.  Correctness is asserted (the Bool bag equals the deep-dedup of
  the N bag); the timing ratio and the N-side multiplicity mass are
  reported, not gated — the work is hash-dominated, so the honest
  speedup is modest.
* **Provenance annotation size (report-only)** — the same workload
  under ``N[X]`` polynomials: total monomials carried, maximum
  polynomial degree, and the blow-up factor over the plain count
  column.  Correctness is asserted through the ``eval_at_ones``
  homomorphism, which must recover the N multiplicities exactly.

Statuses persist to ``results/e27_semiring.status.json``; the table
goes to ``results/e27_semiring.txt`` and the machine-readable ledger
to ``results/e27_semiring.json`` (consumed by
``benchmarks/collect.py``).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import (
    RESULTS_DIR, emit_table, governed_cell, record_experiment_meta,
)
from benchmarks.bench_e26_columnar import sym_diff_chain
from repro.core.expr import AdditiveUnion, Intersection, var
from repro.engine import evaluate, plan_for
from repro.guard import Limits
from repro.relational import deep_dedup
from repro.workloads import random_multigraph

EXPERIMENT = "e27_semiring"

SMOKE = bool(os.environ.get("E27_SMOKE"))

#: (domain, |bag|, chain depth) for the fast-path pin cell.
PIN = (30, 1500, 3) if SMOKE else (200, 40000, 5)
#: (nodes, edges, cascade levels) for the duplicate-heavy cells.
DUP = (12, 600, 3) if SMOKE else (40, 20000, 5)

#: The measured fast-path gate: an explicit ``semiring="nat"`` run
#: may cost at most this multiple of the default run.  Smoke cells
#: finish in single-digit milliseconds, so the smoke ceiling only
#: guards against gross regressions.
OVERHEAD_CEILING = 1.25 if SMOKE else 1.05

#: Best-of-N timing per cell.
REPS = 3 if SMOKE else 5

LIMITS = Limits(max_steps=200_000_000, timeout=300.0)


def dup_cascade(levels: int):
    """``(...((X (+) Y) (+) X)...) n X`` — dedup-free, so N
    multiplicities climb with every level while idempotent domains
    stay flat."""
    acc = var("X")
    for i in range(levels):
        acc = AdditiveUnion(acc, var("Y" if i % 2 == 0 else "X"))
    return Intersection(acc, var("X"))


def _best_of(fn, reps: int):
    value, best = None, None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return value, best


def test_e27_semiring(benchmark):
    rows = []
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "overhead_ceiling": OVERHEAD_CEILING}

    # -- N fast-path pin: structural gate -----------------------------
    domain, size, depth = PIN
    pin_expr = sym_diff_chain(depth)
    pin_db = {"X": random_multigraph(domain, size, seed=1),
              "Y": random_multigraph(domain, size, seed=2)}
    plan = plan_for(pin_expr, pin_db, engine="codegen")
    source = "".join(segment.source for segment in plan.segments)
    assert plan.segments and "_sr" not in source
    rows.append(("codegen N source (structural pin)", "-", "-",
                 f"{len(plan.segments)} segments, no _sr"))
    ledger["structural_pin"] = {"segments": len(plan.segments),
                                "sr_free": True}

    # -- N fast-path pin: measured gate -------------------------------
    def default_cell(governor):
        return _best_of(lambda: evaluate(
            pin_expr, pin_db, engine="physical", governor=governor,
            cache=None), REPS)

    def tagged_cell(governor):
        return _best_of(lambda: evaluate(
            pin_expr, pin_db, engine="physical", governor=governor,
            cache=None, semiring="nat"), REPS)

    default_outcome = governed_cell(EXPERIMENT, "nat-default",
                                    default_cell, limits=LIMITS)
    tagged_outcome = governed_cell(EXPERIMENT, "nat-tagged",
                                   tagged_cell, limits=LIMITS)
    assert default_outcome.status == "ok"
    assert tagged_outcome.status == "ok"
    reference, default_seconds = default_outcome.value
    tagged, tagged_seconds = tagged_outcome.value
    assert tagged == reference
    overhead = tagged_seconds / default_seconds
    rows.append((f"N fast-path overhead (n={size}, d={depth})",
                 f"{default_seconds * 1e3:.1f}",
                 f"{tagged_seconds * 1e3:.1f}",
                 f"{overhead:.3f}x (<= {OVERHEAD_CEILING}x)"))
    ledger["fast_path"] = {
        "default_seconds": round(default_seconds, 4),
        "tagged_seconds": round(tagged_seconds, 4),
        "overhead": round(overhead, 4)}

    # acceptance: the explicitly tagged N run pays no semiring tax
    assert overhead <= OVERHEAD_CEILING, (overhead, OVERHEAD_CEILING)

    # -- Bool vs N on duplicate-heavy input (report-only) -------------
    nodes, edges, levels = DUP
    dup_expr = dup_cascade(levels)
    dup_db = {"X": random_multigraph(nodes, edges, seed=3),
              "Y": random_multigraph(nodes, edges, seed=4)}

    def nat_cell(governor):
        return _best_of(lambda: evaluate(
            dup_expr, dup_db, engine="physical", governor=governor,
            cache=None), REPS)

    def bool_cell(governor):
        return _best_of(lambda: evaluate(
            dup_expr, dup_db, engine="physical", governor=governor,
            cache=None, semiring="bool"), REPS)

    nat_outcome = governed_cell(EXPERIMENT, "dup-nat", nat_cell,
                                limits=LIMITS)
    bool_outcome = governed_cell(EXPERIMENT, "dup-bool", bool_cell,
                                 limits=LIMITS)
    assert nat_outcome.status == "ok"
    assert bool_outcome.status == "ok"
    nat_bag, nat_seconds = nat_outcome.value
    bool_bag, bool_seconds = bool_outcome.value
    assert bool_bag == deep_dedup(nat_bag)
    ratio = nat_seconds / bool_seconds
    mass = sum(count for _, count in nat_bag.items())
    rows.append((f"Bool vs N, duplicate-heavy (edges={edges}, "
                 f"levels={levels}) [report-only]",
                 f"{nat_seconds * 1e3:.1f}",
                 f"{bool_seconds * 1e3:.1f}",
                 f"{ratio:.2f}x; N mass {mass}, "
                 f"distinct {nat_bag.distinct_count}"))
    ledger["bool_vs_nat"] = {
        "nat_seconds": round(nat_seconds, 4),
        "bool_seconds": round(bool_seconds, 4),
        "ratio": round(ratio, 3),
        "nat_multiplicity_mass": mass,
        "distinct": nat_bag.distinct_count}

    # -- provenance annotation size (report-only) ---------------------
    def prov_cell(governor):
        return _best_of(lambda: evaluate(
            dup_expr, dup_db, engine="physical", governor=governor,
            cache=None, semiring="provenance"), REPS)

    prov_outcome = governed_cell(EXPERIMENT, "dup-provenance",
                                 prov_cell, limits=LIMITS)
    assert prov_outcome.status == "ok"
    prov_bag, prov_seconds = prov_outcome.value
    # eval-at-ones is the homomorphism back to N: it must recover the
    # plain multiplicities exactly.
    recovered = {value: annotation.eval_at_ones()
                 for value, annotation in prov_bag.items()}
    assert recovered == dict(nat_bag.items())
    monomials = sum(annotation.monomial_count()
                    for _, annotation in prov_bag.items())
    degree = max((annotation.degree()
                  for _, annotation in prov_bag.items()), default=0)
    blow_up = monomials / max(1, prov_bag.distinct_count)
    rows.append((f"provenance N[X] size (edges={edges}, "
                 f"levels={levels}) [report-only]",
                 f"{nat_seconds * 1e3:.1f}",
                 f"{prov_seconds * 1e3:.1f}",
                 f"{monomials} monomials, deg {degree}, "
                 f"{blow_up:.1f}/value"))
    ledger["provenance"] = {
        "prov_seconds": round(prov_seconds, 4),
        "ratio_vs_nat": round(prov_seconds / nat_seconds, 3),
        "total_monomials": monomials,
        "max_degree": degree,
        "monomials_per_value": round(blow_up, 3)}

    record_experiment_meta(
        EXPERIMENT, smoke=SMOKE,
        gates={"fast-path-overhead":
               {"ceiling": OVERHEAD_CEILING,
                "measured": round(overhead, 4),
                "passed": overhead <= OVERHEAD_CEILING},
               "codegen-structural-pin": {"passed": True}})

    emit_table(
        EXPERIMENT,
        "E27  semiring domains vs the N fast path (ms per evaluation)",
        ["cell", "N ms", "domain ms", "verdict"], rows)

    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # timing fixture: the duplicate-heavy cell under Bool
    benchmark(lambda: evaluate(dup_expr, dup_db, engine="physical",
                               cache=None, semiring="bool"))
