"""E26 — columnar codegen engine speedup over the stream engine
(systems, not a paper claim).

E20 measured the physical engine against the tree walker; this battery
measures the next rung: ``engine="codegen"`` (opt level 3, the fused
columnar closures of :mod:`repro.engine.codegen`) against
``engine="physical"`` (the per-row stream kernels) on the pipelines
the compiler actually fuses.  Three governed headline cells carry the
acceptance gate:

* **sym-diff chain** — ``eps((X - Y) (+) (Y - X))`` iterated, the
  Thm 4.4 tractable fragment and E20's headline shape, on a
  large-domain multigraph so the hash tables hold tens of thousands
  of distinct keys.  The compiler collapses each level's four
  operators into one ``c_sym_diff_dedup`` sweep.
* **scale cascade** — ``X (+) X`` doubled ``d`` times; lowering turns
  the doubling tower into multiplicity scales and the compiler folds
  them into a single count-column pass.
* **union-dedup cascade** — ``eps(... (+) A_j)`` iterated; each level
  is a C-level in-place dict merge instead of a stream
  concatenate-then-dedup.

The acceptance gate is the geometric mean of the three headline
speedups: ``>= GEOMEAN_FLOOR`` (6x full tier, 2x under ``E26_SMOKE``
— both set well under the ~9x geomean measured at authoring time, so
hardware variance does not flake CI).  Two satellite rows —
dedup-after-map and hash join — are *report-only*: their cost is
Tup construction and lambda application, identical in both engines,
so codegen's honest gain there is small and the rows document that.

Every cell asserts bag-equal results between the two engines, runs
governed, and the fused-segment/barrier counters are checked: the
headline pipelines must fuse with zero barrier fallbacks, and a
powerset probe must take exactly one barrier fallback.  A plan-cache
row pins cache-key isolation at runtime (a warmed codegen entry never
serves a physical run, and vice versa).

Statuses persist to ``results/e26_columnar.status.json``; the table
goes to ``results/e26_columnar.txt`` and the machine-readable ledger
to ``results/e26_columnar.json`` (consumed by
``benchmarks/collect.py``).
"""

from __future__ import annotations

import json
import math
import os
import time

from benchmarks.conftest import RESULTS_DIR, emit_table, governed_cell
from repro.core.expr import (
    AdditiveUnion, Dedup, Powerset, Subtraction, var,
)
from repro.engine import EngineStats, PlanCache, evaluate
from repro.guard import Limits
from repro.workloads import random_multigraph, random_relation

from benchmarks.bench_e20_engine_speedup import (
    dedup_map_chain, join_query,
)

EXPERIMENT = "e26_columnar"

SMOKE = bool(os.environ.get("E26_SMOKE"))

#: (domain, |bag|, chain depth) for the sym-diff and scale cells.
SYM_DIFF = (40, 2000, 4) if SMOKE else (250, 60000, 6)
SCALE = (40, 2000, 6) if SMOKE else (250, 60000, 8)
#: (relation domain, cascade levels, relation count).
UNION_DEDUP = (40, 8, 4) if SMOKE else (150, 16, 6)

#: Acceptance: geomean of the three headline speedups.
GEOMEAN_FLOOR = 2.0 if SMOKE else 6.0

#: Best-of-N timing per engine per cell.
REPS = 2 if SMOKE else 3

LIMITS = Limits(max_steps=200_000_000, timeout=300.0)


def sym_diff_chain(depth: int):
    """eps((X - Y) (+) (Y - X)) iterated — fuses to one
    ``c_sym_diff_dedup`` kernel per level."""
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def scale_cascade(depth: int):
    """X (+) X doubled ``depth`` times — lowering rewrites the tower
    into multiplicity scales, codegen folds them into one factor."""
    x = var("X")
    for _ in range(depth):
        x = AdditiveUnion(x, x)
    return x


def union_dedup_cascade(levels: int, nrels: int):
    """eps(acc (+) A_j) iterated — each level merges in place."""
    x = var("A0")
    for i in range(levels):
        x = Dedup(AdditiveUnion(x, var(f"A{(i % (nrels - 1)) + 1}")))
    return x


def _best_of(fn, reps: int):
    value, best = None, None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return value, best


def _engine_pair(experiment_cell: str, expr, database):
    """Run one workload on both engines, governed; returns
    ``(speedup, physical_seconds, codegen_seconds)`` after asserting
    bag equality."""

    def physical_cell(governor):
        return _best_of(lambda: evaluate(
            expr, database, engine="physical", governor=governor,
            cache=None), REPS)

    def codegen_cell(governor):
        return _best_of(lambda: evaluate(
            expr, database, engine="codegen", governor=governor,
            cache=None), REPS)

    physical_outcome = governed_cell(
        EXPERIMENT, f"physical-{experiment_cell}", physical_cell,
        limits=LIMITS)
    codegen_outcome = governed_cell(
        EXPERIMENT, f"codegen-{experiment_cell}", codegen_cell,
        limits=LIMITS)
    assert physical_outcome.status == "ok"
    assert codegen_outcome.status == "ok"
    reference, physical_seconds = physical_outcome.value
    result, codegen_seconds = codegen_outcome.value
    assert result == reference  # bag-equal on every cell
    return (physical_seconds / codegen_seconds, physical_seconds,
            codegen_seconds)


def test_e26_columnar_speedup(benchmark):
    rows = []
    ledger_headline = []
    ledger_satellite = []

    # -- headline: the three fused-pipeline cells ---------------------
    domain, size, depth = SYM_DIFF
    headline = [
        (f"sym-diff chain (n={size}, d={depth})",
         sym_diff_chain(depth),
         {"X": random_multigraph(domain, size, seed=1),
          "Y": random_multigraph(domain, size, seed=2)}),
    ]
    domain, size, depth = SCALE
    headline.append(
        (f"scale cascade (n={size}, d={depth})",
         scale_cascade(depth),
         {"X": random_multigraph(domain, size, seed=3)}))
    domain, levels, nrels = UNION_DEDUP
    headline.append(
        (f"union-dedup cascade (levels={levels})",
         union_dedup_cascade(levels, nrels),
         {f"A{i}": random_relation(domain, arity=2, seed=10 + i)
          for i in range(nrels)}))

    speedups = []
    for label, expr, database in headline:
        speedup, physical_seconds, codegen_seconds = _engine_pair(
            label.split(" (")[0], expr, database)
        speedups.append(speedup)
        rows.append((label, f"{physical_seconds * 1e3:.1f}",
                     f"{codegen_seconds * 1e3:.1f}",
                     f"{speedup:.1f}x"))
        ledger_headline.append({
            "cell": label,
            "physical_seconds": round(physical_seconds, 4),
            "codegen_seconds": round(codegen_seconds, 4),
            "speedup": round(speedup, 3)})

    geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
    rows.append((f"headline geomean "
                 f"({'smoke' if SMOKE else 'full'} tier)",
                 "-", "-", f"{geomean:.1f}x"))

    # acceptance: fused pipelines carry the gate
    assert geomean >= GEOMEAN_FLOOR, (geomean, speedups)

    # -- satellites: Tup-construction-bound cells (report-only) -------
    satellites = [
        ("dedup-map chain (d=5)", dedup_map_chain(5),
         {"X": random_relation(20, arity=2, seed=3)}),
        ("hash join", join_query(),
         {"L": random_relation(24, arity=2, seed=4),
          "R": random_relation(24, arity=2, seed=5)}),
    ]
    for label, expr, database in satellites:
        speedup, physical_seconds, codegen_seconds = _engine_pair(
            label.split(" (")[0].replace(" ", "-"), expr, database)
        rows.append((f"{label} [satellite]",
                     f"{physical_seconds * 1e3:.1f}",
                     f"{codegen_seconds * 1e3:.1f}",
                     f"{speedup:.1f}x"))
        ledger_satellite.append({
            "cell": label,
            "physical_seconds": round(physical_seconds, 4),
            "codegen_seconds": round(codegen_seconds, 4),
            "speedup": round(speedup, 3)})

    # -- fusion counters: headline fuses clean, powerset barriers -----
    stats = EngineStats()
    expr = sym_diff_chain(3)
    X = random_multigraph(10, 200, seed=6)
    Y = random_multigraph(10, 200, seed=7)
    evaluate(expr, engine="codegen", cache=None, stats=stats,
             X=X, Y=Y)
    assert stats.fused_segments > 0
    assert stats.barrier_fallbacks == 0
    fused_headline = stats.fused_segments

    barrier_stats = EngineStats()
    probe = Dedup(Powerset(var("S")))
    evaluate(probe, engine="codegen", cache=None, stats=barrier_stats,
             S=random_relation(3, arity=1, seed=8))
    assert barrier_stats.barrier_fallbacks == 1
    rows.append(("fusion counters (sym-diff d=3 / powerset)", "-", "-",
                 f"{fused_headline} fused, 0/1 barriers"))

    # -- plan cache: codegen entries are isolated and re-hit ----------
    cache = PlanCache(capacity=8)
    stats = EngineStats()
    expr = sym_diff_chain(3)
    first = evaluate(expr, engine="codegen", cache=cache, stats=stats,
                     X=X, Y=Y)
    repeat = evaluate(expr, engine="codegen", cache=cache, stats=stats,
                      X=X, Y=Y)
    assert repeat == first
    assert stats.cache_hits == 1    # warmed codegen entry re-hit
    crossed = evaluate(expr, engine="physical", cache=cache,
                       stats=stats, X=X, Y=Y)
    assert crossed == first
    assert stats.cache_hits == 1    # physical run missed: isolated key
    assert stats.cache_misses == 2
    rows.append(("plan-cache isolation (codegen vs physical)", "-",
                 "-", f"hit rate {cache.stats.hit_rate:.0%}"))

    emit_table(
        EXPERIMENT,
        "E26  codegen engine vs stream engine (ms per evaluation)",
        ["cell", "physical ms", "codegen ms", "speedup"], rows)

    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "geomean_floor": GEOMEAN_FLOOR,
              "geomean": round(geomean, 3),
              "headline": ledger_headline,
              "satellite": ledger_satellite,
              "fused_segments": fused_headline}
    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # timing fixture: the sym-diff headline cell on the codegen engine
    domain, size, depth = SYM_DIFF
    X = random_multigraph(domain, size, seed=1)
    Y = random_multigraph(domain, size, seed=2)
    expr = sym_diff_chain(depth)
    benchmark(lambda: evaluate(expr, engine="codegen", cache=None,
                               X=X, Y=Y))
