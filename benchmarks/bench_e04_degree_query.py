"""E04 — Example 4.1: in-degree vs out-degree in BALG^1.

The query ``pi2(sigma_{2=a}G) - pi1(sigma_{1=a}G) <> empty`` is not
expressible in the infinitary logic L^omega_{inf,omega} (the paper's
point), yet it is two selections and a subtraction in BALG^1.  The
benchmark validates it against a native degree count on random
multigraphs of growing size and times the evaluation.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.derived import in_degree_greater_expr, is_nonempty
from repro.core.eval import evaluate
from repro.core.expr import var


def _random_multigraph(nodes: int, edges: int,
                       rng: random.Random) -> Bag:
    return Bag([Tup(rng.randrange(nodes), rng.randrange(nodes))
                for _ in range(edges)])


def _native_verdict(graph: Bag, node) -> bool:
    in_degree = sum(count for edge, count in graph.items()
                    if edge.attribute(2) == node)
    out_degree = sum(count for edge, count in graph.items()
                     if edge.attribute(1) == node)
    return in_degree > out_degree


def test_e04_degree_query(benchmark):
    rng = random.Random(420)
    rows = []
    for nodes, edges in [(5, 10), (10, 50), (20, 200), (40, 800)]:
        graph = _random_multigraph(nodes, edges, rng)
        query = in_degree_greater_expr(var("G"), 0)
        algebra = is_nonempty(evaluate(query, G=graph))
        native = _native_verdict(graph, 0)
        assert algebra == native
        rows.append((nodes, edges, algebra, native, "agree"))
    emit_table(
        "e04_degree",
        "E04  Example 4.1: in-degree(0) > out-degree(0) on random "
        "multigraphs",
        ["nodes", "edges", "BALG^1", "native", "status"], rows)

    graph = _random_multigraph(20, 400, rng)
    query = in_degree_greater_expr(var("G"), 0)
    benchmark(lambda: evaluate(query, G=graph))
