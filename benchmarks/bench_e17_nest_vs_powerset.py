"""E17 — conclusion ablation: nest vs powerset.

The paper keeps the powerset for expressive power but points to the
nest operator as the tractable alternative ([PG88], [Won93]:
conservative, no blow-up).  This ablation makes the trade concrete on
a grouping workload: ``nest`` builds the groups with a linear
intermediate, while the powerset detour (enumerate subbags, keep the
right ones) pays an exponential intermediate for the same answer.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.database import encoding_size
from repro.core.eval import Evaluator
from repro.core.expr import Powerset, var
from repro.core.nest import Nest, nest_bag
from repro.core.ops import powerset_cardinality


def _workload(keys: int, per_key: int) -> Bag:
    return Bag([Tup(f"k{key}", f"v{member}")
                for key in range(keys)
                for member in range(per_key)])


def test_e17_nest_linear_powerset_exponential(benchmark):
    rows = []
    for keys, per_key in [(2, 2), (3, 2), (4, 2), (4, 3)]:
        bag = _workload(keys, per_key)
        evaluator = Evaluator()
        nested = evaluator.run(Nest(var("B"), 2), B=bag)
        nest_peak = evaluator.stats.peak_encoding_size
        subbags = powerset_cardinality(bag)
        rows.append((keys * per_key, nest_peak, f"{subbags:,}",
                     nested.cardinality))
    emit_table(
        "e17_nest",
        "E17a  grouping via nest: linear peak encoding vs the 2^n "
        "subbags a powerset detour must enumerate",
        ["input tuples", "nest peak encoding", "|P(B)| (detour size)",
         "groups"], rows)
    # nest's peak stays linear-ish in the input
    bag = _workload(4, 3)
    assert rows[-1][1] < 4 * encoding_size(bag)

    benchmark(lambda: nest_bag(bag, (2,)))


def test_e17_powerset_detour_measured(benchmark):
    """Actually run a powerset on the small end to quantify the gap."""
    rows = []
    for keys, per_key in [(1, 2), (2, 2), (3, 2)]:
        bag = _workload(keys, per_key)
        nest_eval, power_eval = Evaluator(), Evaluator()
        nest_eval.run(Nest(var("B"), 2), B=bag)
        power_eval.run(Powerset(var("B")), B=bag)
        rows.append((
            keys * per_key,
            nest_eval.stats.peak_encoding_size,
            power_eval.stats.peak_encoding_size,
            f"{power_eval.stats.peak_encoding_size / nest_eval.stats.peak_encoding_size:.0f}x",
        ))
    emit_table(
        "e17_gap",
        "E17b  measured peak encodings: nest vs a single powerset on "
        "the same input",
        ["input tuples", "nest peak", "powerset peak", "ratio"], rows)
    assert rows[-1][2] > rows[-1][1]

    bag = _workload(3, 2)
    benchmark(lambda: nest_bag(bag, (2,)))
