"""E14 — Section 3 aggregates: count / sum / average as algebra.

Each aggregate runs as its paper expression over an order-book
workload, cross-checked against native arithmetic, with an input-size
sweep to expose the (polynomial) evaluation cost of the encoding.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.derived import (
    average_expr, bag_as_int, count_expr, int_as_bag, sum_expr,
)
from repro.core.eval import Evaluator, evaluate
from repro.core.expr import var


def _orders(n: int, rng: random.Random) -> Bag:
    return Bag([Tup(f"cust{rng.randrange(4)}", f"item{rng.randrange(6)}")
                for _ in range(n)])


def test_e14_count(benchmark):
    rng = random.Random(14)
    rows = []
    for n in (5, 20, 80, 320):
        orders = _orders(n, rng)
        counted = bag_as_int(evaluate(count_expr(var("O")), O=orders))
        assert counted == n
        rows.append((n, counted, "exact"))
    emit_table(
        "e14_count",
        "E14a  count(B) = pi1([[[#]]] x B): cardinality with "
        "duplicates",
        ["|orders|", "count via algebra", "status"], rows)

    orders = _orders(100, rng)
    benchmark(lambda: evaluate(count_expr(var("O")), O=orders))


def test_e14_sum_and_average(benchmark):
    rng = random.Random(15)
    rows = []
    for k in (3, 5, 8):
        values = [rng.randrange(0, 7) for _ in range(k)]
        # force integer average half the time for table variety
        if k % 2:
            values = [4] * k
        encoded = Bag([int_as_bag(v) for v in values])
        total = bag_as_int(evaluate(sum_expr(var("V")), V=encoded))
        assert total == sum(values)
        mean_bag = evaluate(average_expr(var("V")), V=encoded)
        mean = bag_as_int(mean_bag)
        if sum(values) % len(values) == 0:
            assert mean == sum(values) // len(values)
            shown = mean
        else:
            assert mean_bag.is_empty()
            shown = "(empty: non-integer)"
        rows.append((values, total, shown))
    emit_table(
        "e14_sum_avg",
        "E14b  sum = delta, average = the powerset selection "
        "(empty bag when the mean is fractional)",
        ["values", "sum", "average"], rows)

    encoded = Bag([int_as_bag(v) for v in (2, 4, 6, 8)])
    benchmark(lambda: evaluate(average_expr(var("V")), V=encoded))


def test_e14_cost_scaling(benchmark):
    """The aggregate expressions stay cheap: count is linear-ish, the
    average pays for P(sum) — quadratic in the total."""
    rows = []
    for total in (4, 8, 16):
        encoded = Bag([int_as_bag(total // 2), int_as_bag(total // 2)])
        evaluator = Evaluator()
        evaluator.run(average_expr(var("V")), V=encoded)
        rows.append((total, evaluator.stats.peak_encoding_size,
                     evaluator.stats.peak_multiplicity))
    emit_table(
        "e14_cost",
        "E14c  average(B): peak intermediate size vs encoded total "
        "(P(sum) costs quadratic)",
        ["sum of values", "peak encoding", "peak multiplicity"], rows)

    encoded = Bag([int_as_bag(6), int_as_bag(6)])
    benchmark(lambda: evaluate(average_expr(var("V")), V=encoded))
